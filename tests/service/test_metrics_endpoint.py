"""GET /metrics end to end: single-process server and the sharded
coordinator, plus the ``obs`` key on the stats op."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.obs.drift import DriftMonitor
from repro.obs.prom import quantile_from_scrape, sample_value, scrape_metrics
from repro.service.client import AsyncBinaryPlacementClient
from repro.service.coordinator import ShardedPlacementServer
from repro.service.engine import PlacementEngine
from repro.service.server import PlacementServer

N_SHARDS = 4
SPEC = {"method": "optchain", "n_shards": N_SHARDS, "epoch_length": 500}


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(3_000, seed=7)


def _hist_count(families, **labels):
    return sample_value(
        families,
        "repro_batch_latency_seconds",
        "repro_batch_latency_seconds_count",
        **labels,
    )


class TestSingleProcess:
    def test_scrape_engine_and_drift(self, stream):
        async def scenario():
            engine = PlacementEngine(
                make_placer("optchain", N_SHARDS), epoch_length=500
            )
            engine.drift_monitor = DriftMonitor(
                N_SHARDS, method="optchain", sample_every=4
            )
            server = PlacementServer(engine, port=0, metrics_port=0)
            await server.start()
            try:
                client = await AsyncBinaryPlacementClient.connect(
                    port=server.port
                )
                for offset in range(0, len(stream), 250):
                    await client.place(stream[offset : offset + 250])

                families = await scrape_metrics(
                    "127.0.0.1", server.metrics_port
                )
                info = families["repro_service_info"]
                labels = dict(next(iter(info["samples"]))[1])
                assert labels["mode"] == "single"
                assert _hist_count(families, partition="0") == len(
                    stream
                ) // 250
                assert (
                    sample_value(
                        families, "repro_placed_total", partition="0"
                    )
                    == len(stream)
                )
                assert (
                    sample_value(
                        families, "repro_engine_placed", partition="0"
                    )
                    == len(stream)
                )
                assert (
                    sample_value(
                        families, "repro_live_vectors", partition="0"
                    )
                    is not None
                )
                p999 = quantile_from_scrape(
                    families,
                    "repro_batch_latency_seconds",
                    0.999,
                    partition="0",
                )
                assert p999 is not None and p999 > 0
                # Drift gauges present with derived rates.
                assert (
                    sample_value(
                        families, "repro_drift_delta", partition="0"
                    )
                    == 0.0
                )
                assert (
                    sample_value(
                        families,
                        "repro_drift_sampled_txs_total",
                        partition="0",
                    )
                    > 0
                )
                assert (
                    sample_value(
                        families, "repro_rss_kilobytes", process="worker-0"
                    )
                    > 0
                )

                # The stats op carries the same observability payload.
                reply = await client.request({"op": "stats"})
                obs = reply["obs"]
                assert obs["metrics"]["placed"] == len(stream)
                assert obs["metrics"]["batch_latency"]["count"] > 0
                assert obs["rss_kb"] > 0
                assert obs["drift"]["sampled_txs_total"] > 0
                await client.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_metrics_port_off_by_default(self):
        async def scenario():
            engine = PlacementEngine(make_placer("optchain", N_SHARDS))
            server = PlacementServer(engine, port=0)
            await server.start()
            try:
                assert server.metrics_port is None
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestSharded:
    def test_scrape_three_workers(self, stream, tmp_path):
        async def scenario():
            spec = dict(
                SPEC,
                drift_sample_every=4,
                drift_window=20_000,
                drift_threshold=0.5,
                drift_min_samples=100,
            )
            server = ShardedPlacementServer(
                spec,
                3,
                port=0,
                lease_length=600,
                checkpoint_path=str(tmp_path / "svc.ckpt"),
                metrics_port=0,
            )
            await server.start()
            try:
                client = await AsyncBinaryPlacementClient.connect(
                    port=server.port
                )
                for offset in range(0, len(stream), 250):
                    await client.place(stream[offset : offset + 250])
                await client.checkpoint()

                families = await scrape_metrics(
                    "127.0.0.1", server.metrics_port
                )
                # Per-partition histograms plus the merged "all" series;
                # batch counts over all partitions sum to the merged.
                per_part = [
                    _hist_count(families, partition=str(p))
                    for p in range(3)
                ]
                assert all(count is not None for count in per_part)
                assert _hist_count(families, partition="all") == sum(
                    per_part
                )
                placed = [
                    sample_value(
                        families, "repro_placed_total", partition=str(p)
                    )
                    for p in range(3)
                ]
                assert sum(placed) == len(stream)
                # p999 derivable from the merged scrape ladder.
                p999 = quantile_from_scrape(
                    families,
                    "repro_batch_latency_seconds",
                    0.999,
                    partition="all",
                )
                assert p999 is not None and p999 > 0
                # WAL counters flow up from the workers.
                wal_bytes = sum(
                    sample_value(
                        families,
                        "repro_wal_bytes_appended_total",
                        partition=str(p),
                    )
                    or 0
                    for p in range(3)
                )
                assert wal_bytes > 0
                # Coordinator gauges: lease state and health.
                assert sample_value(families, "repro_lease_cursor") == len(
                    stream
                )
                assert sample_value(
                    families, "repro_granted_partition"
                ) in (0.0, 1.0, 2.0)
                assert sample_value(families, "repro_degraded") == 0
                assert (
                    sample_value(
                        families,
                        "repro_worker_respawns_total",
                        partition="coordinator",
                    )
                    == 0
                )
                assert (
                    sample_value(
                        families,
                        "repro_rss_kilobytes",
                        process="coordinator",
                    )
                    > 0
                )
                # Drift rides the workers; merged "all" gauge exported.
                assert (
                    sample_value(
                        families, "repro_drift_delta", partition="all"
                    )
                    is not None
                )
                await client.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_stats_op_obs_partitions(self, stream):
        async def scenario():
            server = ShardedPlacementServer(
                dict(SPEC), 2, port=0, lease_length=600, metrics_port=0
            )
            await server.start()
            try:
                client = await AsyncBinaryPlacementClient.connect(
                    port=server.port
                )
                for offset in range(0, 2_000, 250):
                    await client.place(stream[offset : offset + 250])
                reply = await client.request({"op": "stats"})
                obs = reply["obs"]
                assert obs["metrics"]["placed"] == 2_000
                assert len(obs["partitions"]) == 2
                assert sorted(
                    part["partition_id"] for part in obs["partitions"]
                ) == [0, 1]
                assert (
                    sum(
                        part["metrics"]["placed"]
                        for part in obs["partitions"]
                    )
                    == 2_000
                )
                # No checkpoint path: no WAL, and drift was not enabled.
                assert obs["wal"] is None
                await client.close()
            finally:
                await server.stop()

        asyncio.run(scenario())
