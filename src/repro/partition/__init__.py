"""Graph partitioning: the offline and streaming baselines.

The paper compares OptChain against METIS k-way (offline, unrealistic but
cross-TX-optimal) and simple streaming heuristics. METIS itself is a C
binary, so :mod:`repro.partition.metis_like` reimplements the same
multilevel k-way scheme (Karypis-Kumar 1995) from scratch: heavy-edge
matching coarsening, greedy region growing for the initial partition, and
boundary Fiduccia-Mattheyses refinement. :mod:`repro.partition.streaming`
adds the Stanton-Kliot streaming heuristics referenced in related work.

:mod:`repro.partition.quality` holds the evaluation metrics: edge cut,
balance, and - the quantity the paper actually optimizes - the fraction
of cross-shard transactions.
"""

from repro.partition.graph import StaticGraph
from repro.partition.metis_like import (
    MultilevelConfig,
    metis_kway,
    partition_tan,
)
from repro.partition.quality import (
    balance_ratio,
    cross_shard_count,
    cross_shard_fraction,
    edge_cut,
    edge_cut_fraction,
    validate_partition,
)
from repro.partition.streaming import (
    chunking_partition,
    exponential_greedy_partition,
    fennel_partition,
    hashing_partition,
    linear_greedy_partition,
)

__all__ = [
    "MultilevelConfig",
    "StaticGraph",
    "balance_ratio",
    "chunking_partition",
    "cross_shard_count",
    "cross_shard_fraction",
    "edge_cut",
    "edge_cut_fraction",
    "exponential_greedy_partition",
    "fennel_partition",
    "hashing_partition",
    "linear_greedy_partition",
    "metis_kway",
    "partition_tan",
    "validate_partition",
]
