"""Ablation benches for the design choices DESIGN.md calls out.

1. Incremental T2S vs dense replay: timing of the O(k * |Nin|) sparse
   update (the §IV-B optimization) against the dense-vector oracle.
2. ``|Nout|`` semantics: spenders-so-far vs created-outputs divisor.
3. L2S modes: shard_load vs accept_commit vs accept_accept, and closed
   form vs numerical integration agreement.
4. Temporal-fitness latency weight sweep around the paper's 0.01.
5. Greedy/T2S tie-breaking: random (paper-faithful) vs first vs lightest.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.baselines import GreedyPlacer, T2SOnlyPlacer
from repro.core.l2s import (
    ShardLatencyModel,
    _expected_max_closed_form,
    _expected_max_numeric,
)
from repro.core.optchain import OptChainPlacer
from repro.core.t2s import T2SScorer, t2s_reference_dense
from repro.experiments.runner import stream_for
from repro.partition.quality import balance_ratio, cross_shard_fraction

N_SHARDS = 16


def _replay_sparse(stream, n_shards):
    scorer = T2SScorer(n_shards)
    for tx in stream:
        sparse = scorer.add_transaction(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        shard = max(sparse, key=sparse.get) if sparse else tx.txid % n_shards
        scorer.place(tx.txid, shard)
    return scorer


def test_t2s_incremental_speed(benchmark, scale):
    """The incremental engine: the paper's core O(k) claim."""
    stream = stream_for(scale)
    scorer = benchmark.pedantic(
        lambda: _replay_sparse(stream, N_SHARDS), rounds=1, iterations=1
    )
    assert scorer.n_transactions == len(stream)


def test_t2s_dense_reference_slower_or_equal(scale):
    """The dense replay is the oracle, not the product: it allocates
    k floats per transaction. Verify agreement on a prefix."""
    stream = stream_for(scale)[:1_000]
    scorer = T2SScorer(N_SHARDS, prune_epsilon=0.0)
    arrivals = []
    placements = []
    for tx in stream:
        arrivals.append((tx.txid, tx.input_txids, len(tx.outputs)))
        sparse = scorer.add_transaction(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        shard = max(sparse, key=sparse.get) if sparse else tx.txid % N_SHARDS
        scorer.place(tx.txid, shard)
        placements.append(shard)
    dense = t2s_reference_dense(arrivals, placements, N_SHARDS)
    for txid in range(0, len(stream), 97):
        sparse = scorer.p_prime_of(txid)
        for shard in range(N_SHARDS):
            assert sparse.get(shard, 0.0) == pytest.approx(
                dense[txid][shard], abs=1e-12
            )


def test_outdeg_mode_ablation(benchmark, scale):
    """Divisor semantics: spenders-so-far vs created outputs."""
    stream = stream_for(scale)
    n = len(stream)

    def run_modes():
        rows = {}
        for mode in ("spenders", "outputs"):
            placer = T2SOnlyPlacer(
                N_SHARDS, expected_total=n, outdeg_mode=mode
            )
            assignment = placer.place_stream(stream)
            rows[mode] = cross_shard_fraction(stream, assignment)
        return rows

    rows = run_once(benchmark, run_modes)
    print()
    print(
        format_table(
            ["outdeg mode", "cross fraction"],
            [[m, f"{v:.2%}"] for m, v in rows.items()],
            title="Ablation: |Nout(v)| divisor semantics",
        )
    )
    # Both readings must land in the same quality class (far below
    # random placement's ~94%).
    assert all(v < 0.5 for v in rows.values())


def test_l2s_mode_ablation(benchmark, scale):
    """L2S reading: shard_load (balancing) vs full-path estimates."""
    stream = stream_for(scale)

    def run_modes():
        rows = {}
        for mode in ("shard_load", "accept_commit", "accept_accept"):
            placer = OptChainPlacer(N_SHARDS, l2s_mode=mode)
            assignment = placer.place_stream(stream)
            rows[mode] = (
                cross_shard_fraction(stream, assignment),
                balance_ratio(assignment, N_SHARDS),
            )
        return rows

    rows = run_once(benchmark, run_modes)
    print()
    print(
        format_table(
            ["l2s mode", "cross fraction", "balance ratio"],
            [
                [mode, f"{cross:.2%}", f"{balance:.2f}"]
                for mode, (cross, balance) in rows.items()
            ],
            title="Ablation: L2S interpretation (DESIGN.md #4)",
        )
    )
    # shard_load must balance at least as well as the sticky full-path
    # readings - that is why it is the default.
    assert rows["shard_load"][1] <= rows["accept_commit"][1] + 0.05


def test_l2s_closed_form_matches_numeric(benchmark):
    """Numerical-integration fallback agrees with the closed form."""
    models = [
        ShardLatencyModel(10.0, 0.21),
        ShardLatencyModel(6.5, 0.43),
        ShardLatencyModel(12.0, 0.17),
        ShardLatencyModel(9.0, 0.31),
    ]

    def compute():
        return (
            _expected_max_closed_form(models),
            _expected_max_numeric(models),
        )

    closed, numeric = run_once(benchmark, compute)
    assert closed == pytest.approx(numeric, rel=1e-4)


def test_fitness_weight_sweep(benchmark, scale):
    """Sweep the temporal-fitness weight around the paper's 0.01."""
    stream = stream_for(scale)

    def sweep():
        rows = []
        for weight in (0.0, 0.001, 0.01, 0.1, 1.0):
            placer = OptChainPlacer(N_SHARDS, latency_weight=weight)
            assignment = placer.place_stream(stream)
            rows.append(
                (
                    weight,
                    cross_shard_fraction(stream, assignment),
                    balance_ratio(assignment, N_SHARDS),
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["weight", "cross fraction", "balance ratio"],
            [
                [w, f"{c:.2%}", f"{b:.2f}"]
                for w, c, b in rows
            ],
            title="Ablation: temporal-fitness latency weight (paper: 0.01)",
        )
    )
    by_weight = {w: (c, b) for w, c, b in rows}
    # More latency pressure -> no worse balance; less -> no fewer cross.
    assert by_weight[1.0][1] <= by_weight[0.0][1] + 1e-9
    assert by_weight[0.0][0] <= by_weight[1.0][0] + 1e-9


def test_alpha_sweep(benchmark, scale):
    """Sweep the T2S restart probability around the paper's 0.5."""
    stream = stream_for(scale)
    n = len(stream)

    def sweep():
        rows = []
        for alpha in (0.1, 0.3, 0.5, 0.7, 0.9):
            placer = T2SOnlyPlacer(
                N_SHARDS, expected_total=n, alpha=alpha
            )
            assignment = placer.place_stream(stream)
            rows.append((alpha, cross_shard_fraction(stream, assignment)))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["alpha", "cross fraction"],
            [[a, f"{c:.2%}"] for a, c in rows],
            title="Ablation: T2S alpha (paper: 0.5)",
        )
    )
    # Every alpha must stay far below random placement; the paper's
    # choice need not be the unique optimum on this workload.
    assert all(c < 0.5 for _, c in rows)


def test_protocol_ablation(benchmark, scale):
    """OmniLedger's client-coordinated commit vs RapidChain yanking."""
    from repro.core.baselines import OmniLedgerRandomPlacer
    from repro.simulator import run_simulation

    stream = stream_for(scale)
    n_shards = max(scale.shard_counts)
    rate = min(scale.tx_rates)  # light load: isolate protocol latency

    def compare():
        rows = {}
        for protocol in ("omniledger", "rapidchain"):
            config = scale.simulation(n_shards, rate, protocol=protocol)
            result = run_simulation(
                stream, OmniLedgerRandomPlacer(n_shards), config
            )
            rows[protocol] = (
                result.average_latency,
                result.bandwidth_ratio,
            )
        return rows

    rows = run_once(benchmark, compare)
    print()
    print(
        format_table(
            ["protocol", "avg latency", "cross/same bandwidth"],
            [
                [name, f"{latency:.1f}s", f"{ratio:.2f}x"]
                for name, (latency, ratio) in rows.items()
            ],
            title="Ablation: cross-shard commit protocol",
        )
    )
    # Yanking skips the client round trip.
    assert rows["rapidchain"][0] < rows["omniledger"][0]
    # §III-B: a cross-TX costs about 3x a same-shard one.
    assert 1.5 <= rows["omniledger"][1] <= 4.5


def test_account_model_ablation(benchmark, scale):
    """Placement quality on an Ethereum-style account-model workload.

    §II: account-model transactions have at most one value input; the
    TaN collapses to interleaved chains. OptChain's advantage must
    survive (chains still carry community locality).
    """
    from repro.datasets.account_model import (
        AccountModelConfig,
        account_model_stream,
    )

    stream = account_model_stream(
        scale.n_transactions,
        seed=3,
        config=AccountModelConfig(
            n_accounts=max(100, scale.n_transactions // 15)
        ),
    )

    def compare():
        rows = {}
        for method in ("optchain", "omniledger"):
            from repro.core.baselines import OmniLedgerRandomPlacer
            from repro.core.optchain import OptChainPlacer

            placer = (
                OptChainPlacer(N_SHARDS)
                if method == "optchain"
                else OmniLedgerRandomPlacer(N_SHARDS)
            )
            assignment = placer.place_stream(stream)
            rows[method] = cross_shard_fraction(stream, assignment)
        return rows

    rows = run_once(benchmark, compare)
    print()
    print(
        format_table(
            ["method", "cross fraction (account model)"],
            [[m, f"{v:.2%}"] for m, v in rows.items()],
            title="Ablation: account-model (Ethereum-style) workload",
        )
    )
    assert rows["optchain"] < 0.5 * rows["omniledger"]


def test_spv_wallet_equivalence(benchmark, scale):
    """The decentralized SPV deployment equals the monolithic placer."""
    from repro.core.optchain import OptChainPlacer
    from repro.core.wallet import SPVWalletPlacer

    stream = stream_for(scale)

    def compare():
        spv = SPVWalletPlacer(N_SHARDS).place_stream(stream)
        # Matching offline comparison: OptChain with its load proxy.
        mono = OptChainPlacer(N_SHARDS).place_stream(stream)
        return spv, mono

    spv, mono = run_once(benchmark, compare)
    agreement = sum(1 for a, b in zip(spv, mono) if a == b) / len(spv)
    print(f"\nSPV/monolithic agreement: {agreement:.1%}")
    assert agreement == 1.0


def test_ledger_validation_ablation(benchmark, scale):
    """Cost of full UTXO validation: dependency parking delays children
    issued before their parents commit; conservation must hold."""
    from repro.core.baselines import OmniLedgerRandomPlacer
    from repro.simulator import run_simulation

    stream = stream_for(scale)
    n_shards = max(scale.shard_counts)
    rate = min(scale.tx_rates)

    def compare():
        rows = {}
        for validated in (False, True):
            config = scale.simulation(
                n_shards, rate, validate_ledger=validated
            )
            result = run_simulation(
                stream, OmniLedgerRandomPlacer(n_shards), config
            )
            rows[validated] = result
        return rows

    rows = run_once(benchmark, compare)
    print()
    print(
        format_table(
            ["validation", "avg latency", "parked", "committed"],
            [
                [
                    "on" if validated else "off",
                    f"{result.average_latency:.1f}s",
                    result.n_parked,
                    result.n_committed,
                ]
                for validated, result in rows.items()
            ],
            title="Ablation: full UTXO ledger validation",
        )
    )
    assert rows[True].n_committed == rows[False].n_committed
    assert rows[True].n_aborted == 0
    assert rows[True].average_latency >= rows[False].average_latency


def test_tie_break_ablation(benchmark, scale):
    """Greedy tie-breaking: the mechanism behind the paper's Fig. 6c."""
    stream = stream_for(scale)
    n = len(stream)

    def sweep():
        rows = []
        for tie_break in ("random", "first", "lightest"):
            placer = GreedyPlacer(
                N_SHARDS, expected_total=n, tie_break=tie_break
            )
            assignment = placer.place_stream(stream)
            rows.append(
                (
                    tie_break,
                    cross_shard_fraction(stream, assignment),
                    balance_ratio(assignment, N_SHARDS),
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["tie break", "cross fraction", "balance ratio"],
            [[t, f"{c:.2%}", f"{b:.2f}"] for t, c, b in rows],
            title="Ablation: Greedy tie-breaking",
        )
    )
    by_mode = {t: (c, b) for t, c, b in rows}
    assert by_mode["lightest"][1] <= by_mode["first"][1] + 1e-9
