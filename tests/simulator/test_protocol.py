"""Direct unit tests for the atomic-commit protocol state machine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.rng import make_rng
from repro.simulator.config import SimulationConfig
from repro.simulator.consensus import ConsensusModel
from repro.simulator.events import EventQueue
from repro.simulator.network import Network
from repro.simulator.protocol import AtomicCommitProtocol
from repro.simulator.shard import KIND_COMMIT, KIND_LOCK, KIND_TX, Entry, Shard
from repro.utxo.transaction import OutPoint, Transaction, TxOutput


def make_tx(txid=10, n_inputs=2):
    return Transaction(
        txid=txid,
        inputs=tuple(OutPoint(i, 0) for i in range(n_inputs)),
        outputs=(TxOutput(1),),
    )


class Harness:
    def __init__(self, n_shards=3, protocol="omniledger"):
        self.config = SimulationConfig(
            n_shards=n_shards,
            block_capacity=10,
            protocol=protocol,
            latency_jitter=0.0,
        )
        self.events = EventQueue()
        self.network = Network(self.config, make_rng(1))
        consensus = ConsensusModel(self.config)
        self.confirmed: list[tuple[int, float]] = []
        self.aborted: list[int] = []
        self.shards = [
            Shard(
                shard_id,
                self.config,
                consensus,
                self.events,
                lambda sid, entry: self.protocol.entry_committed(sid, entry),
            )
            for shard_id in range(n_shards)
        ]
        self.protocol = AtomicCommitProtocol(
            self.config,
            self.network,
            self.shards,
            self.events,
            on_confirmed=lambda txid: self.confirmed.append(
                (txid, self.events.now)
            ),
            on_aborted=self.aborted.append,
            abort_txids=set(),
        )


class TestSameShard:
    def test_single_entry_lifecycle(self):
        harness = Harness()
        harness.protocol.submit(make_tx(), output_shard=1, input_shards={1})
        harness.events.run()
        assert [txid for txid, _ in harness.confirmed] == [10]
        assert harness.protocol.n_same_shard == 1
        assert harness.protocol.n_cross == 0
        assert harness.shards[1].n_entries_committed == 1
        assert harness.shards[0].n_entries_committed == 0

    def test_coinbase_is_same_shard(self):
        harness = Harness()
        harness.protocol.submit(
            make_tx(n_inputs=0), output_shard=2, input_shards=set()
        )
        harness.events.run()
        assert harness.protocol.n_same_shard == 1


class TestCrossShard:
    def test_two_phase_lifecycle(self):
        harness = Harness()
        harness.protocol.submit(
            make_tx(), output_shard=2, input_shards={0, 1}
        )
        harness.events.run()
        assert [txid for txid, _ in harness.confirmed] == [10]
        assert harness.protocol.n_cross == 1
        # One lock entry per input shard, one commit at the output shard.
        assert harness.shards[0].n_entries_committed == 1
        assert harness.shards[1].n_entries_committed == 1
        assert harness.shards[2].n_entries_committed == 1
        assert harness.protocol.n_in_flight == 0

    def test_output_shard_also_input(self):
        """When the output shard holds an input it locks AND commits."""
        harness = Harness()
        harness.protocol.submit(
            make_tx(), output_shard=1, input_shards={0, 1}
        )
        harness.events.run()
        assert harness.shards[1].n_entries_committed == 2  # lock + commit
        assert harness.shards[0].n_entries_committed == 1

    def test_cross_confirms_after_same_shard(self):
        """Two sequential block commits make cross-TXs slower."""
        harness = Harness()
        harness.protocol.submit(
            make_tx(txid=10), output_shard=2, input_shards={0}
        )
        harness.protocol.submit(
            make_tx(txid=11), output_shard=2, input_shards={2}
        )
        harness.events.run()
        times = dict(harness.confirmed)
        assert times[10] > times[11]

    def test_abort_path(self):
        harness = Harness()
        harness.protocol._abort_txids = {10}
        harness.protocol.submit(
            make_tx(), output_shard=2, input_shards={0, 1}
        )
        harness.events.run()
        assert harness.aborted == [10]
        assert harness.confirmed == []
        # The output shard never saw the transaction.
        assert harness.shards[2].n_entries_committed == 0

    def test_unknown_lock_rejected(self):
        harness = Harness()
        with pytest.raises(SimulationError):
            harness.protocol.entry_committed(0, Entry(KIND_LOCK, 99))

    def test_unknown_kind_rejected(self):
        harness = Harness()
        with pytest.raises(SimulationError):
            harness.protocol.entry_committed(0, Entry("bogus", 1))


class TestRapidChain:
    def test_yank_lifecycle(self):
        harness = Harness(protocol="rapidchain")
        harness.protocol.submit(
            make_tx(), output_shard=2, input_shards={0, 1}
        )
        harness.events.run()
        assert [txid for txid, _ in harness.confirmed] == [10]
        assert harness.shards[2].n_entries_committed == 1

    def test_yank_skips_client_round_trip(self):
        omni = Harness(protocol="omniledger")
        omni.protocol.submit(make_tx(), output_shard=2, input_shards={0})
        omni.events.run()
        rapid = Harness(protocol="rapidchain")
        rapid.protocol.submit(make_tx(), output_shard=2, input_shards={0})
        rapid.events.run()
        assert rapid.confirmed[0][1] < omni.confirmed[0][1]


class TestEntryKinds:
    def test_tx_and_commit_both_confirm(self):
        harness = Harness()
        harness.protocol.submit(make_tx(txid=1), 0, {0})
        harness.protocol.submit(make_tx(txid=2), 1, {0})
        harness.events.run()
        assert sorted(txid for txid, _ in harness.confirmed) == [1, 2]

    def test_kind_constants_distinct(self):
        assert len({KIND_TX, KIND_LOCK, KIND_COMMIT}) == 3
