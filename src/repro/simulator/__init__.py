"""Discrete-event sharded-blockchain simulator.

The paper evaluates OptChain on a Bitcoin-like system simulated with
OverSim on OMNeT++ 4.6; this package is the from-scratch substitute
(DESIGN.md §4, substitution 2). It keeps the paper's network constants -
20 Mbps links, 100 ms coordinate-scaled propagation, 1 MB blocks of 2000
transactions, a committee per shard - and simulates the full queueing and
protocol dynamics:

- per-shard mempool queues and sequential block production
  (:mod:`repro.simulator.shard`), with consensus latency parameterized by
  committee size and block fill (:mod:`repro.simulator.consensus`);
- the OmniLedger lock / proof-of-acceptance / unlock-to-commit protocol
  for cross-shard transactions, plus RapidChain-style yanking as an
  alternative (:mod:`repro.simulator.protocol`);
- clients issuing a transaction stream at a configurable rate and
  running any :class:`~repro.core.placement.PlacementStrategy`
  (:mod:`repro.simulator.client`);
- metric collection - per-transaction confirmation latency, throughput,
  queue-size time series - and the live latency observer that feeds
  OptChain's L2S score (:mod:`repro.simulator.metrics`).

Entry point: :func:`repro.simulator.engine.run_simulation`. The
pre-overhaul event loop is preserved as
:func:`repro.simulator._seed_reference.run_simulation_seed` for the
equivalence tests and the throughput benchmark.
"""

from repro.simulator.committees import (
    Committee,
    CommitteeAssignment,
    failure_probability_bound,
)
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import SimulationResult, run_simulation
from repro.simulator.metrics import LatencyObserver, MetricsCollector

__all__ = [
    "Committee",
    "CommitteeAssignment",
    "LatencyObserver",
    "MetricsCollector",
    "SimulationConfig",
    "SimulationResult",
    "failure_probability_bound",
    "run_simulation",
]
