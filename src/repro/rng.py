"""Deterministic random-number utilities.

All stochastic components in this package (workload generation, network
jitter, placement tie-breaking) draw from explicitly seeded generators so
that every experiment is reproducible bit-for-bit. This module wraps
:class:`random.Random` with a few distributions the generators need
(Zipf-like ranks, bounded power laws) that the standard library lacks.

NumPy generators are deliberately avoided on hot paths: per-call overhead
of scalar draws from ``numpy.random.Generator`` is higher than
``random.Random``, and the simulator draws one latency sample per message.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.errors import ConfigurationError


def make_rng(seed: int | None) -> random.Random:
    """Return a fresh :class:`random.Random` seeded with ``seed``.

    ``None`` is accepted for convenience but still produces a *fixed*
    generator (seed 0): this library favours reproducibility over
    incidental entropy.
    """
    return random.Random(0 if seed is None else seed)


def derive_rng(rng: random.Random, salt: str) -> random.Random:
    """Derive an independent generator from ``rng`` and a string salt.

    Used to give each simulator component its own stream so that adding
    draws in one component does not perturb another.
    """
    return random.Random(f"{rng.getrandbits(64)}:{salt}")


class ZipfSampler:
    """Sample ranks ``0..n-1`` with probability proportional to ``1/(r+1)^s``.

    A small exponent (``s`` around 0.6-1.1) reproduces the heavy-tailed
    "few busy wallets, many idle ones" behaviour of real Bitcoin activity.
    The cumulative table is precomputed once; sampling is a binary search,
    O(log n) per draw.
    """

    def __init__(self, n: int, exponent: float, rng: random.Random) -> None:
        if n <= 0:
            raise ConfigurationError(f"ZipfSampler needs n > 0, got {n}")
        if exponent < 0:
            raise ConfigurationError(
                f"ZipfSampler needs exponent >= 0, got {exponent}"
            )
        self._rng = rng
        self._cumulative: list[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / math.pow(rank + 1, exponent)
            self._cumulative.append(total)
        self._total = total

    @property
    def n(self) -> int:
        """Number of ranks this sampler draws from."""
        return len(self._cumulative)

    def sample(self) -> int:
        """Return one rank in ``[0, n)``."""
        needle = self._rng.random() * self._total
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < needle:
                lo = mid + 1
            else:
                hi = mid
        return lo


def bounded_power_law(
    rng: random.Random, minimum: int, maximum: int, exponent: float
) -> int:
    """Draw an integer in ``[minimum, maximum]`` from a discrete power law.

    Probability of value ``v`` is proportional to ``v ** -exponent``. Used
    for transaction fan-in / fan-out counts, which the paper reports as
    power-law distributed with mean about 2.3.
    """
    if minimum < 1 or maximum < minimum:
        raise ConfigurationError(
            f"bounded_power_law needs 1 <= minimum <= maximum, "
            f"got [{minimum}, {maximum}]"
        )
    if minimum == maximum:
        return minimum
    weights = [math.pow(v, -exponent) for v in range(minimum, maximum + 1)]
    total = sum(weights)
    needle = rng.random() * total
    acc = 0.0
    for value, weight in zip(range(minimum, maximum + 1), weights):
        acc += weight
        if acc >= needle:
            return value
    return maximum


def weighted_choice(rng: random.Random, weights: Sequence[float]) -> int:
    """Return an index sampled proportionally to ``weights``.

    Falls back to uniform choice when all weights are zero, and raises on
    negative weights because silent clamping hides generator bugs.
    """
    total = 0.0
    for weight in weights:
        if weight < 0:
            raise ConfigurationError(f"negative weight {weight!r}")
        total += weight
    if total == 0.0:
        return rng.randrange(len(weights))
    needle = rng.random() * total
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if acc >= needle:
            return index
    return len(weights) - 1


def exponential(rng: random.Random, rate: float) -> float:
    """Draw from Exp(rate). ``rate`` is events per unit time (lambda)."""
    if rate <= 0:
        raise ConfigurationError(f"exponential rate must be > 0, got {rate}")
    return rng.expovariate(rate)
