"""Regenerates Fig. 5: committed transactions per time window.

Shape asserted: OptChain's commit rate is at least as steady as Metis's
(the paper's Metis line oscillates and starts slow).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig5


def test_fig5(benchmark, scale):
    histograms = run_once(benchmark, lambda: fig5.run(scale))
    print()
    print(fig5.as_table(histograms))
    for method, histogram in histograms.items():
        total = sum(count for _, count in histogram)
        assert total == scale.n_transactions, method
    assert fig5.oscillation(histograms["optchain"]) <= (
        fig5.oscillation(histograms["metis"]) * 1.05
    )
