"""Latency-to-Shard (L2S) score - §IV-C of the paper.

The model: communication between the user and shard ``i`` takes
``Exp(lambda_c_i)`` time; verification at shard ``i`` takes
``Exp(lambda_v_i)``. Time to a proof-of-acceptance from shard ``i`` is
the sum of the two (a hypoexponential), with CDF::

    F_i(t) = lv/(lv-lc) * (1 - e^{-lc t}) - lc/(lv-lc) * (1 - e^{-lv t})

If transaction ``u`` is placed in shard ``j`` it needs acceptances from
its input shards ``S_j``, gathered in parallel, so the time to have all
of them is ``max_i T_i`` with CDF ``prod F_i``; afterwards the commit at
shard ``j`` takes another hypoexponential. The L2S score is the expected
total::

    E(j) = E[max_{S_i in S_j} T_i] + E[T_commit_j]

**Mode choice.** The paper's formula (Alg. 1 line 6) convolves
``f_v^{(j)}`` with itself; the prose suggests an accept-then-commit
pipeline. Three readings of that ambiguity are implemented and compared
in ``benchmarks/bench_ablation.py``:

- ``"shard_load"`` (OptChain's default): ``E(j)`` is shard ``j``'s own
  hypoexponential traversed once for a same-shard placement and twice
  (lock pass + commit pass) for a cross-shard one. This is the only
  reading whose score *decreases* when moving away from a congested
  shard - the acceptance-at-input-shards term of the other readings is
  identical for every candidate ``j``, so they can never trade a
  cross-TX for load relief - and therefore the only one that reproduces
  the temporal balancing the paper observes (Figs. 6a, 7).
- ``"accept_commit"``: full-path estimate
  ``E[max_{S_i} T_i] + E[T_commit_j]`` - the best per-transaction latency
  predictor (validated against the simulator in tests), used by the
  ablation bench.
- ``"accept_accept"``: the literal self-convolution of the acceptance
  density, expectation ``2 * E[max]``.

``E[max]`` has a closed form: expanding ``prod_i F_i`` gives a signed sum
of exponentials, and ``E[max] = integral of (1 - prod F_i)`` integrates
each term to ``coefficient / rate``. The expansion has ``3^m`` terms and
catastrophic cancellation when ``lc`` is close to ``lv``, so the
estimator switches to numerical integration for many shards or
near-degenerate rates; tests verify the two paths agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

L2S_MODES = ("shard_load", "accept_commit", "accept_accept")

# Closed form is used only when safe: few shards (3^m term blowup) and
# well-separated rates (cancellation in the partial-fraction
# coefficients).
_MAX_CLOSED_FORM_SHARDS = 7
_MIN_RATE_SEPARATION = 1e-3


@dataclass(frozen=True, slots=True)
class ShardLatencyModel:
    """Exponential latency parameters of one shard.

    ``lambda_c``: communication rate (1 / expected user-shard round trip).
    ``lambda_v``: verification rate (1 / expected time for the shard to
    process the transaction through its queue and consensus).
    """

    lambda_c: float
    lambda_v: float

    def __post_init__(self) -> None:
        if self.lambda_c <= 0 or self.lambda_v <= 0:
            raise ConfigurationError(
                f"rates must be > 0, got lambda_c={self.lambda_c}, "
                f"lambda_v={self.lambda_v}"
            )

    @property
    def expected_total(self) -> float:
        """Mean of the hypoexponential: ``1/lambda_c + 1/lambda_v``."""
        return 1.0 / self.lambda_c + 1.0 / self.lambda_v

    def cdf(self, t: float) -> float:
        """``F_i(t)``: probability the proof arrives by time ``t``."""
        if t <= 0.0:
            return 0.0
        lc, lv = self.lambda_c, self.lambda_v
        if math.isclose(lc, lv, rel_tol=1e-9):
            # Erlang(2, lambda) limit of the hypoexponential.
            return 1.0 - math.exp(-lc * t) * (1.0 + lc * t)
        return (
            lv / (lv - lc) * (1.0 - math.exp(-lc * t))
            - lc / (lv - lc) * (1.0 - math.exp(-lv * t))
        )

    def pdf(self, t: float) -> float:
        """Density of the proof-arrival time."""
        if t < 0.0:
            return 0.0
        lc, lv = self.lambda_c, self.lambda_v
        if math.isclose(lc, lv, rel_tol=1e-9):
            return lc * lc * t * math.exp(-lc * t)
        return lc * lv / (lv - lc) * (math.exp(-lc * t) - math.exp(-lv * t))


def acceptance_cdf(models: Sequence[ShardLatencyModel], t: float) -> float:
    """CDF of the *last* proof-of-acceptance: ``prod_i F_i(t)``."""
    product = 1.0
    for model in models:
        product *= model.cdf(t)
        if product == 0.0:
            return 0.0
    return product


def expected_max_acceptance(models: Sequence[ShardLatencyModel]) -> float:
    """``E[max_i T_i]`` for parallel acceptance from several shards."""
    if not models:
        return 0.0
    if len(models) == 1:
        return models[0].expected_total
    if _closed_form_safe(models):
        return _expected_max_closed_form(models)
    return _expected_max_numeric(models)


def _closed_form_safe(models: Sequence[ShardLatencyModel]) -> bool:
    if len(models) > _MAX_CLOSED_FORM_SHARDS:
        return False
    return all(
        abs(m.lambda_v - m.lambda_c)
        > _MIN_RATE_SEPARATION * max(m.lambda_v, m.lambda_c)
        for m in models
    )


def _expected_max_closed_form(models: Sequence[ShardLatencyModel]) -> float:
    # prod_i F_i(t) = prod_i (1 + a_i e^{-lc_i t} + b_i e^{-lv_i t})
    # expands to sum of c * e^{-r t} terms; E[max] = -sum c/r over the
    # non-constant terms.
    terms: list[tuple[float, float]] = [(1.0, 0.0)]  # (coefficient, rate)
    for model in models:
        lc, lv = model.lambda_c, model.lambda_v
        a = -lv / (lv - lc)
        b = lc / (lv - lc)
        expanded: list[tuple[float, float]] = []
        for coefficient, rate in terms:
            expanded.append((coefficient, rate))
            expanded.append((coefficient * a, rate + lc))
            expanded.append((coefficient * b, rate + lv))
        terms = expanded
    expectation = 0.0
    for coefficient, rate in terms:
        if rate > 0.0:
            expectation -= coefficient / rate
    return expectation


def _expected_max_numeric(
    models: Sequence[ShardLatencyModel], n_points: int = 4096
) -> float:
    # E[max] = integral over t of (1 - prod F_i). The integrand decays
    # like the slowest shard's tail; 40 mean-lifetimes of the slowest
    # shard bounds the truncation error far below the integration error.
    # With widely separated time scales (one shard orders of magnitude
    # faster than the slowest) a single uniform grid under-resolves the
    # fast shard's rise near t=0, so the integral is split there and each
    # panel gets its own Simpson grid.
    horizon = 40.0 * max(model.expected_total for model in models)
    split = 10.0 * min(model.expected_total for model in models)
    if split >= horizon / 2.0:
        return _simpson_tail_integral(models, 0.0, horizon, n_points)
    return _simpson_tail_integral(
        models, 0.0, split, n_points // 2
    ) + _simpson_tail_integral(models, split, horizon, n_points // 2)


def _simpson_tail_integral(
    models: Sequence[ShardLatencyModel],
    start: float,
    end: float,
    n_points: int,
) -> float:
    # Composite Simpson over [start, end] of (1 - prod F_i); needs an
    # even interval count.
    step = (end - start) / n_points
    total = 1.0 - acceptance_cdf(models, start)
    total += 1.0 - acceptance_cdf(models, end)
    for index in range(1, n_points):
        weight = 4.0 if index % 2 == 1 else 2.0
        total += weight * (1.0 - acceptance_cdf(models, start + index * step))
    return total * step / 3.0


class L2SEstimator:
    """Computes L2S scores ``E(j)`` for every candidate shard.

    Construct with the per-shard latency models (refreshed by whoever
    observes the network: the simulator's
    :class:`~repro.simulator.metrics.LatencyObserver` or a wallet's
    sampling loop) and ask for the expected confirmation latency of each
    placement choice.
    """

    __slots__ = ("_models", "_totals", "mode")

    def __init__(
        self,
        models: Sequence[ShardLatencyModel],
        mode: str = "accept_commit",
    ) -> None:
        if mode not in L2S_MODES:
            raise ConfigurationError(
                f"mode must be one of {L2S_MODES}, got {mode!r}"
            )
        self.mode = mode
        self._models: list[ShardLatencyModel] | None = None
        self._totals: list[float] = []
        self.update(models)

    def update(self, models: Sequence[ShardLatencyModel]) -> None:
        """Refresh the per-shard models in place.

        The estimator is long-lived: construct it once and feed it fresh
        models each placement instead of rebuilding the object (and
        re-validating every dataclass) per transaction. ``expected_total``
        of each model is memoized here so the scoring loops never touch
        model attributes.
        """
        if not models:
            raise ConfigurationError("L2SEstimator needs at least one shard")
        self._models = list(models)
        self._totals = [model.expected_total for model in models]

    def update_rates(
        self,
        comm_times: Sequence[float],
        verify_times: Sequence[float],
    ) -> None:
        """Raw-rates refresh for ``shard_load`` mode: no model objects.

        ``shard_load`` scoring only reads the per-shard expected total,
        so providers can push plain expected communication / verification
        times and skip constructing (and validating) one
        :class:`ShardLatencyModel` per shard per transaction. The totals
        are computed through the same double inversion the dataclass
        would apply (``1/(1/t)``), keeping scores bit-identical to the
        model-object path.
        """
        if self.mode != "shard_load":
            raise ConfigurationError(
                "update_rates is only valid in shard_load mode; "
                f"mode is {self.mode!r} (it needs full models for the "
                "acceptance CDF)"
            )
        if not comm_times or len(comm_times) != len(verify_times):
            raise ConfigurationError(
                f"update_rates needs matching non-empty sequences, got "
                f"{len(comm_times)} comm and {len(verify_times)} verify"
            )
        self._models = None
        self._totals = [
            1.0 / (1.0 / comm) + 1.0 / (1.0 / verify)
            for comm, verify in zip(comm_times, verify_times)
        ]

    @property
    def n_shards(self) -> int:
        """Number of shards covered by the models."""
        return len(self._totals)

    @property
    def expected_totals(self) -> list[float]:
        """Memoized ``expected_total`` per shard (copy)."""
        return list(self._totals)

    def model_of(self, shard: int) -> ShardLatencyModel:
        """The latency model of one shard."""
        if self._models is None:
            raise ConfigurationError(
                "estimator was fed raw rates (update_rates); full models "
                "are not available"
            )
        return self._models[shard]

    def score(self, shard: int, input_shards: Iterable[int]) -> float:
        """``E(j)``: expected confirmation latency placing into ``shard``.

        ``input_shards`` are the shards holding the transaction's inputs
        (``Sin(u)``). When they are empty (coinbase) or all equal to
        ``shard`` (same-shard transaction) there is no acceptance phase.
        """
        acceptance = {s for s in input_shards}
        totals = self._totals
        if not 0 <= shard < len(totals):
            raise ConfigurationError(
                f"shard {shard} out of range [0, {len(totals)})"
            )
        is_cross = bool(acceptance) and acceptance != {shard}
        if not is_cross:
            return totals[shard]
        if self.mode == "shard_load":
            return 2.0 * totals[shard]
        models = self._require_models()
        acceptance_models = [models[s] for s in sorted(acceptance)]
        expected_accept = expected_max_acceptance(acceptance_models)
        if self.mode == "accept_accept":
            return 2.0 * expected_accept
        return expected_accept + totals[shard]

    def scores_all(self, input_shards: Iterable[int]) -> list[float]:
        """``E(j)`` for every shard ``j`` (one call per arriving tx).

        The acceptance set ``Sin(u)`` does not depend on the candidate
        shard, so ``E[max]`` is computed once and reused; only the
        same-shard special case (``Sin == {j}``) skips it.
        """
        shards = set(input_shards)
        totals = self._totals
        n = len(totals)
        if not shards:
            return list(totals)
        if self.mode == "shard_load":
            if len(shards) == 1:
                only = next(iter(shards))
                return [
                    total * (1.0 if j == only else 2.0)
                    for j, total in enumerate(totals)
                ]
            return [total * 2.0 for total in totals]
        models = self._require_models()
        acceptance_models = [models[s] for s in sorted(shards)]
        expected_accept = expected_max_acceptance(acceptance_models)
        scores = []
        for j in range(n):
            if shards == {j}:
                scores.append(totals[j])
            elif self.mode == "accept_accept":
                scores.append(2.0 * expected_accept)
            else:
                scores.append(expected_accept + totals[j])
        return scores

    def _require_models(self) -> list[ShardLatencyModel]:
        models = self._models
        if models is None:
            raise ConfigurationError(
                "estimator was fed raw rates (update_rates); "
                f"{self.mode!r} scoring needs full models"
            )
        return models
