"""Unit tests for the event queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue


class TestScheduling:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda: order.append("b"))
        queue.schedule(1.0, lambda: order.append("a"))
        queue.schedule(3.0, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        queue = EventQueue()
        order = []
        for tag in range(5):
            queue.schedule(1.0, lambda tag=tag: order.append(tag))
        queue.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        queue = EventQueue()
        times = []
        queue.schedule(1.5, lambda: times.append(queue.now))
        queue.schedule(4.0, lambda: times.append(queue.now))
        queue.run()
        assert times == [1.5, 4.0]
        assert queue.now == 4.0

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule_at(2.0, lambda: None)

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        seen = []

        def chain(n):
            seen.append(queue.now)
            if n > 0:
                queue.schedule(1.0, lambda: chain(n - 1))

        queue.schedule(0.0, lambda: chain(3))
        queue.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]


class TestTypedRecords:
    def test_schedule_event_dispatches_payload(self):
        queue = EventQueue()
        seen = []

        def handler(a, b):
            seen.append((a, b))

        queue.schedule_event(1.0, handler, "x", 2)
        queue.schedule_event(0.5, handler)  # payload defaults to None
        queue.run()
        assert seen == [(None, None), ("x", 2)]

    def test_typed_and_thunk_events_interleave_fifo(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda: order.append("thunk"))
        queue.schedule_event(1.0, lambda a, b: order.append("typed"))
        queue.schedule(1.0, lambda: order.append("thunk2"))
        queue.run()
        assert order == ["thunk", "typed", "thunk2"]

    def test_schedule_event_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_event(-0.1, lambda a, b: None)

    def test_step_dispatches_typed_record(self):
        queue = EventQueue()
        seen = []
        queue.schedule_event(2.0, lambda a, b: seen.append(a), 7)
        assert queue.step() is True
        assert seen == [7]
        assert queue.now == 2.0
        assert queue.n_processed == 1


class TestRunBounds:
    def test_until_leaves_later_events(self):
        queue = EventQueue()
        ran = []
        queue.schedule(1.0, lambda: ran.append(1))
        queue.schedule(10.0, lambda: ran.append(10))
        queue.run(until=5.0)
        assert ran == [1]
        assert queue.now == 5.0
        assert queue.n_pending == 1

    def test_max_events(self):
        queue = EventQueue()
        ran = []
        for i in range(10):
            queue.schedule(float(i), lambda i=i: ran.append(i))
        queue.run(max_events=3)
        assert ran == [0, 1, 2]

    def test_counters(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.n_pending == 2
        queue.run()
        assert queue.n_processed == 2
        assert queue.n_pending == 0

    def test_step_on_empty(self):
        assert EventQueue().step() is False

    def test_until_advances_clock_with_future_events_left(self):
        """run(until=...) must leave strictly-later events queued and
        still advance the clock to the bound."""
        queue = EventQueue()
        ran = []
        queue.schedule(1.0, lambda: ran.append(1))
        queue.schedule(4.0, lambda: ran.append(4))
        queue.schedule(9.0, lambda: ran.append(9))
        queue.run(until=4.0)  # events at exactly `until` run
        assert ran == [1, 4]
        assert queue.now == 4.0
        assert queue.n_pending == 1
        queue.run()
        assert ran == [1, 4, 9]

    def test_until_on_empty_queue_leaves_clock(self):
        """The seed loop never advanced the clock when the queue was
        already empty; the batch loop preserves that."""
        queue = EventQueue()
        queue.run(until=5.0)
        assert queue.now == 0.0

    def test_until_with_max_events_checks_count_first(self):
        queue = EventQueue()
        ran = []
        for i in range(5):
            queue.schedule(float(i), lambda i=i: ran.append(i))
        queue.run(until=10.0, max_events=2)
        assert ran == [0, 1]
        assert queue.n_pending == 3

    def test_max_events_counts_only_executed(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run(max_events=10)
        assert queue.n_processed == 1

    def test_schedule_at_past_rejected_after_batch_run(self):
        queue = EventQueue()
        queue.schedule_event(3.0, lambda a, b: None)
        queue.run()
        assert queue.now == 3.0
        with pytest.raises(SimulationError):
            queue.schedule_at(2.999, lambda: None)
        queue.schedule_at(3.0, lambda: None)  # exactly now is allowed

    def test_processed_counter_exact_after_handler_raises(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)

        def boom():
            raise RuntimeError("boom")

        queue.schedule(2.0, boom)
        queue.schedule(3.0, lambda: None)
        with pytest.raises(RuntimeError):
            queue.run()
        assert queue.n_processed == 2  # the failing event counts
        assert queue.n_pending == 1


class TestSameTimestampOrdering:
    """Outage pause/resume ordering at identical timestamps.

    schedule_at uses the same (time, sequence) total order as every
    other event, so a resume scheduled after a pause at the same
    instant must run after it - a zero-length outage, not a reversed
    one. This is the ordering the engine relies on for back-to-back
    outage specs."""

    def test_pause_then_resume_same_instant(self):
        queue = EventQueue()
        states = []
        queue.schedule_at(5.0, lambda: states.append("pause"))
        queue.schedule_at(5.0, lambda: states.append("resume"))
        queue.run()
        assert states == ["pause", "resume"]

    def test_zero_length_outage_in_engine(self):
        """An outage whose end equals the next outage's start keeps the
        shard producing blocks: end-before-start FIFO at the boundary."""
        from repro.simulator.config import SimulationConfig
        from repro.simulator.consensus import ConsensusModel
        from repro.simulator.shard import KIND_TX, Entry, Shard

        cfg = SimulationConfig(block_capacity=10, latency_jitter=0.0)
        queue = EventQueue()
        committed = []
        shard = Shard(
            0,
            cfg,
            ConsensusModel(cfg),
            queue,
            lambda sid, entry: committed.append(entry.txid),
        )
        for txid in range(5):
            shard.enqueue(Entry(KIND_TX, txid))
        # Two back-to-back outages: [1, 2) and [2, 3). At t=2 the first
        # resume and the second pause collide; scheduling order decides.
        queue.schedule_at(1.0, shard.pause)
        queue.schedule_at(2.0, shard.resume)
        queue.schedule_at(2.0, shard.pause)
        queue.schedule_at(3.0, shard.resume)
        queue.run()
        assert committed == [0, 1, 2, 3, 4]
        assert shard.paused is False
