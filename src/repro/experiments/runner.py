"""Shared machinery for the experiment sweeps.

Caches are process-wide and keyed by scale, so the 8 simulation-derived
figures (3-10) share one grid of simulation runs instead of re-simulating
per figure, and the static tables share one workload and one Metis
partition per shard count.

:func:`simulate_grid` runs the (method x shards x rate) grid behind
Figs. 3-10. Grid points are independent simulations, so missing points
are dispatched to a process pool (``REPRO_JOBS`` or the machine's CPU
count) and folded back into the process-wide cache; each worker reuses
its per-process workload cache across the points it serves, and Metis
partitions are computed once in the parent and shipped to workers
instead of re-partitioning the TaN per process. Results are identical
to a serial run - every simulation is seeded and self-contained - which
``tests/experiments/test_parallel_grid.py`` pins.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache

from repro.core.baselines import (
    GreedyPlacer,
    MetisOfflinePlacer,
    OmniLedgerRandomPlacer,
    T2SOnlyPlacer,
    TopKT2SOnlyPlacer,
)
from repro.core.optchain import OptChainPlacer, TopKOptChainPlacer
from repro.core.placement import PlacementStrategy
from repro.datasets.synthetic import BitcoinLikeGenerator
from repro.errors import ConfigurationError
from repro.experiments.configs import ExperimentScale, get_scale
from repro.partition.metis_like import partition_tan
from repro.simulator.engine import SimulationResult, run_simulation
from repro.txgraph.tan import TaNGraph
from repro.utxo.transaction import Transaction

#: The four methods of the paper's evaluation, in its display order.
METHODS = ("optchain", "omniledger", "metis", "greedy")

#: The three online methods of Tables I/II plus Metis.
TABLE_METHODS = ("metis", "greedy", "omniledger", "t2s")

_STREAM_CACHE: dict[tuple[str, int], list[Transaction]] = {}
_TAN_CACHE: dict[tuple[str, int], TaNGraph] = {}
_METIS_CACHE: dict[tuple[str, int, int], list[int]] = {}
_SIM_CACHE: dict[tuple, SimulationResult] = {}


def stream_for(scale: ExperimentScale, seed: int = 1) -> list[Transaction]:
    """The workload stream of a scale (cached)."""
    key = (scale.name, seed)
    if key not in _STREAM_CACHE:
        _STREAM_CACHE[key] = BitcoinLikeGenerator(
            config=scale.generator, seed=seed
        ).generate(scale.n_transactions)
    return _STREAM_CACHE[key]


def tan_for(scale: ExperimentScale, seed: int = 1) -> TaNGraph:
    """TaN graph of the scale's workload (cached)."""
    key = (scale.name, seed)
    if key not in _TAN_CACHE:
        _TAN_CACHE[key] = TaNGraph.from_transactions(stream_for(scale, seed))
    return _TAN_CACHE[key]


def metis_assignment(
    scale: ExperimentScale, n_shards: int, seed: int = 1
) -> list[int]:
    """Offline Metis-like partition of the full TaN (cached)."""
    key = (scale.name, seed, n_shards)
    if key not in _METIS_CACHE:
        _METIS_CACHE[key] = partition_tan(tan_for(scale, seed), n_shards)
    return _METIS_CACHE[key]


def build_placer(
    method: str,
    n_shards: int,
    scale: ExperimentScale,
    expected_total: int | None = None,
    seed: int = 1,
) -> PlacementStrategy:
    """Construct a fresh placer for one run.

    ``expected_total`` feeds the Greedy/T2S size caps in static table
    runs; simulation runs leave it ``None`` (online cap).

    ``method`` also accepts a full strategy-spec string
    (``optchain-topk:cap=4,backend=numpy``, see
    :class:`repro.core.spec.StrategySpec`) - the same grammar the CLI
    and the service take - with the scale's defaults filled in for
    options the spec leaves open.
    """
    if ":" in method:
        from repro.core.placement import make_placer
        from repro.core.spec import StrategySpec

        spec = StrategySpec.parse(method)
        kwargs: dict = {}
        if spec.method in ("optchain-topk", "t2s-topk") and spec.cap is None:
            kwargs["support_cap"] = scale.topk_support_cap
        if spec.method in ("greedy", "t2s", "t2s-topk"):
            kwargs["expected_total"] = expected_total
        return make_placer(spec, n_shards, **kwargs)
    if method == "optchain":
        return OptChainPlacer(n_shards)
    if method == "optchain-topk":
        return TopKOptChainPlacer(
            n_shards, support_cap=scale.topk_support_cap
        )
    if method == "t2s-topk":
        return TopKT2SOnlyPlacer(
            n_shards,
            support_cap=scale.topk_support_cap,
            expected_total=expected_total,
        )
    if method == "omniledger":
        return OmniLedgerRandomPlacer(n_shards)
    if method == "greedy":
        return GreedyPlacer(n_shards, expected_total=expected_total)
    if method == "t2s":
        return T2SOnlyPlacer(n_shards, expected_total=expected_total)
    if method == "metis":
        return MetisOfflinePlacer(
            n_shards, precomputed=metis_assignment(scale, n_shards, seed)
        )
    raise ConfigurationError(f"unknown method {method!r}")


def simulate(
    scale: ExperimentScale,
    method: str,
    n_shards: int,
    tx_rate: float,
    seed: int = 1,
) -> SimulationResult:
    """One simulation grid point (cached process-wide)."""
    key = (scale.name, method, n_shards, tx_rate, seed)
    if key not in _SIM_CACHE:
        stream = stream_for(scale, seed)
        placer = build_placer(method, n_shards, scale, seed=seed)
        config = scale.simulation(n_shards, tx_rate)
        _SIM_CACHE[key] = run_simulation(stream, placer, config)
    return _SIM_CACHE[key]


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker-count policy: explicit arg > ``REPRO_JOBS`` > CPU count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _simulate_point(
    scale: ExperimentScale,
    method: str,
    n_shards: int,
    tx_rate: float,
    seed: int,
    metis: list[int] | None,
) -> SimulationResult:
    """One grid point, self-contained for process-pool dispatch.

    Workers inherit (fork) or rebuild the per-process stream cache; the
    parent ships the Metis partition so workers never re-partition.
    """
    if metis is not None:
        _METIS_CACHE.setdefault((scale.name, seed, n_shards), metis)
    return run_simulation(
        stream_for(scale, seed),
        build_placer(method, n_shards, scale, seed=seed),
        scale.simulation(n_shards, tx_rate),
    )


def simulate_grid(
    scale: ExperimentScale,
    methods=METHODS,
    seed: int = 1,
    jobs: int | None = None,
) -> dict[tuple[str, int, float], SimulationResult]:
    """The full (method x shards x rate) grid behind Figs. 3-10.

    Cached points are served from the process-wide cache; missing points
    run in parallel across ``jobs`` worker processes (all cores by
    default, ``REPRO_JOBS`` to override, 1 to force the serial path).
    """
    points = [
        (method, n_shards, tx_rate)
        for method in methods
        for n_shards in scale.shard_counts
        for tx_rate in scale.tx_rates
    ]
    missing = [
        point
        for point in points
        if (scale.name, *point, seed) not in _SIM_CACHE
    ]
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(missing) > 1:
        # Materialize shared inputs once in the parent: the workload
        # stream (inherited by forked workers through the cache) and
        # any Metis partitions the grid needs.
        stream_for(scale, seed)
        metis_by_shards = {
            n_shards: metis_assignment(scale, n_shards, seed)
            for n_shards in {p[1] for p in points}
            if "metis" in methods
        }
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(missing))
        ) as pool:
            futures = {
                point: pool.submit(
                    _simulate_point,
                    scale,
                    *point,
                    seed,
                    metis_by_shards.get(point[1])
                    if point[0] == "metis"
                    else None,
                )
                for point in missing
            }
            for point, future in futures.items():
                _SIM_CACHE[(scale.name, *point, seed)] = future.result()
    else:
        for method, n_shards, tx_rate in missing:
            simulate(scale, method, n_shards, tx_rate, seed)
    return {
        point: simulate(scale, *point, seed)
        for point in points
    }


def clear_caches() -> None:
    """Drop all cached workloads and results (tests use this)."""
    _STREAM_CACHE.clear()
    _TAN_CACHE.clear()
    _METIS_CACHE.clear()
    _SIM_CACHE.clear()


@lru_cache(maxsize=None)
def scale_by_name(name: str | None = None) -> ExperimentScale:
    """Convenience wrapper so experiment mains share scale resolution."""
    return get_scale(name)
