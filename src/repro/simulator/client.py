"""Transaction issuers (the simulated client/wallet population).

Clients replay a transaction stream into the system at a configured rate
(the paper's "transactions rate" axis). At each issue instant the client
runs the placement strategy - user-side, instantaneous - and hands the
transaction to the atomic-commit protocol. Arrival spacing is
deterministic (``1/rate``) by default, Poisson optionally.

Issue events are typed records reusing one bound handler for the whole
stream; per-issue state (cursor, cached callables, the precomputed
deterministic gap) lives on the issuer, so the per-transaction cost is
the placement call plus the protocol hand-off.
"""

from __future__ import annotations

from heapq import heappush
from typing import Sequence

from repro.core.placement import PlacementStrategy
from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.simulator.config import SimulationConfig
from repro.simulator.events import EventQueue
from repro.simulator.metrics import MetricsCollector
from repro.simulator.protocol import AtomicCommitProtocol
from repro.utxo.transaction import Transaction


class TransactionIssuer:
    """Feeds the stream through the placer into the protocol."""

    __slots__ = (
        "_stream",
        "_n_transactions",
        "_placer",
        "_config",
        "_events",
        "_protocol",
        "_metrics",
        "_rng",
        "_cursor",
        "_poisson",
        "_gap",
        "_tx_rate",
        "_h_issue",
        "_place",
        "_input_shards",
        "_record_issue",
        "_submit",
        "_validate_ledger",
        "_heap",
        "_seq",
    )

    def __init__(
        self,
        stream: Sequence[Transaction],
        placer: PlacementStrategy,
        config: SimulationConfig,
        events: EventQueue,
        protocol: AtomicCommitProtocol,
        metrics: MetricsCollector,
    ) -> None:
        if placer.n_shards != config.n_shards:
            raise ConfigurationError(
                f"placer has {placer.n_shards} shards, simulation has "
                f"{config.n_shards}"
            )
        self._stream = stream
        self._n_transactions = len(stream)
        self._placer = placer
        self._config = config
        self._events = events
        self._protocol = protocol
        self._metrics = metrics
        self._rng = make_rng(config.seed)
        self._cursor = 0
        self._poisson = config.arrivals == "poisson"
        self._gap = 1.0 / config.tx_rate
        self._tx_rate = config.tx_rate
        self._h_issue = self._issue_next
        # Bound methods cached once; the issue path runs per transaction.
        self._place = placer.place
        self._input_shards = placer.input_shards
        self._record_issue = metrics.record_issue
        self._submit = protocol.submit
        self._validate_ledger = protocol.validate_ledger
        # Typed-record heap access for the self-rescheduling issue chain
        # (see EventQueue: hot in-package callers push records directly).
        self._heap = events._heap
        self._seq = events._sequence

    def start(self) -> None:
        """Schedule the first issue event."""
        if self._stream:
            self._events.schedule_event(0.0, self._h_issue)

    @property
    def n_issued(self) -> int:
        """Transactions issued so far."""
        return self._cursor

    def _issue_next(self, _a: object = None, _b: object = None) -> None:
        cursor = self._cursor
        tx = self._stream[cursor]
        cursor += 1
        self._cursor = cursor
        # Placement is a user-side computation on already-known data; the
        # paper treats it as free relative to network and consensus time.
        shard = self._place(tx)
        input_shards = self._input_shards(tx)
        inputs_by_shard = None
        if self._validate_ledger:
            inputs_by_shard = {}
            shard_of = self._placer.shard_of
            for outpoint in tx.inputs:
                owner = shard_of(outpoint.txid)
                inputs_by_shard.setdefault(owner, []).append(outpoint)
        now = self._events._now
        self._record_issue(tx.txid, now)
        self._submit(tx, shard, input_shards, inputs_by_shard)
        if cursor < self._n_transactions:
            gap = (
                self._rng.expovariate(self._tx_rate)
                if self._poisson
                else self._gap
            )
            heappush(
                self._heap,
                (now + gap, next(self._seq), self._h_issue, None, None),
            )
