"""Simulation configuration (the paper's Table III, parameterized).

Defaults mirror the paper's setup: 1 MB blocks of 2000 transactions,
20 Mbps links, 100 ms base latency, 400 validators per shard. Consensus
timing constants are calibrated so one shard sustains about 400 tx/s -
the paper's observed per-shard capacity (16 shards handle 6000 tps with
OptChain, Fig. 11), see ``repro.simulator.consensus``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

PROTOCOLS = ("omniledger", "rapidchain")
ARRIVALS = ("deterministic", "poisson")


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """All knobs of one simulation run."""

    n_shards: int = 16
    tx_rate: float = 2_000.0  # transactions per second issued by clients
    block_capacity: int = 2_000  # transactions per block (1 MB / 500 B)
    block_size_bytes: int = 1_000_000
    bandwidth_mbps: float = 20.0
    base_latency_s: float = 0.1  # paper: 100 ms on all links
    validators_per_shard: int = 400
    #: global Byzantine validator fraction; committees are sampled and
    #: checked against the 1/3 BFT threshold before the run starts.
    byzantine_fraction: float = 0.0
    gossip_fanout: int = 8  # committee dissemination tree fanout
    consensus_base_s: float = 2.0  # leader assembly + fixed BFT overhead
    consensus_per_tx_s: float = 0.0005  # marginal validation per entry
    protocol: str = "omniledger"
    arrivals: str = "deterministic"
    #: maintain real per-shard UTXO ledgers: dependency parking, natural
    #: double-spend rejection, unlock-to-abort (see simulator.ledger).
    validate_ledger: bool = False
    queue_sample_interval_s: float = 5.0
    commit_bin_s: float = 50.0  # Fig. 5 histogram bin width
    latency_jitter: float = 0.1  # +-10% multiplicative network jitter
    max_sim_time_s: float | None = None  # None: run until fully drained
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.n_shards <= 0:
            raise ConfigurationError(
                f"n_shards must be > 0, got {self.n_shards}"
            )
        if self.tx_rate <= 0:
            raise ConfigurationError(
                f"tx_rate must be > 0, got {self.tx_rate}"
            )
        if self.block_capacity <= 0:
            raise ConfigurationError(
                f"block_capacity must be > 0, got {self.block_capacity}"
            )
        if self.bandwidth_mbps <= 0 or self.base_latency_s < 0:
            raise ConfigurationError("bad network parameters")
        if self.validators_per_shard <= 0:
            raise ConfigurationError(
                f"validators_per_shard must be > 0, got "
                f"{self.validators_per_shard}"
            )
        if self.gossip_fanout < 2:
            raise ConfigurationError(
                f"gossip_fanout must be >= 2, got {self.gossip_fanout}"
            )
        if not 0.0 <= self.byzantine_fraction < 1.0 / 3.0:
            raise ConfigurationError(
                f"byzantine_fraction must be in [0, 1/3), got "
                f"{self.byzantine_fraction}"
            )
        if self.consensus_base_s < 0 or self.consensus_per_tx_s < 0:
            raise ConfigurationError("consensus timings must be >= 0")
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"protocol must be one of {PROTOCOLS}, got {self.protocol!r}"
            )
        if self.arrivals not in ARRIVALS:
            raise ConfigurationError(
                f"arrivals must be one of {ARRIVALS}, got {self.arrivals!r}"
            )
        if self.queue_sample_interval_s <= 0 or self.commit_bin_s <= 0:
            raise ConfigurationError("sampling intervals must be > 0")
        if not 0.0 <= self.latency_jitter < 1.0:
            raise ConfigurationError(
                f"latency_jitter must be in [0, 1), got {self.latency_jitter}"
            )
        if self.max_sim_time_s is not None and self.max_sim_time_s <= 0:
            raise ConfigurationError(
                f"max_sim_time_s must be > 0, got {self.max_sim_time_s}"
            )

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Link bandwidth in bytes per second."""
        return self.bandwidth_mbps * 1_000_000 / 8
