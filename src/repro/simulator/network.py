"""Network latency model.

The paper places nodes at random coordinates, imposes 100 ms latency and
20 Mbps bandwidth on every link, and lets distance scale the
communication latency. We reproduce that at shard granularity: each shard
committee (represented by its leader) and the client population get
coordinates in the unit square; a message's delay is::

    propagation + transmission
    propagation  = base_latency * (0.5 + distance)   (0.5x..~1.9x base)
    transmission = size_bytes / bandwidth

plus optional multiplicative jitter. Distances are Euclidean in the unit
square, so the propagation factor spans roughly [0.5, 1.9] - matching the
"distance between nodes affects the communication latency" setup without
simulating 400 x k individual validators (their effect is folded into the
consensus-time model instead).

Coordinates never move, so the propagation term of every (src, dst) pair
is computed once at construction into a dense table; :meth:`delay` - the
per-message hot path, called several times per transaction - is a table
read, one division, and (when jitter is on) one RNG draw. The table rows
are indexed by node id directly, with the client pseudo-node ``-1``
landing on Python's native last-element index, and hold exactly the
floats the per-call ``math.hypot`` formula produced, so delays are
bit-identical to the seed model
(:class:`repro.simulator._seed_reference.SeedNetwork`).
"""

from __future__ import annotations

import math
import random

from repro.errors import ConfigurationError
from repro.simulator.config import SimulationConfig


class Network:
    """Latency oracle between the client population and shard leaders."""

    CLIENT = -1  # pseudo-node id for the aggregated client population

    __slots__ = (
        "_config",
        "_rng",
        "_coords",
        "_prop",
        "_bandwidth",
        "_jitter",
        "_jitter_lo",
        "_jitter_span",
        "_random",
        "_n_shards",
    )

    def __init__(self, config: SimulationConfig, rng: random.Random) -> None:
        self._config = config
        self._rng = rng
        # Shard leader coordinates; clients sit at the square's center,
        # the average position of a uniformly spread user population.
        # RNG draw order (per shard, x then y) matches the seed model so
        # downstream draws see an identical generator state.
        self._coords: dict[int, tuple[float, float]] = {
            self.CLIENT: (0.5, 0.5)
        }
        for shard in range(config.n_shards):
            self._coords[shard] = (rng.random(), rng.random())
        # Dense propagation table: row/column i is shard i, row/column
        # -1 (the last one) is the client, so ids index it natively.
        base = config.base_latency_s
        nodes = list(range(config.n_shards)) + [self.CLIENT]
        self._prop: list[list[float]] = []
        for src in nodes:
            sx, sy = self._coords[src]
            self._prop.append(
                [
                    base * (0.5 + math.hypot(sx - dx, sy - dy))
                    for dx, dy in (self._coords[dst] for dst in nodes)
                ]
            )
        self._bandwidth = config.bandwidth_bytes_per_s
        jitter = config.latency_jitter
        self._jitter = jitter
        # ``rng.uniform(-j, j)`` unrolled: ``lo + span * random()`` with
        # the same operand order and precomputed span, so the draws are
        # bit-identical to the seed model's uniform() calls while
        # skipping a Python frame per message.
        self._jitter_lo = -jitter
        self._jitter_span = jitter - (-jitter)
        self._random = rng.random
        self._n_shards = config.n_shards

    def coordinates_of(self, node: int) -> tuple[float, float]:
        """Unit-square coordinates of a shard leader (or the client)."""
        try:
            return self._coords[node]
        except KeyError:
            raise ConfigurationError(f"unknown network node {node}")

    def propagation(self, src: int, dst: int) -> float:
        """Distance-scaled propagation delay in seconds (no jitter)."""
        if not (
            self.CLIENT <= src < self._n_shards
            and self.CLIENT <= dst < self._n_shards
        ):
            bad = src if not self.CLIENT <= src < self._n_shards else dst
            raise ConfigurationError(f"unknown network node {bad}")
        return self._prop[src][dst]

    def delay(self, src: int, dst: int, size_bytes: int) -> float:
        """Total message delay: propagation + transmission + jitter."""
        if size_bytes < 0:
            raise ConfigurationError(
                f"message size must be >= 0, got {size_bytes}"
            )
        if not (
            self.CLIENT <= src < self._n_shards
            and self.CLIENT <= dst < self._n_shards
        ):
            bad = src if not self.CLIENT <= src < self._n_shards else dst
            raise ConfigurationError(f"unknown network node {bad}")
        base = self._prop[src][dst] + size_bytes / self._bandwidth
        if self._jitter == 0.0:
            return base
        # Parenthesized like the seed's ``1.0 + uniform(...)`` - float
        # addition is not associative, so grouping is part of bit-identity.
        return base * (
            1.0 + (self._jitter_lo + self._jitter_span * self._random())
        )

    def expected_client_rtt(self, shard: int) -> float:
        """Mean client<->shard round trip for one small message pair.

        This is what a wallet would measure by sampling, and what seeds
        the L2S communication rate ``lambda_c``.
        """
        one_way = self.propagation(self.CLIENT, shard)
        return 2.0 * one_way
