"""EnginePartition: exactness across partitions, handoff, edge cases.

The harness below drives N partitions through the full ownership
protocol - lease handoffs, cross-partition parent reads, writebacks -
entirely in-process. The central claim it pins: the sharded engine is a
*refactoring* of the sequential decision process, so its placements are
bit-identical to the monolithic :class:`PlacementEngine` for **any**
partition count, not just one.
"""

from __future__ import annotations

import pytest

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.errors import EngineError
from repro.service.engine import PlacementEngine
from repro.service.partition import EnginePartition, owner_of
from repro.utxo.transaction import OutPoint, Transaction, TxOutput

N_SHARDS = 4
LEASE = 500


class Harness:
    """Coordinator-in-miniature: routes batches, handoffs, reads, and
    writebacks between in-process partitions."""

    def __init__(
        self,
        n_partitions,
        lease_length=LEASE,
        strategy="optchain",
        epoch_length=400,
        horizon_epochs=None,
        **placer_kwargs,
    ):
        self.lease_length = lease_length
        self.n_partitions = n_partitions
        self.partitions = [
            EnginePartition(
                PlacementEngine(
                    make_placer(strategy, N_SHARDS, **placer_kwargs),
                    epoch_length=epoch_length,
                    horizon_epochs=horizon_epochs,
                ),
                partition_id=index,
                n_partitions=n_partitions,
                lease_length=lease_length,
            )
            for index in range(n_partitions)
        ]
        self.active = 0
        self.cursor = 0
        self.handoffs = 0
        self.remote_reads = 0
        self.writebacks = 0

    def _owner(self, txid):
        return owner_of(txid, self.lease_length, self.n_partitions)

    def place(self, batch):
        """Place one contiguous batch, splitting at lease boundaries."""
        shards = []
        start = 0
        while start < len(batch):
            first = batch[start].txid
            end_txid = (
                first // self.lease_length + 1
            ) * self.lease_length
            sub = batch[start : start + (end_txid - first)]
            shards.extend(self._place_sub(sub))
            start += len(sub)
        return shards

    def _place_sub(self, sub):
        owner = self._owner(sub[0].txid)
        if owner != self.active:
            hot = self.partitions[self.active].export_hot_state()
            self.partitions[owner].import_hot_state(hot)
            self.active = owner
            self.handoffs += 1
        partition = self.partitions[owner]
        needed = partition.parents_needed(sub)
        states = {}
        by_owner = {}
        for parent in needed:
            by_owner.setdefault(self._owner(parent), []).append(parent)
        for parent_owner, txids in by_owner.items():
            assert parent_owner != owner
            states.update(
                self.partitions[parent_owner].read_parents(txids)
            )
            self.remote_reads += len(txids)
        shards, writebacks = partition.place_batch(sub, states)
        for update in writebacks:
            self.partitions[self._owner(update["txid"])].apply_writebacks(
                [update]
            )
            self.writebacks += 1
        self.cursor = sub[-1].txid + 1
        return shards

    def place_chunked(self, stream, chunk=173):
        shards = []
        for offset in range(0, len(stream), chunk):
            shards.extend(self.place(stream[offset : offset + chunk]))
        return shards


def reference_placements(stream, strategy="optchain", epoch_length=400,
                         horizon_epochs=None, **kwargs):
    engine = PlacementEngine(
        make_placer(strategy, N_SHARDS, **kwargs),
        epoch_length=epoch_length,
        horizon_epochs=horizon_epochs,
    )
    shards = []
    for offset in range(0, len(stream), 173):
        shards.extend(engine.place_batch(stream[offset : offset + 173]))
    return engine, shards


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(3_000, seed=77)


class TestExactness:
    def test_single_partition_is_the_plain_engine(self, stream):
        reference, expected = reference_placements(stream)
        harness = Harness(1)
        assert harness.place_chunked(stream) == expected
        assert harness.handoffs == 0
        assert harness.remote_reads == 0
        part = harness.partitions[0]
        assert (
            part.engine.placer.assignment()
            == reference.placer.assignment()
        )

    @pytest.mark.parametrize("n_partitions", [2, 3])
    def test_multi_partition_bit_identical(self, stream, n_partitions):
        _, expected = reference_placements(stream)
        harness = Harness(n_partitions)
        assert harness.place_chunked(stream) == expected
        # The protocol actually exercised what it claims to: leases
        # rotated and foreign parents were fetched and written back.
        assert harness.handoffs >= n_partitions
        assert harness.remote_reads > 0
        assert harness.writebacks > 0

    @pytest.mark.parametrize(
        "strategy,kwargs",
        [
            ("optchain-topk", {"support_cap": 2}),
            # outputs mode reads the parent's created-output count in
            # the T2S divisor - it must travel with remote parents.
            ("optchain", {"outdeg_mode": "outputs"}),
            ("t2s", {}),
            ("greedy", {}),
            ("omniledger", {}),
        ],
    )
    def test_other_strategies_bit_identical(self, stream, strategy, kwargs):
        _, expected = reference_placements(stream, strategy, **kwargs)
        harness = Harness(2, strategy=strategy, **kwargs)
        assert harness.place_chunked(stream) == expected

    def test_horizon_mode_bit_identical_and_swept(self, stream):
        # Horizon truncation is batch-boundary sensitive *in the
        # monolithic engine already* (the sweep runs at batch end), and
        # the sharded service splits client batches at lease
        # boundaries; the equivalence claim is therefore against the
        # monolith fed the identical sub-batches.
        lease = 400
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS),
            epoch_length=300,
            horizon_epochs=2,
        )
        expected = []
        for offset in range(0, len(stream), 173):
            chunk = stream[offset : offset + 173]
            start = 0
            while start < len(chunk):
                first = chunk[start].txid
                end_txid = (first // lease + 1) * lease
                sub = chunk[start : start + (end_txid - first)]
                expected.extend(engine.place_batch(sub))
                start += len(sub)
        harness = Harness(
            3, epoch_length=300, horizon_epochs=2, lease_length=lease
        )
        assert harness.place_chunked(stream) == expected
        # Each partition's own slices are swept at least up to the
        # horizon it last imported; the active one is fully current.
        for partition in harness.partitions:
            swept = max(
                partition._horizon_swept,
                partition.engine.horizon_start
                if partition is harness.partitions[harness.active]
                else 0,
            )
            remaining = partition.engine._remaining
            assert all(txid >= swept for txid in remaining)
        active = harness.partitions[harness.active]
        assert active.engine.horizon_start == engine.horizon_start

    def test_stats_sum_across_partitions(self, stream):
        reference, _ = reference_placements(stream)
        harness = Harness(2)
        harness.place_chunked(stream)
        merged_live = sum(
            p.stats()["live_vectors"] for p in harness.partitions
        )
        merged_released = sum(
            p.stats()["released_vectors"] for p in harness.partitions
        )
        expected = reference.stats()
        # Release *timing* differs slightly: an idle partition's
        # pending fully-spent releases wait for its next active epoch
        # boundary, so the merged live count may transiently exceed the
        # monolith's by at most the unswept pending backlog. Totals
        # must still conserve exactly.
        pending_backlog = sum(
            len(p.engine._pending_release) for p in harness.partitions
        )
        assert (
            expected.live_vectors
            <= merged_live
            <= expected.live_vectors + pending_backlog
        )
        assert merged_live + merged_released == (
            expected.live_vectors + expected.released_vectors
        )
        # Mask bookkeeping is location-exact (writebacks are applied
        # immediately), so the unspent-frontier size matches exactly.
        merged_tracked = sum(
            p.stats()["tracked_unspent"] for p in harness.partitions
        )
        assert merged_tracked == expected.tracked_unspent


class TestCrossPartitionEdges:
    def test_remote_parent_lookup_owned_by_other_partition(self, stream):
        harness = Harness(2)
        harness.place(stream[: 2 * LEASE])
        # Partition 0 owns lease 0; partition 1 must be able to read
        # parents from it, and refuses txids it does not own.
        states = harness.partitions[0].read_parents([10, 11])
        assert set(states) == {10, 11}
        with pytest.raises(EngineError, match="does not hold"):
            harness.partitions[0].read_parents([LEASE])  # lease 1
        with pytest.raises(EngineError, match="does not hold"):
            harness.partitions[1].read_parents([10 * LEASE])  # unplaced

    def test_fully_spent_remote_input_rejected(self, stream):
        harness = Harness(2)
        harness.place(stream[: 2 * LEASE])
        cursor = 2 * LEASE
        # Find an outpoint of a lease-0 transaction already spent by a
        # lease-1 transaction (a remote double spend for partition 0,
        # owner of lease 2).
        # A spent outpoint whose parent still has other unspent
        # outputs (the mask survives with the bit cleared), so the
        # error names the exact output.
        remaining0 = harness.partitions[0].engine._remaining
        spent = None
        for tx in stream[LEASE : 2 * LEASE]:
            for outpoint in tx.inputs:
                if outpoint.txid < LEASE and outpoint.txid in remaining0:
                    spent = outpoint
                    break
            if spent:
                break
        assert spent is not None
        double = Transaction(
            txid=cursor, inputs=(spent,), outputs=(TxOutput(1),)
        )
        with pytest.raises(
            EngineError, match="does not exist or is already spent"
        ):
            harness.place([double])
        # A spend of a *released* (fully spent) parent reports as
        # unknown-or-fully-spent when the mask is gone entirely: pick a
        # parent with no remaining mask at its owner.
        gone = None
        for txid in range(LEASE):
            if txid not in harness.partitions[0].engine._remaining:
                gone = txid
                break
        assert gone is not None
        unknown = Transaction(
            txid=cursor,
            inputs=(OutPoint(gone, 0),),
            outputs=(TxOutput(1),),
        )
        with pytest.raises(EngineError, match="unknown or fully-spent"):
            harness.place([unknown])
        # The stream continues unharmed.
        assert harness.place(stream[cursor : cursor + 50])

    def test_atomic_reject_spanning_partitions(self, stream):
        _, expected = reference_placements(stream)
        harness = Harness(2)
        harness.place(stream[: 2 * LEASE])
        cursor = 2 * LEASE
        # A batch whose tail double-spends across the partition split:
        # the whole batch must be rejected, every installed remote
        # parent rolled back, and the replayed valid batch must then
        # produce exactly the reference placements.
        spent = next(
            outpoint
            for tx in stream[LEASE : 2 * LEASE]
            for outpoint in tx.inputs
            if outpoint.txid < LEASE
        )
        good = list(stream[cursor : cursor + 40])
        bad = good[:39] + [
            Transaction(
                txid=cursor + 39,
                inputs=(spent,),
                outputs=(TxOutput(1),),
            )
        ]
        before = {
            index: dict(p.engine._remaining)
            for index, p in enumerate(harness.partitions)
        }
        with pytest.raises(EngineError):
            harness.place(bad)
        after = {
            index: dict(p.engine._remaining)
            for index, p in enumerate(harness.partitions)
        }
        assert before == after
        # Replay the honest stream to the end: still bit-identical.
        tail = harness.place_chunked(stream[cursor:])
        assert tail == expected[cursor:]

    def test_writeback_refused_by_non_owner(self, stream):
        harness = Harness(2)
        harness.place(stream[:LEASE])
        with pytest.raises(EngineError, match="does not hold"):
            harness.partitions[1].apply_writebacks(
                [{"txid": 5, "spender_count": 1, "mask": 0}]
            )


class TestHandoffState:
    def test_hot_state_round_trip_is_lossless(self, stream):
        harness = Harness(2)
        harness.place(stream[:LEASE])
        active = harness.partitions[0]
        hot = active.export_hot_state()
        # Export is O(n_shards)-ish: no per-txid payloads inside.
        assert "assignment" not in str(hot.keys())
        assert len(hot["placer"]["shard_sizes"]) == N_SHARDS
        importer = harness.partitions[1]
        importer.import_hot_state(hot)
        assert importer.n_placed == LEASE
        re_exported = importer.export_hot_state()
        assert re_exported == hot

    def test_import_at_wrong_cursor_rejected(self, stream):
        harness = Harness(2)
        harness.place(stream[: 2 * LEASE])
        hot = harness.partitions[1].export_hot_state()
        hot["n_placed"] = LEASE  # partition 1 is already at 2*LEASE
        with pytest.raises(EngineError, match="cursor"):
            harness.partitions[1].import_hot_state(hot)


class TestPartitionCheckpoint:
    def test_checkpoint_restore_continue_bit_identical(
        self, stream, tmp_path
    ):
        _, expected = reference_placements(stream)
        harness = Harness(2)
        harness.place_chunked(stream[: 4 * LEASE])
        paths = [
            tmp_path / f"part{index}.snap" for index in range(2)
        ]
        for partition, path in zip(harness.partitions, paths):
            assert partition.checkpoint(path) > 0

        restored = Harness(2)
        restored.partitions = [
            EnginePartition.restore(
                path,
                partition_id=index,
                n_partitions=2,
                lease_length=LEASE,
            )
            for index, path in enumerate(paths)
        ]
        restored.active = harness.active
        # Pad accounting is recovered exactly at restore time (before
        # the continued stream grows it further).
        for original, copy in zip(harness.partitions, restored.partitions):
            assert copy._n_padded == original._n_padded
        tail = restored.place_chunked(stream[4 * LEASE :])
        assert tail == expected[4 * LEASE :]
