"""Graph coarsening via heavy-edge matching.

First phase of the multilevel scheme (Karypis-Kumar): repeatedly contract
a maximal matching that prefers heavy edges, so strongly connected vertex
pairs merge early and the coarse graph preserves the cluster structure
the initial partitioner needs to see. Node weights accumulate so balance
constraints keep meaning "original vertices per part".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.partition.graph import StaticGraph


@dataclass(frozen=True, slots=True)
class CoarseLevel:
    """One level of the coarsening hierarchy.

    ``fine_to_coarse[u]`` maps each fine node to its coarse node, which is
    all the uncoarsening phase needs to project a partition back down.
    """

    graph: StaticGraph
    fine_to_coarse: list[int]


def heavy_edge_matching(graph: StaticGraph, rng: random.Random) -> list[int]:
    """Return ``match[u]`` = matched partner of ``u`` (or ``u`` itself).

    Visits vertices in random order; each unmatched vertex grabs its
    unmatched neighbor with the heaviest connecting edge. Randomized visit
    order is the standard defence against pathological matchings on
    regular graphs.
    """
    n = graph.n_nodes
    match = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    for u in order:
        if match[u] != -1:
            continue
        best = -1
        best_weight = 0
        for v, weight in graph.neighbors(u):
            if match[v] == -1 and weight > best_weight:
                best = v
                best_weight = weight
        if best >= 0:
            match[u] = best
            match[best] = u
        else:
            match[u] = u
    return match


def contract(graph: StaticGraph, match: list[int]) -> CoarseLevel:
    """Contract a matching into a coarse graph.

    Matched pairs become one coarse node whose weight is the pair's total;
    parallel edges between coarse nodes merge their weights; edges inside
    a pair disappear (they can never be cut again at coarser levels).
    """
    n = graph.n_nodes
    fine_to_coarse = [-1] * n
    next_id = 0
    for u in range(n):
        if fine_to_coarse[u] != -1:
            continue
        fine_to_coarse[u] = next_id
        partner = match[u]
        if partner != u and fine_to_coarse[partner] == -1:
            fine_to_coarse[partner] = next_id
        next_id += 1

    node_weights = [0] * next_id
    for u in range(n):
        node_weights[fine_to_coarse[u]] += graph.node_weight(u)

    # Aggregate edge weights in a dict first: StaticGraph.add_edge merges
    # parallel edges by scanning adjacency, which would be quadratic here.
    accumulated: dict[tuple[int, int], int] = {}
    for u, v, weight in graph.edges():
        cu, cv = fine_to_coarse[u], fine_to_coarse[v]
        if cu == cv:
            continue
        key = (cu, cv) if cu < cv else (cv, cu)
        accumulated[key] = accumulated.get(key, 0) + weight

    coarse = StaticGraph(next_id, node_weights)
    for (cu, cv), weight in accumulated.items():
        coarse.add_edge(cu, cv, weight)
    return CoarseLevel(graph=coarse, fine_to_coarse=fine_to_coarse)


def coarsen_once(graph: StaticGraph, rng: random.Random) -> CoarseLevel:
    """One matching + contraction step."""
    return contract(graph, heavy_edge_matching(graph, rng))


def build_hierarchy(
    graph: StaticGraph,
    rng: random.Random,
    target_size: int,
    max_levels: int = 40,
    min_shrink: float = 0.95,
) -> tuple[StaticGraph, list[CoarseLevel]]:
    """Coarsen until at most ``target_size`` nodes remain.

    Stops early when a level shrinks by less than ``1 - min_shrink``
    (isolated vertices and star centers eventually resist matching).
    Returns the coarsest graph and the levels from finest to coarsest.
    """
    levels: list[CoarseLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.n_nodes <= target_size:
            break
        level = coarsen_once(current, rng)
        if level.graph.n_nodes >= current.n_nodes * min_shrink:
            break
        levels.append(level)
        current = level.graph
    return current, levels
