"""Bounded-support (top-k) T2S scoring: equivalence, bounds, drift.

Three contracts from the ISSUE:

1. ``TopKT2SScorer(cap >= n_shards)`` is **bit-identical** to the exact
   scorer end to end - placements, scorer state, snapshot
   restore-then-continue - because a vector over ``n_shards`` shards
   can never exceed ``n_shards`` entries, so truncation never fires.
2. The fused ``place_batch`` hot path and the unfused per-transaction
   path apply truncation identically (same helper, same accounting).
3. Shrinking the cap trades placement quality monotonically on the
   pinned stream: dropped mass grows as the cap shrinks, and the
   cross-shard drift vs exact shrinks to zero as the cap grows.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optchain import OptChainPlacer, TopKOptChainPlacer
from repro.core.placement import make_placer
from repro.core.scorer import (
    PlacementScorer,
    make_scorer,
    truncate_support,
)
from repro.core.t2s import T2SScorer, TopKT2SScorer
from repro.datasets.synthetic import (
    BitcoinLikeGenerator,
    GeneratorConfig,
    synthetic_stream,
)
from repro.errors import ConfigurationError
from repro.partition.quality import cross_shard_fraction
from repro.service.engine import PlacementEngine

N_TX = 4_000


@pytest.fixture(scope="module")
def topk_stream():
    """Dense stream (multi-input heavy) so vector support actually
    exceeds small caps."""
    config = GeneratorConfig(
        n_wallets=400, coinbase_interval=150, bootstrap_coinbase=25
    )
    return synthetic_stream(N_TX, seed=1234, config=config)


# -- the scorer registry / interface ---------------------------------------


def test_registry_and_factory():
    assert PlacementScorer.registry["exact"] is T2SScorer
    assert PlacementScorer.registry["topk"] is TopKT2SScorer
    exact = make_scorer("exact", 4)
    topk = make_scorer("topk", 4, support_cap=2)
    assert isinstance(exact, PlacementScorer)
    assert exact.support_cap is None
    assert topk.support_cap == 2
    with pytest.raises(ConfigurationError, match="unknown scorer"):
        make_scorer("nope", 4)


def test_seed_reference_scorer_does_not_displace_exact():
    import repro.core._seed_reference  # noqa: F401

    assert PlacementScorer.registry["exact"] is T2SScorer


def test_support_cap_validated():
    with pytest.raises(ConfigurationError, match="support_cap"):
        TopKT2SScorer(4, support_cap=0)


def test_strategy_registered_everywhere():
    placer = make_placer("optchain-topk", 8, support_cap=3)
    assert isinstance(placer, TopKOptChainPlacer)
    assert placer.support_cap == 3
    from repro.experiments.configs import get_scale
    from repro.experiments.runner import build_placer

    scale = get_scale("tiny")
    built = build_placer("optchain-topk", 8, scale)
    assert built.support_cap == scale.topk_support_cap


def test_truncate_support_helper():
    vector = {3: 0.5, 0: 0.25, 7: 0.5, 1: 0.125}
    truncated, dropped = truncate_support(vector, 2)
    # Mass ties (shards 3 and 7 at 0.5) keep the lower shard id, and
    # survivors keep their original insertion order.
    assert truncated == {3: 0.5, 7: 0.5}
    assert list(truncated) == [3, 7]
    assert dropped == 0.25 + 0.125
    # Conservation for one truncation event.
    assert math.isclose(
        sum(truncated.values()) + dropped, sum(vector.values())
    )


# -- exactness reduction (cap >= n_shards) ---------------------------------


@pytest.mark.parametrize("n_shards", [4, 16])
def test_cap_at_n_shards_is_bit_identical(topk_stream, n_shards):
    exact = OptChainPlacer(n_shards)
    capped = TopKOptChainPlacer(n_shards, support_cap=n_shards)
    assert exact.place_stream(topk_stream) == capped.place_stream(
        topk_stream
    )
    # Not just the decisions: the entire decision state matches, so
    # every future placement matches too.
    exact_state = exact.export_state()
    capped_state = capped.export_state()
    capped_state["scorer"].pop("dropped_mass")
    capped_state["scorer"].pop("truncated_vectors")
    assert capped_state == exact_state
    assert capped.scorer.dropped_mass_total == 0.0
    assert capped.scorer.truncated_vector_count == 0


def test_cap_at_n_shards_end_to_end_through_engine_and_snapshot(
    tmp_path, topk_stream
):
    """The acceptance criterion's end-to-end lane: core place_batch,
    service engine, snapshot -> restore, all bit-identical to exact
    optchain when cap >= n_shards."""
    n_shards = 8
    expected = OptChainPlacer(n_shards).place_stream(topk_stream)

    engine = PlacementEngine(
        make_placer("optchain-topk", n_shards, support_cap=n_shards),
        epoch_length=500,
    )
    split = len(topk_stream) // 2
    first = engine.place_batch(topk_stream[:split])
    path = tmp_path / "capk.snap"
    engine.checkpoint(path)
    restored = PlacementEngine.restore(path)
    second = restored.place_batch(topk_stream[split:])
    assert first + second == expected


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_shards=st.integers(1, 8),
    extra=st.integers(0, 3),
)
def test_cap_ge_n_shards_equivalence_property(seed, n_shards, extra):
    """Any cap >= n_shards reduces to the exact scorer on any stream."""
    stream = BitcoinLikeGenerator(
        config=GeneratorConfig(
            n_wallets=50, coinbase_interval=20, bootstrap_coinbase=5
        ),
        seed=seed,
    ).generate(300)
    exact = OptChainPlacer(n_shards)
    capped = TopKOptChainPlacer(n_shards, support_cap=n_shards + extra)
    assert exact.place_stream(stream) == capped.place_stream(stream)
    assert capped.scorer.dropped_mass_total == 0.0


# -- fused vs unfused truncation -------------------------------------------


@pytest.mark.parametrize("cap", [1, 2, 4])
def test_fused_batch_equals_per_transaction_path(topk_stream, cap):
    n_shards = 16
    batch = TopKOptChainPlacer(n_shards, support_cap=cap)
    fused = batch.place_stream(topk_stream)
    single = TopKOptChainPlacer(n_shards, support_cap=cap)
    looped = [single.place(tx) for tx in topk_stream]
    assert fused == looped
    assert (
        batch.scorer.dropped_mass_total
        == single.scorer.dropped_mass_total
    )
    assert (
        batch.scorer.truncated_vector_count
        == single.scorer.truncated_vector_count
    )
    assert batch.scorer._p_prime == single.scorer._p_prime
    # _min_mass is a pruning *lower bound*, not canonical state: for
    # duplicate-outpoint transactions the fused loop and the unfused
    # path pick different (equally valid) bounds - a pre-existing
    # asymmetry that cannot affect decisions. Check soundness, not
    # equality; truncated vectors store the exact minimum on both
    # paths and were compared via _p_prime above.
    for scorer in (batch.scorer, single.scorer):
        for vector, bound in zip(scorer._p_prime, scorer._min_mass):
            if vector:
                assert min(vector.values()) >= bound


def test_engine_batches_equal_raw_placer(topk_stream):
    placer = TopKOptChainPlacer(16, support_cap=3)
    expected = placer.place_stream(topk_stream)
    engine = PlacementEngine(
        make_placer("optchain-topk", 16, support_cap=3),
        epoch_length=700,
    )
    got = []
    for start in range(0, len(topk_stream), 512):
        got.extend(engine.place_batch(topk_stream[start : start + 512]))
    assert got == expected


# -- the truncation invariants ---------------------------------------------


def test_support_bound_holds(topk_stream):
    cap = 3
    placer = TopKOptChainPlacer(16, support_cap=cap)
    placer.place_stream(topk_stream)
    scorer = placer.scorer
    assert scorer.truncated_vector_count > 0
    # Arrival truncates to cap; place() may add one more shard.
    assert all(
        len(vector) <= cap + 1
        for vector in scorer._p_prime
        if vector is not None
    )
    stats = scorer.support_stats()
    assert stats["max_nnz"] <= cap + 1
    assert stats["support_cap"] == cap
    assert stats["dropped_mass"] == scorer.dropped_mass_total > 0.0


def test_min_mass_bound_still_sound_after_truncation(topk_stream):
    """The pruning fast path relies on _min_mass lower-bounding every
    entry; truncation must refresh it."""
    placer = TopKOptChainPlacer(16, support_cap=2)
    placer.place_stream(topk_stream)
    scorer = placer.scorer
    for vector, bound in zip(scorer._p_prime, scorer._min_mass):
        if vector:
            assert min(vector.values()) >= bound


def test_single_truncation_event_conserves_mass():
    scorer = TopKT2SScorer(8, support_cap=2, alpha=0.5)
    reference = T2SScorer(8, alpha=0.5)
    # Build four single-entry ancestors on distinct shards, then merge
    # them: the child's 4-entry vector must truncate to 2.
    for txid, shard in enumerate((0, 3, 5, 7)):
        scorer.add_transaction_raw(txid, [])
        scorer.place(txid, shard)
        reference.add_transaction_raw(txid, [])
        reference.place(txid, shard)
    merged = reference.add_transaction_raw(4, [0, 1, 2, 3])
    truncated = scorer.add_transaction_raw(4, [0, 1, 2, 3])
    assert len(merged) == 4
    assert len(truncated) == 2
    assert math.isclose(
        sum(truncated.values()) + scorer.dropped_mass_total,
        sum(merged.values()),
    )
    assert scorer.truncated_vector_count == 1


# -- quality drift ----------------------------------------------------------


def test_drift_shrinks_monotonically_as_cap_grows(topk_stream):
    """The quality/speed dial: on the pinned stream, cross-shard drift
    vs exact is monotone nonincreasing along cap 2 -> 4 -> 8 -> 16 and
    exactly zero once the cap reaches n_shards; dropped mass is
    strictly monotone in the cap everywhere."""
    n_shards = 16
    exact = cross_shard_fraction(
        topk_stream, OptChainPlacer(n_shards).place_stream(topk_stream)
    )
    drifts = []
    dropped = []
    for cap in (2, 4, 8, 16):
        placer = TopKOptChainPlacer(n_shards, support_cap=cap)
        cross = cross_shard_fraction(
            topk_stream, placer.place_stream(topk_stream)
        )
        drifts.append(abs(cross - exact))
        dropped.append(placer.scorer.dropped_mass_total)
    assert drifts == sorted(drifts, reverse=True)
    assert drifts[-1] == 0.0
    assert drifts[0] < 0.02  # the trade stays small even at cap=2
    assert dropped == sorted(dropped, reverse=True)
    assert dropped[-1] == 0.0 < dropped[0]


# -- observability ----------------------------------------------------------


def test_support_stats_tracks_release(topk_stream):
    placer = TopKOptChainPlacer(8, support_cap=4)
    placer.place_stream(topk_stream[:500])
    scorer = placer.scorer
    stats = scorer.support_stats()
    assert stats["live_vectors"] == 500
    assert stats["mean_nnz"] > 0.0
    scorer.release_vectors(range(100))
    after = scorer.support_stats()
    assert after["live_vectors"] == 400
    assert after["dropped_mass"] == stats["dropped_mass"]


def test_engine_stats_surface_support_section(topk_stream):
    engine = PlacementEngine(
        make_placer("optchain-topk", 8, support_cap=2),
        epoch_length=500,
    )
    engine.place_batch(topk_stream[:1_000])
    payload = engine.stats().as_dict()
    support = payload["support"]
    assert support["live_vectors"] > 0
    assert support["max_nnz"] <= 3
    assert support["dropped_mass"] > 0.0
    assert support["support_cap"] == 2
    # Strategies without a scorer report no support section.
    no_scorer = PlacementEngine(make_placer("omniledger", 8))
    assert no_scorer.stats().as_dict()["support"] is None
