"""Unit tests for TaN statistics (Figure 2 quantities)."""

from __future__ import annotations

import pytest

from repro.txgraph.stats import (
    average_degree_timeline,
    cumulative_degree_distribution,
    degree_distribution,
    fraction_below,
    graph_summary,
)
from repro.txgraph.tan import TaNGraph


def chain(n=5) -> TaNGraph:
    graph = TaNGraph()
    graph.add_node(0, [])
    for i in range(1, n):
        graph.add_node(i, [i - 1])
    return graph


class TestDegreeDistribution:
    def test_chain_in_degrees(self):
        histogram = degree_distribution(chain(), "in")
        assert histogram == {0: 1, 1: 4}

    def test_chain_out_degrees(self):
        histogram = degree_distribution(chain(), "out")
        assert histogram == {0: 1, 1: 4}

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            degree_distribution(chain(), "sideways")

    def test_counts_sum_to_nodes(self, small_graph):
        histogram = degree_distribution(small_graph, "in")
        assert sum(histogram.values()) == small_graph.n_nodes

    def test_mean_matches_edge_count(self, small_graph):
        histogram = degree_distribution(small_graph, "in")
        total = sum(deg * count for deg, count in histogram.items())
        assert total == small_graph.n_edges


class TestCumulativeDistribution:
    def test_monotone_and_ends_at_one(self, small_graph):
        series = cumulative_degree_distribution(small_graph, "out")
        fractions = [fraction for _, fraction in series]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == pytest.approx(1.0)

    def test_empty_graph(self):
        assert cumulative_degree_distribution(TaNGraph(), "in") == []


class TestFractionBelow:
    def test_chain(self):
        assert fraction_below(chain(5), "in", 1) == pytest.approx(0.2)
        assert fraction_below(chain(5), "in", 2) == pytest.approx(1.0)

    def test_empty(self):
        assert fraction_below(TaNGraph(), "in", 3) == 0.0


class TestTimeline:
    def test_final_point_is_global_average(self, small_graph):
        timeline = average_degree_timeline(small_graph, n_points=50)
        n, avg = timeline[-1]
        assert n == small_graph.n_nodes
        assert avg == pytest.approx(small_graph.n_edges / small_graph.n_nodes)

    def test_positions_increasing(self, small_graph):
        timeline = average_degree_timeline(small_graph, n_points=20)
        positions = [n for n, _ in timeline]
        assert positions == sorted(positions)

    def test_empty(self):
        assert average_degree_timeline(TaNGraph()) == []
        assert average_degree_timeline(chain(), n_points=0) == []


class TestWindowedDegree:
    def test_windows_cover_stream(self, small_graph):
        from repro.txgraph.stats import windowed_average_degree

        samples = windowed_average_degree(small_graph, window=100)
        assert samples[-1][0] == small_graph.n_nodes
        positions = [n for n, _ in samples]
        assert positions == sorted(positions)

    def test_window_mean_matches_global(self, small_graph):
        from repro.txgraph.stats import windowed_average_degree

        samples = windowed_average_degree(
            small_graph, window=small_graph.n_nodes
        )
        assert len(samples) == 1
        assert samples[0][1] == pytest.approx(
            small_graph.n_edges / small_graph.n_nodes
        )

    def test_bad_window(self, small_graph):
        from repro.txgraph.stats import windowed_average_degree

        with pytest.raises(ValueError):
            windowed_average_degree(small_graph, window=0)

    def test_flood_spike_visible(self):
        """The windowed series exposes the flooding window sharply."""
        from repro.datasets.synthetic import (
            BitcoinLikeGenerator,
            GeneratorConfig,
        )
        from repro.txgraph.stats import windowed_average_degree
        from repro.txgraph.tan import TaNGraph

        config = GeneratorConfig(
            n_wallets=500,
            coinbase_interval=100,
            bootstrap_coinbase=50,
            flood_start=4_000,
            flood_length=500,
            flood_inputs=20,
        )
        stream = BitcoinLikeGenerator(config=config, seed=3).generate(8_000)
        graph = TaNGraph.from_transactions(stream)
        samples = windowed_average_degree(graph, window=500)
        by_position = dict(samples)
        flood_value = by_position[4_500]
        background = by_position[2_500]
        assert flood_value > 1.5 * background


class TestSummary:
    def test_chain_summary(self):
        summary = graph_summary(chain(5))
        assert summary.n_nodes == 5
        assert summary.n_edges == 4
        assert summary.n_coinbase == 1
        assert summary.n_unspent_frontier == 1
        assert summary.n_isolated == 0
        assert summary.average_degree == pytest.approx(0.8)

    def test_isolated_node(self):
        graph = TaNGraph()
        graph.add_node(0, [])
        summary = graph_summary(graph)
        assert summary.n_isolated == 1

    def test_paper_shape_on_synthetic(self, medium_stream):
        """The synthetic workload matches the paper's Bitcoin TaN shape:
        average degree near 2.3, most in-degrees < 3, most out-degrees
        < 10 (paper: 2.3, 93.1%, 97.6%)."""
        from repro.txgraph.tan import TaNGraph

        graph = TaNGraph.from_transactions(medium_stream)
        summary = graph_summary(graph)
        assert 1.2 <= summary.average_degree <= 3.5
        assert summary.fraction_in_degree_below_3 >= 0.80
        assert summary.fraction_out_degree_below_10 >= 0.90
