"""Command-line interface: ``optchain`` (or ``python -m repro``).

Subcommands:

- ``place``      - place a synthetic stream with a chosen strategy and
  print cross-shard/balance statistics.
- ``simulate``   - run one discrete-event simulation and print the §V
  metrics.
- ``experiment`` - regenerate a paper table/figure
  (``table1 table2 fig2 ... fig11`` or ``all``).
- ``generate``   - write a synthetic workload to JSONL or edge-list.
- ``stats``      - TaN statistics of a stream file.
- ``serve``      - run the long-lived placement service (binary +
  NDJSON codecs over TCP, checkpoint/restore, epoch-bounded T2S
  memory; ``--workers N`` shards it across partitioned worker
  processes behind a routing front-end).
- ``loadgen``    - replay a synthetic stream against a running service
  from many simulated users (open or closed loop, either codec).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Any

from repro import __version__

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="optchain",
        description="OptChain (ICDCS 2019) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    place = commands.add_parser(
        "place", help="place a synthetic stream and print statistics"
    )
    place.add_argument(
        "--method",
        "--strategy",
        default="optchain",
        help="strategy name or full spec string, e.g. "
        "optchain-topk:cap=auto:0.01,backend=numpy",
    )
    place.add_argument("--shards", type=int, default=16)
    place.add_argument("--transactions", type=int, default=20_000)
    place.add_argument("--seed", type=int, default=1)
    place.add_argument(
        "--support-cap",
        type=str,
        default=None,
        help="retained T2S entries per vector, or auto:<rate> for the "
        "adaptive cap (optchain-topk / t2s-topk; default: the "
        "strategy's built-in cap); shorthand for the cap= spec option",
    )
    place.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="execution backend: python (the golden reference), numpy "
        "(typed-array state + compiled kernel, bit-identical), or auto "
        "(numpy when available); shorthand for the backend= spec option",
    )

    simulate = commands.add_parser(
        "simulate", help="run one discrete-event simulation"
    )
    simulate.add_argument(
        "--method",
        "--strategy",
        default="optchain",
        help="strategy name or full spec string (see place --method)",
    )
    simulate.add_argument("--shards", type=int, default=16)
    simulate.add_argument("--transactions", type=int, default=20_000)
    simulate.add_argument("--rate", type=float, default=300.0)
    simulate.add_argument("--block-capacity", type=int, default=200)
    simulate.add_argument(
        "--protocol", choices=("omniledger", "rapidchain"),
        default="omniledger",
    )
    simulate.add_argument(
        "--validate",
        action="store_true",
        help="full per-shard UTXO validation (dependency parking, "
        "natural double-spend rejection)",
    )
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument(
        "--support-cap",
        type=str,
        default=None,
        help="retained T2S entries per vector, or auto:<rate> "
        "(optchain-topk / t2s-topk)",
    )
    simulate.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="execution backend (see place --backend)",
    )

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "name", choices=_EXPERIMENTS + ("all",)
    )
    experiment.add_argument(
        "--scale", default=None, help="tiny | default | paper"
    )

    generate = commands.add_parser(
        "generate", help="write a synthetic workload to disk"
    )
    generate.add_argument("path")
    generate.add_argument("--transactions", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument(
        "--format", choices=("jsonl", "edges"), default="jsonl"
    )

    stats = commands.add_parser(
        "stats",
        help="TaN statistics of a stream file, or live stats of a "
        "running server (pass host:port)",
    )
    stats.add_argument(
        "path",
        help="stream file path, or host:port of a running server",
    )
    stats.add_argument(
        "--format", choices=("jsonl", "edges"), default="jsonl"
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="dump the raw stats reply as JSON (host:port mode)",
    )

    serve = commands.add_parser(
        "serve", help="run the long-lived placement service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9171)
    serve.add_argument(
        "--method",
        "--strategy",
        default="optchain",
        help="strategy name or full spec string (see place --method)",
    )
    serve.add_argument("--shards", type=int, default=16)
    serve.add_argument(
        "--support-cap",
        type=str,
        default=None,
        help="retained T2S entries per vector, or auto:<rate> for the "
        "adaptive cap (optchain-topk / t2s-topk; bounded-support "
        "scoring for the 64+-shard regime)",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="execution backend (see place --backend)",
    )
    serve.add_argument(
        "--epoch-length",
        type=int,
        default=25_000,
        help="placements per truncation epoch",
    )
    serve.add_argument(
        "--horizon-epochs",
        type=int,
        default=None,
        help="drop T2S vectors older than this many epochs (bounded "
        "memory; omit for the exact fully-spent-only policy)",
    )
    serve.add_argument(
        "--no-truncate-spent",
        action="store_true",
        help="keep even fully-spent vectors (measurement baseline)",
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="snapshot file: restored on startup when it exists, "
        "written on shutdown (SIGTERM/SIGINT/shutdown op)",
    )
    serve.add_argument(
        "--checkpoint-compress",
        action="store_true",
        help="zlib-compress snapshot array sections (smaller "
        "checkpoints at a few tens of ms of CPU; restore "
        "auto-detects)",
    )
    serve.add_argument(
        "--checkpoint-delta",
        type=int,
        default=None,
        metavar="N",
        help="epoch-aligned delta checkpoints: between full snapshots, "
        "write only state touched since the base (format v3); every "
        "Nth checkpoint compacts to a full one (single-process serve "
        "only)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8192, dest="max_batch",
        help="micro-batch / request size ceiling in transactions",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run N partitioned worker processes behind a routing "
        "front-end (0 = classic single-process server); partitions "
        "own contiguous txid leases with ownership handoff",
    )
    serve.add_argument(
        "--lease-length",
        type=int,
        default=25_000,
        help="txids per ownership lease in --workers mode",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="per-partition in-flight request window in --workers "
        "mode; beyond it requests are shed with an 'overload' reply",
    )
    serve.add_argument(
        "--heartbeat",
        type=float,
        default=5.0,
        help="worker liveness-probe interval in seconds in --workers "
        "mode (0 disables heartbeats)",
    )
    serve.add_argument(
        "--respawn-max",
        type=int,
        default=3,
        help="respawn attempts per crashed worker before the service "
        "degrades (--workers mode)",
    )
    serve.add_argument(
        "--no-wal",
        action="store_true",
        help="disable the per-partition write-ahead batch journal "
        "(crashed non-idle workers then cannot recover losslessly)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="expose GET /metrics (Prometheus text format) on this "
        "port: latency histograms, engine/WAL/lease gauges, drift "
        "(0 = ephemeral port, printed at startup)",
    )
    serve.add_argument(
        "--drift-sample",
        type=int,
        default=0,
        metavar="N",
        help="replay every Nth batch through the exact python scorer "
        "and export the placement-quality drift vs production "
        "(0 = off; optchain-family strategies only)",
    )
    serve.add_argument(
        "--drift-window",
        type=int,
        default=20_000,
        help="sampled transactions per rolling drift window",
    )
    serve.add_argument(
        "--drift-threshold",
        type=float,
        default=0.05,
        help="cross-shard-rate delta above which the drift breach "
        "counter increments",
    )
    serve.add_argument(
        "--drift-min-samples",
        type=int,
        default=500,
        help="window samples required before breaches are evaluated",
    )

    loadgen = commands.add_parser(
        "loadgen", help="replay a synthetic stream against a service"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=9171)
    loadgen.add_argument("--transactions", type=int, default=20_000)
    loadgen.add_argument("--users", type=int, default=8)
    loadgen.add_argument("--chunk-size", type=int, default=256)
    loadgen.add_argument(
        "--mode", choices=("closed", "open"), default="closed"
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered load in tx/s (open mode)",
    )
    loadgen.add_argument(
        "--proto",
        choices=("binary", "json"),
        default="binary",
        help="wire codec: binary frames (fast) or NDJSON (compat)",
    )
    loadgen.add_argument("--seed", type=int, default=1)
    loadgen.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request timeout in seconds (default: wait forever)",
    )
    loadgen.add_argument(
        "--retries",
        type=int,
        default=0,
        help="transparent per-request retries on retryable failures "
        "(retry/overload replies, timeouts, connection resets)",
    )
    loadgen.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        help="base of the jittered exponential retry backoff (s)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="deterministic crash-recovery check: kill a non-idle "
        "worker mid-stream, verify bit-identical recovery",
    )
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--transactions", type=int, default=3_000)
    chaos.add_argument("--shards", type=int, default=4)
    chaos.add_argument(
        "--method",
        "--strategy",
        default="optchain",
        help="strategy name or full spec string (see place --method)",
    )
    chaos.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="execution backend (see place --backend)",
    )
    chaos.add_argument("--lease-length", type=int, default=600)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--kill-partition",
        type=int,
        default=0,
        help="partition whose worker is SIGKILLed",
    )
    chaos.add_argument(
        "--kill-after",
        type=int,
        default=2,
        help="die on the Nth journaled batch",
    )
    chaos.add_argument(
        "--kill-point",
        choices=("journal", "place", "writeback"),
        default="journal",
        help="batch lifecycle point to die at",
    )
    chaos.add_argument(
        "--torn-wal-bytes",
        type=int,
        default=0,
        help="truncate this many bytes off the journal tail before "
        "dying (simulated torn write)",
    )
    chaos.add_argument(
        "--workdir",
        default=None,
        help="scratch directory for checkpoints + journals "
        "(default: a fresh temporary directory)",
    )
    chaos.add_argument(
        "--log",
        default=None,
        help="also append the chaos event log to this file",
    )

    soak = commands.add_parser(
        "soak",
        help="long-haul stability harness: sharded serve + loadgen "
        "waves + kill/respawn chaos, gated on RSS growth, live-vector "
        "bound, drift delta, and latency percentiles via /metrics",
    )
    soak.add_argument("--transactions", type=int, default=2_000_000)
    soak.add_argument("--waves", type=int, default=20)
    soak.add_argument("--workers", type=int, default=2)
    soak.add_argument("--shards", type=int, default=8)
    soak.add_argument(
        "--method",
        "--strategy",
        default="optchain-topk:cap=auto:0.01",
        help="strategy name or full spec string (see place --method)",
    )
    soak.add_argument("--lease-length", type=int, default=25_000)
    soak.add_argument("--epoch-length", type=int, default=25_000)
    soak.add_argument("--horizon-epochs", type=int, default=4)
    soak.add_argument("--seed", type=int, default=1)
    soak.add_argument("--users", type=int, default=4)
    soak.add_argument("--chunk-size", type=int, default=256)
    soak.add_argument(
        "--kills",
        type=int,
        default=1,
        help="lease-holding workers SIGKILLed across the run "
        "(0 disables chaos)",
    )
    soak.add_argument(
        "--drift-sample",
        type=int,
        default=8,
        help="replay every Nth batch through the exact shadow "
        "(0 disables the drift gate)",
    )
    soak.add_argument("--drift-window", type=int, default=20_000)
    soak.add_argument("--drift-threshold", type=float, default=0.05)
    soak.add_argument("--drift-min-samples", type=int, default=200)
    soak.add_argument(
        "--max-rss-growth",
        type=float,
        default=1.6,
        help="worker RSS growth factor allowed from the first to the "
        "last wave",
    )
    soak.add_argument(
        "--max-drift-delta",
        type=float,
        default=0.05,
        help="cross-shard-rate delta allowed vs the exact shadow",
    )
    soak.add_argument(
        "--max-p99-ms",
        type=float,
        default=5000.0,
        help="scrape-derived server-side p99 batch latency bound",
    )
    soak.add_argument(
        "--workdir",
        default=None,
        help="scratch directory for checkpoints + journals "
        "(default: a fresh temporary directory)",
    )
    soak.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the JSON soak report here",
    )
    return parser


def _build_spec(args):
    """One parsed :class:`StrategySpec` from the strategy flags.

    ``--method``/``--strategy`` accepts a full spec string
    (``optchain-topk:cap=auto:0.01,backend=numpy``); the loose
    ``--support-cap`` and ``--backend`` flags are kept as aliases that
    desugar into the same spec, so old invocations keep working. A cap
    given for a strategy that ignores it is flagged rather than
    silently dropped - same principle as the restored-checkpoint
    override warnings in ``serve``.
    """
    from repro.core.spec import TOPK_METHODS, StrategySpec
    from repro.errors import ConfigurationError

    try:
        spec = StrategySpec.parse(args.method)
    except ConfigurationError as exc:
        print(f"error: --method: {exc}", file=sys.stderr, flush=True)
        raise SystemExit(2)
    cap = getattr(args, "support_cap", None)
    if cap is not None:
        if spec.method not in TOPK_METHODS:
            print(
                f"warning: --support-cap={cap} ignored; only the topk "
                f"strategies bound vector support (got --method/"
                f"--strategy {spec.method})",
                file=sys.stderr,
                flush=True,
            )
        elif spec.cap is not None:
            print(
                f"error: --support-cap={cap} conflicts with "
                f"cap={spec.cap} inside --method {args.method!r}",
                file=sys.stderr,
                flush=True,
            )
            raise SystemExit(2)
        else:
            mode, value = _parse_cap_or_exit(cap)
            spec = spec.with_cap(cap if mode == "auto" else value)
    backend = getattr(args, "backend", None)
    if backend is not None:
        spec = spec.with_backend(backend)
    return spec


def _make_placer_or_exit(spec, n_shards: int, **kwargs):
    """Spec -> placer, with a clean CLI error (exit 2) on bad config
    (unknown strategy, explicit numpy backend without numpy, ...)."""
    from repro.core.placement import make_placer
    from repro.errors import ConfigurationError

    try:
        return make_placer(spec, n_shards, **kwargs)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        raise SystemExit(2)


def _resolve_backend_or_exit(spec):
    """Pin ``backend=auto`` to the concrete backend running here.

    Used where the spec crosses a process or persistence boundary
    (worker specs, chaos scenarios): the string handed over must name
    what actually runs, not re-resolve per consumer.
    """
    from repro.errors import ConfigurationError

    try:
        return spec.with_backend(spec.resolve_backend())
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        raise SystemExit(2)


def _parse_cap_or_exit(cap):
    """Validate a --support-cap value with a clean CLI error."""
    from repro.core.scorer import parse_support_cap
    from repro.errors import ConfigurationError

    try:
        return parse_support_cap(cap)
    except ConfigurationError as exc:
        print(f"error: --support-cap: {exc}", file=sys.stderr, flush=True)
        raise SystemExit(2)


def _cmd_place(args) -> int:
    from repro.datasets.synthetic import synthetic_stream
    from repro.partition.quality import balance_ratio, cross_shard_fraction

    spec = _build_spec(args)
    stream = synthetic_stream(args.transactions, seed=args.seed)
    kwargs = {}
    if spec.method in ("greedy", "t2s", "t2s-topk"):
        kwargs["expected_total"] = len(stream)
    if spec.method == "metis":
        from repro.partition.metis_like import partition_tan
        from repro.txgraph.tan import TaNGraph

        assignment = partition_tan(
            TaNGraph.from_transactions(stream), args.shards
        )
    else:
        placer = _make_placer_or_exit(spec, args.shards, **kwargs)
        assignment = placer.place_stream(stream)
        print(f"backend:      {placer.backend}")
    print(f"method:       {spec}")
    print(f"transactions: {len(stream)}")
    print(f"shards:       {args.shards}")
    print(
        f"cross-shard:  "
        f"{cross_shard_fraction(stream, assignment):.2%}"
    )
    print(
        f"balance:      {balance_ratio(assignment, args.shards):.3f}"
    )
    return 0


def _cmd_simulate(args) -> int:
    from repro.analysis.report import summarize_result
    from repro.datasets.synthetic import synthetic_stream
    from repro.simulator import SimulationConfig, run_simulation

    spec = _build_spec(args)
    stream = synthetic_stream(args.transactions, seed=args.seed)
    placer = _make_placer_or_exit(spec, args.shards)
    config = SimulationConfig(
        n_shards=args.shards,
        tx_rate=args.rate,
        block_capacity=args.block_capacity,
        block_size_bytes=args.block_capacity * 500,
        consensus_per_tx_s=min(0.01, 1.0 / args.block_capacity),
        max_sim_time_s=50_000.0,
        protocol=args.protocol,
        validate_ledger=args.validate,
        seed=args.seed,
    )
    result = run_simulation(stream, placer, config)
    print(summarize_result(result))
    return 0


def _cmd_experiment(args) -> int:
    names = _EXPERIMENTS if args.name == "all" else (args.name,)
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        module.main(args.scale)
        print()
    return 0


def _cmd_generate(args) -> int:
    from repro.datasets.io import save_edge_list, save_stream_jsonl
    from repro.datasets.synthetic import synthetic_stream

    stream = synthetic_stream(args.transactions, seed=args.seed)
    if args.format == "jsonl":
        count = save_stream_jsonl(stream, args.path)
        print(f"wrote {count} transactions to {args.path}")
    else:
        count = save_edge_list(stream, args.path)
        print(f"wrote {count} TaN edges to {args.path}")
    return 0


def _parse_host_port(value: str) -> "tuple[str, int] | None":
    """``host:port`` when it looks like one and is not an existing file."""
    import os

    if ":" not in value or os.path.exists(value):
        return None
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        return None
    return host, int(port)


def _cmd_stats_server(args, host: str, port: int) -> int:
    """``repro stats host:port``: live stats of a running server."""
    import json as json_module

    from repro.errors import ServiceError
    from repro.obs.hist import LogHistogram
    from repro.service.client import PlacementClient

    try:
        with PlacementClient(host, port, timeout=10.0) as client:
            ping = client.ping()
            reply = client.request({"op": "stats"})
    except (ServiceError, ConnectionError, OSError) as exc:
        print(
            f"error: could not query {host}:{port}: {exc}",
            file=sys.stderr,
            flush=True,
        )
        return 1
    if args.json:
        print(json_module.dumps(reply, indent=2, sort_keys=True))
        return 0

    def row(label: str, value: Any) -> None:
        print(f"{label + ':':<18}{value}")

    def count(value: Any) -> str:
        return f"{value:,}" if isinstance(value, int) else str(value)

    stats = reply.get("stats") or {}
    obs = reply.get("obs") or {}
    row("server", f"{host}:{port} (protocol {ping.get('protocol')})")
    row(
        "strategy",
        f"{stats.get('strategy')} (k={stats.get('n_shards')})",
    )
    row("placed", count(stats.get("n_placed")))
    row(
        "live vectors",
        f"{count(stats.get('live_vectors'))} "
        f"(peak {count(stats.get('peak_live_vectors'))}, "
        f"released {count(stats.get('released_vectors'))})",
    )
    row("tracked unspent", count(stats.get("tracked_unspent")))
    row(
        "epoch",
        f"{stats.get('epoch')} "
        f"(horizon start {count(stats.get('horizon_start'))})",
    )
    support = stats.get("support")
    if support:
        row(
            "support",
            f"live {count(support.get('live_vectors'))}  "
            f"mean nnz {support.get('mean_nnz', 0.0):.2f}  "
            f"max nnz {support.get('max_nnz')}  "
            f"cap {support.get('support_cap')}",
        )
    if ping.get("workers"):
        recovering = ping.get("recovering") or []
        row(
            "workers",
            f"{ping['workers']} (lease holder {ping.get('granted')}, "
            "recovering "
            + (", ".join(map(str, recovering)) if recovering else "none")
            + ")",
        )
        row("degraded", stats.get("degraded") or "no")
    metrics = obs.get("metrics")
    if metrics:
        snap = metrics.get("batch_latency")
        if snap:
            hist = LogHistogram.from_snapshot(snap)
            if hist.count:
                p50, p99, p999 = hist.percentiles((0.5, 0.99, 0.999))
                row(
                    "batch latency",
                    f"p50 {p50 * 1e3:.2f}ms  p99 {p99 * 1e3:.2f}ms  "
                    f"p999 {p999 * 1e3:.2f}ms  "
                    f"({count(metrics.get('batches'))} batches, "
                    f"{count(metrics.get('placed'))} txs)",
                )
        row(
            "replies",
            f"retry {metrics.get('retry_replies', 0)}  "
            f"overload {metrics.get('overload_replies', 0)}  "
            f"error {metrics.get('error_replies', 0)}",
        )
        if ping.get("workers"):
            row(
                "supervision",
                f"respawns {metrics.get('respawns', 0)}  "
                f"heartbeat timeouts "
                f"{metrics.get('heartbeat_timeouts', 0)}",
            )
    wal = obs.get("wal")
    if wal:
        row(
            "wal",
            f"{wal.get('bytes_appended', 0) / 1024.0 / 1024.0:.2f} MiB "
            f"appended  {count(wal.get('records_appended', 0))} records  "
            f"{count(wal.get('fsyncs', 0))} fsyncs  "
            f"{wal.get('resets', 0)} resets",
        )
    drift = obs.get("drift")
    if drift:
        if "delta" not in drift:
            from repro.obs.drift import merge_drift_dicts

            drift = merge_drift_dicts([drift])
        row(
            "drift",
            f"delta {drift.get('delta', 0.0):+.4f} "
            f"(prod {drift.get('production_cross_rate', 0.0):.4f} vs "
            f"shadow {drift.get('shadow_cross_rate', 0.0):.4f})  "
            f"disagree {drift.get('disagreement_rate', 0.0):.2%}  "
            f"window {count(drift.get('window_sampled', 0))}  "
            f"breaches {drift.get('breaches_total', 0)}"
            + (f"  FAILED: {drift['failed']}" if drift.get("failed") else ""),
        )
    if obs.get("rss_kb") is not None:
        row("rss", f"{obs['rss_kb'] / 1024.0:.1f} MiB")
    return 0


def _cmd_stats(args) -> int:
    from repro.datasets.io import load_edge_list, load_stream_jsonl
    from repro.txgraph.stats import graph_summary
    from repro.txgraph.tan import TaNGraph

    server = _parse_host_port(args.path)
    if server is not None:
        return _cmd_stats_server(args, *server)
    if args.format == "jsonl":
        stream = list(load_stream_jsonl(args.path))
    else:
        stream = load_edge_list(args.path)
    summary = graph_summary(TaNGraph.from_transactions(stream))
    print(f"nodes:            {summary.n_nodes}")
    print(f"edges:            {summary.n_edges}")
    print(f"average degree:   {summary.average_degree:.3f}")
    print(f"coinbase:         {summary.n_coinbase}")
    print(f"unspent frontier: {summary.n_unspent_frontier}")
    print(f"in-degree < 3:    {summary.fraction_in_degree_below_3:.1%}")
    print(f"out-degree < 10:  {summary.fraction_out_degree_below_10:.1%}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import os
    import signal

    from repro.service.engine import PlacementEngine
    from repro.service.server import PlacementServer

    spec = _build_spec(args)
    if args.workers:
        return _serve_sharded(args, spec)
    if args.checkpoint and os.path.exists(args.checkpoint):
        from repro.core.spec import StrategySpec

        engine = PlacementEngine.restore(args.checkpoint)
        print(
            f"restored {engine.n_placed} placements from "
            f"{args.checkpoint}",
            flush=True,
        )
        # The snapshot's configuration wins on restore (the placer's
        # identity is baked into its state); flag any CLI flags it
        # silently overrides so an operator expecting, say, a new
        # horizon policy finds out at startup, not from memory graphs.
        restored_spec = StrategySpec.of_placer(engine.placer)
        restored_config = dict(
            engine.export_config(),
            method=restored_spec.method,
            shards=engine.n_shards,
        )
        requested = {
            "method": spec.method,
            "shards": args.shards,
            "epoch_length": args.epoch_length,
            "horizon_epochs": args.horizon_epochs,
            "truncate_spent": not args.no_truncate_spent,
        }
        if spec.cap is not None:
            restored_config["support_cap"] = _restored_cap_setting(
                engine.placer
            )
            mode, value = _parse_cap_or_exit(spec.cap)
            requested["support_cap"] = (
                f"auto:{value!r}" if mode == "auto" else value
            )
        if spec.backend != "auto":
            # backend=auto means "whatever runs here", which the
            # restored configuration trivially satisfies; only an
            # explicit request can be overridden.
            restored_config["backend"] = restored_spec.backend
            requested["backend"] = spec.backend
        for key, wanted in requested.items():
            have = restored_config[key]
            if wanted != have:
                print(
                    f"warning: --{key.replace('_', '-')}={wanted} "
                    f"ignored; the checkpoint was taken with {have} "
                    "(delete the checkpoint to reconfigure)",
                    file=sys.stderr,
                    flush=True,
                )
    else:
        engine = PlacementEngine(
            _make_placer_or_exit(spec, args.shards),
            epoch_length=args.epoch_length,
            horizon_epochs=args.horizon_epochs,
            truncate_spent=not args.no_truncate_spent,
        )
    if args.drift_sample:
        _attach_drift_monitor(engine, args)

    async def _run() -> None:
        server = PlacementServer(
            engine,
            args.host,
            args.port,
            max_batch_txs=args.max_batch,
            checkpoint_path=args.checkpoint,
            checkpoint_compress=args.checkpoint_compress,
            checkpoint_delta_every=args.checkpoint_delta,
            metrics_port=args.metrics_port,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: loop.create_task(server.stop())
            )
        print(
            f"serving {spec} (k={engine.n_shards}) on "
            f"{args.host}:{server.port}",
            flush=True,
        )
        if server.metrics_port is not None:
            print(
                f"metrics on http://{args.host}:{server.metrics_port}"
                "/metrics",
                flush=True,
            )
        await server.wait_stopped()
        stats = engine.stats()
        print(
            f"stopped after {stats.n_placed} placements"
            + (
                f"; checkpoint written to {args.checkpoint}"
                if args.checkpoint
                else ""
            ),
            flush=True,
        )

    asyncio.run(_run())
    return 0


def _attach_drift_monitor(engine, args) -> None:
    """Arm the single-process engine's drift monitor from the CLI flags
    (sharded workers build their own from the worker spec)."""
    from repro.core.spec import StrategySpec
    from repro.errors import ConfigurationError
    from repro.obs.drift import DriftMonitor

    try:
        monitor = DriftMonitor(
            engine.n_shards,
            method=StrategySpec.of_placer(engine.placer).method,
            sample_every=args.drift_sample,
            window=args.drift_window,
            threshold=args.drift_threshold,
            min_samples=args.drift_min_samples,
        )
    except ConfigurationError as exc:
        print(f"error: --drift-sample: {exc}", file=sys.stderr, flush=True)
        raise SystemExit(2)
    if engine.n_placed:
        # Restored mid-stream: the shadow starts empty at the cursor,
        # same graceful truncation as a sharded lease.
        monitor.rebase(engine.n_placed)
    engine.drift_monitor = monitor


def _restored_cap_setting(placer):
    """The restored placer's support-cap *configuration*, in the same
    canonical form as a parsed --support-cap argument - adaptive
    scorers compare by target rate (their current cap legitimately
    drifts), fixed ones by the cap itself."""
    scorer = getattr(placer, "scorer", None)
    if getattr(scorer, "kind", "") == "topk-adaptive":
        return f"auto:{scorer.target_rate!r}"
    return getattr(placer, "support_cap", None)


def _serve_sharded(args, strategy_spec) -> int:
    """``repro serve --workers N``: the partitioned service."""
    import asyncio
    import signal

    from repro.service.coordinator import ShardedPlacementServer

    if args.checkpoint_delta is not None:
        print(
            f"warning: --checkpoint-delta={args.checkpoint_delta} "
            "ignored; --workers mode writes full per-partition "
            "snapshots (delta checkpoints are single-process only)",
            file=sys.stderr,
            flush=True,
        )
    # The canonical spec string is the whole strategy configuration
    # (method, cap, backend): workers rebuild their placer from it via
    # make_placer, and the checkpoint-set manifest compares it against
    # later restores as one value. ``auto`` is resolved *here* so every
    # worker (including crash respawns) runs the same backend.
    strategy_spec = _resolve_backend_or_exit(strategy_spec)
    spec = {
        "method": str(strategy_spec),
        "n_shards": args.shards,
        "epoch_length": args.epoch_length,
        "horizon_epochs": args.horizon_epochs,
        "truncate_spent": not args.no_truncate_spent,
    }
    if args.drift_sample:
        # Fail here, not inside N spawned workers.
        from repro.errors import ConfigurationError
        from repro.obs.drift import shadow_method_for

        try:
            shadow_method_for(spec["method"])
        except ConfigurationError as exc:
            print(
                f"error: --drift-sample: {exc}", file=sys.stderr, flush=True
            )
            raise SystemExit(2)
        spec["drift_sample_every"] = args.drift_sample
        spec["drift_window"] = args.drift_window
        spec["drift_threshold"] = args.drift_threshold
        spec["drift_min_samples"] = args.drift_min_samples

    async def _run() -> None:
        server = ShardedPlacementServer(
            spec,
            args.workers,
            args.host,
            args.port,
            lease_length=args.lease_length,
            max_batch_txs=args.max_batch,
            checkpoint_path=args.checkpoint,
            checkpoint_compress=args.checkpoint_compress,
            max_inflight=args.max_inflight,
            heartbeat_interval=args.heartbeat,
            max_respawns=args.respawn_max,
            wal=not args.no_wal,
            metrics_port=args.metrics_port,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: loop.create_task(server.stop())
            )
        print(
            f"serving {strategy_spec} (k={args.shards}) on "
            f"{args.host}:{server.port} with {args.workers} workers "
            f"(lease {args.lease_length})",
            flush=True,
        )
        if server.metrics_port is not None:
            print(
                f"metrics on http://{args.host}:{server.metrics_port}"
                "/metrics",
                flush=True,
            )
        await server.wait_stopped()
        print(
            f"stopped after {server._cursor} placements"
            + (
                f"; checkpoints written to {args.checkpoint}.p*"
                if args.checkpoint
                else ""
            ),
            flush=True,
        )

    asyncio.run(_run())
    return 0


def _cmd_loadgen(args) -> int:
    from repro.errors import ServiceError
    from repro.service.loadgen import run_loadgen

    try:
        report = run_loadgen(
            host=args.host,
            port=args.port,
            n_txs=args.transactions,
            n_users=args.users,
            chunk_size=args.chunk_size,
            mode=args.mode,
            rate=args.rate,
            seed=args.seed,
            proto=args.proto,
            request_timeout=args.timeout,
            max_retries=args.retries,
            retry_backoff=args.retry_backoff,
        )
    except (ServiceError, ConnectionError, OSError) as exc:
        print(
            f"error: loadgen could not drive {args.host}:{args.port}: "
            f"{exc}",
            file=sys.stderr,
            flush=True,
        )
        return 1
    print(report.summary())
    if report.errors:
        # A lossy run must not look like a clean one to CI or scripts:
        # the summary above already names the last error.
        print(
            f"error: {report.errors} of {report.n_chunks} requests "
            "failed"
            + (
                f" (last: {report.last_error})"
                if report.last_error
                else ""
            ),
            file=sys.stderr,
            flush=True,
        )
        return 1
    return 0


def _cmd_chaos(args) -> int:
    import asyncio
    import json as json_module
    import tempfile

    from repro.service.faults import run_chaos_scenario

    spec = _resolve_backend_or_exit(_build_spec(args))

    def run(workdir: str) -> dict:
        return asyncio.run(
            run_chaos_scenario(
                workdir=workdir,
                n_workers=args.workers,
                n_txs=args.transactions,
                n_shards=args.shards,
                strategy=str(spec),
                lease_length=args.lease_length,
                seed=args.seed,
                kill_partition=args.kill_partition,
                kill_after=args.kill_after,
                kill_point=args.kill_point,
                torn_wal_bytes=args.torn_wal_bytes,
                log=lambda message: print(message, flush=True),
            )
        )

    if args.workdir:
        result = run(args.workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as d:
            result = run(d)
    if args.log:
        with open(args.log, "a") as fh:
            fh.write(
                json_module.dumps(result, separators=(",", ":")) + "\n"
            )
    if not result["ok"]:
        print(
            "error: chaos scenario failed: "
            + (
                f"service degraded ({result['degraded']})"
                if result["degraded"]
                else "recovered placements diverged from the golden "
                f"run (first at {result['first_divergence']})"
            ),
            file=sys.stderr,
            flush=True,
        )
        return 1
    print(
        f"chaos ok: {result['served']} placements bit-identical "
        f"through a '{result['kill_point']}' crash "
        f"({result['retries']} client retries, "
        f"{result['recovery_s']}s recovery)",
        flush=True,
    )
    return 0


def _cmd_soak(args) -> int:
    import asyncio
    import json as json_module

    from repro.errors import ConfigurationError
    from repro.obs.soak import run_soak

    spec = _resolve_backend_or_exit(_build_spec(args))
    try:
        result = asyncio.run(
            run_soak(
                n_txs=args.transactions,
                waves=args.waves,
                workers=args.workers,
                shards=args.shards,
                method=str(spec),
                lease_length=args.lease_length,
                epoch_length=args.epoch_length,
                horizon_epochs=args.horizon_epochs,
                seed=args.seed,
                users=args.users,
                chunk_size=args.chunk_size,
                kills=args.kills,
                drift_sample=args.drift_sample,
                drift_window=args.drift_window,
                drift_threshold=args.drift_threshold,
                drift_min_samples=args.drift_min_samples,
                max_rss_growth=args.max_rss_growth,
                max_drift_delta=args.max_drift_delta,
                max_p99_s=args.max_p99_ms / 1e3,
                workdir=args.workdir,
                log=lambda message: print(message, flush=True),
            )
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        return 2
    except RuntimeError as exc:
        print(f"error: soak aborted: {exc}", file=sys.stderr, flush=True)
        return 1
    if args.report:
        with open(args.report, "w") as fh:
            json_module.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not result["ok"]:
        failed = [g["name"] for g in result["gates"] if not g["ok"]]
        print(
            f"error: soak gates failed: {', '.join(failed)}",
            file=sys.stderr,
            flush=True,
        )
        return 1
    print(
        f"soak ok: {result['n_txs']:,} placements in "
        f"{result['elapsed_s']}s "
        f"({result['placements_per_s']:,.0f} tx/s), "
        f"{len(result['gates'])} gates passed",
        flush=True,
    )
    return 0


_HANDLERS = {
    "place": _cmd_place,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "chaos": _cmd_chaos,
    "soak": _cmd_soak,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
