"""Snapshots across execution backends: state is backend-agnostic.

A snapshot taken on the numpy backend must restore as a numpy placer
by default (the header records the backend), must degrade to the
python backend with a warning when numpy is unavailable, and the
restored engine must continue bit-identically either way - the scorer
state carries no backend-specific representation.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.core.placement import make_placer  # noqa: E402
from repro.core.spec import StrategySpec  # noqa: E402
from repro.service.engine import PlacementEngine  # noqa: E402
from repro.service.state import (  # noqa: E402
    load_engine_snapshot,
    save_engine_snapshot,
)

SPECS = [
    ("optchain", {}),
    ("optchain-topk", {"support_cap": 3}),
    ("optchain-topk", {"support_cap": "auto:0.01", "support_window": 256}),
]


def _engine(method, kwargs, backend):
    return PlacementEngine(
        make_placer(method, 8, backend=backend, **kwargs),
        epoch_length=300,
    )


@pytest.mark.parametrize("method,kwargs", SPECS)
def test_numpy_snapshot_restores_numpy_by_default(
    tmp_path, small_stream, method, kwargs
):
    engine = _engine(method, kwargs, "numpy")
    first = engine.place_batch(small_stream[:1_000])
    path = tmp_path / "np.snap"
    save_engine_snapshot(engine, path)

    restored = load_engine_snapshot(path)
    assert restored.placer.backend == "numpy"
    assert StrategySpec.of_placer(restored.placer) == StrategySpec.of_placer(
        engine.placer
    )

    reference = _engine(method, kwargs, "python")
    expected = reference.place_batch(small_stream)
    second = restored.place_batch(small_stream[1_000:])
    assert first + second == expected
    stats_np = restored.stats().as_dict()
    stats_py = reference.stats().as_dict()
    # The spec string names the backend - the one expected difference.
    assert stats_np.pop("spec").endswith("backend=numpy")
    assert stats_py.pop("spec").endswith("backend=python")
    assert stats_np == stats_py


@pytest.mark.parametrize("method,kwargs", SPECS)
def test_python_snapshot_stays_python(tmp_path, small_stream, method, kwargs):
    engine = _engine(method, kwargs, "python")
    engine.place_batch(small_stream[:500])
    path = tmp_path / "py.snap"
    save_engine_snapshot(engine, path)
    restored = load_engine_snapshot(path)
    assert restored.placer.backend == "python"


def test_numpy_snapshot_degrades_without_numpy(
    tmp_path, small_stream, monkeypatch
):
    """Restore on a numpy-less host: warn, fall back, stay identical."""
    engine = _engine("optchain-topk", {"support_cap": 3}, "numpy")
    first = engine.place_batch(small_stream[:1_000])
    path = tmp_path / "np.snap"
    save_engine_snapshot(engine, path)

    import repro.core.backends as backends

    monkeypatch.setattr(
        backends,
        "backend_unavailable_reason",
        lambda name: "numpy is not installed" if name == "numpy" else None,
    )
    with pytest.warns(RuntimeWarning, match="unavailable here"):
        restored = load_engine_snapshot(path)
    assert restored.placer.backend == "python"

    reference = _engine("optchain-topk", {"support_cap": 3}, "python")
    expected = reference.place_batch(small_stream)
    second = restored.place_batch(small_stream[1_000:])
    assert first + second == expected


def test_cross_backend_state_round_trip(tmp_path, small_stream):
    """python-snapshot state == numpy-snapshot state at the same point.

    Byte-for-byte equality of the serialized *scorer state* is not
    required (dict ordering may differ), but the restored placers must
    export identical state - that is the backend-agnostic claim.
    """
    engines = {
        backend: _engine("optchain-topk", {"support_cap": 4}, backend)
        for backend in ("python", "numpy")
    }
    for engine in engines.values():
        engine.place_batch(small_stream[:800])
    restored = {}
    for backend, engine in engines.items():
        path = tmp_path / f"{backend}.snap"
        save_engine_snapshot(engine, path)
        restored[backend] = load_engine_snapshot(path)
    state = {
        backend: engine.placer.export_state()
        for backend, engine in restored.items()
    }
    assert state["python"] == state["numpy"]
    tail_py = restored["python"].place_batch(small_stream[800:])
    tail_np = restored["numpy"].place_batch(small_stream[800:])
    assert tail_py == tail_np
