"""Per-shard UTXO ledger state (opt-in full validation).

By default the simulator trusts the workload generator's validity and
charges only queueing/consensus costs - matching the paper's evaluation,
which replays known-valid history. With
``SimulationConfig.validate_ledger`` the protocol additionally maintains
real per-shard UTXO state:

- a shard owns the outputs of every transaction placed on it;
- a lock (or same-shard commit) *validates* its slice of the inputs
  against that state before accepting: unknown-parent inputs park the
  transaction until the parent commits (the mempool-orphan behaviour of
  real nodes), already-spent inputs produce a proof-of-rejection and the
  OmniLedger unlock-to-abort flow reclaims any inputs locked elsewhere;
- commits register the new outputs.

This is the machinery that lets double-spend injection fail *through the
protocol* instead of through an oracle list, and quantifies the latency
cost of dependency ordering (ablation bench).

Conservatism note: parking releases a child only after its parent's
block *commits*. Real block assembly can include dependency-ordered
parent->child chains inside one block, so validated-mode latencies are
an upper bound - chains serialize at one block cycle per hop here. The
paper's evaluation (and this repository's default mode) replays
known-valid history without this constraint.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.utxo.transaction import OutPoint

#: classification of an input slice against the shard's state
OK = "ok"
MISSING = "missing"  # parent outputs not registered yet - park and retry
CONFLICT = "conflict"  # some input already spent/locked - reject


class ShardLedger:
    """UTXO slice owned by one shard."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._unspent: set[OutPoint] = set()
        self._spent_by: dict[OutPoint, int] = {}

    @property
    def n_unspent(self) -> int:
        """Outputs currently spendable on this shard."""
        return len(self._unspent)

    @property
    def n_spent(self) -> int:
        """Outputs consumed (locked or committed) on this shard."""
        return len(self._spent_by)

    def register_outputs(self, txid: int, n_outputs: int) -> list[OutPoint]:
        """Create the outputs of a transaction committed on this shard."""
        created = []
        for index in range(n_outputs):
            outpoint = OutPoint(txid, index)
            if outpoint in self._unspent or outpoint in self._spent_by:
                raise SimulationError(
                    f"shard {self.shard_id}: output {outpoint} registered "
                    f"twice"
                )
            self._unspent.add(outpoint)
            created.append(outpoint)
        return created

    def classify(self, outpoints: list[OutPoint]) -> str:
        """Can this slice of inputs be locked right now?

        ``CONFLICT`` dominates ``MISSING``: if any input is provably
        spent the transaction can never become valid, no matter how many
        parents are still in flight.
        """
        verdict = OK
        for outpoint in outpoints:
            if outpoint in self._spent_by:
                return CONFLICT
            if outpoint not in self._unspent:
                verdict = MISSING
        return verdict

    def spend(self, outpoints: list[OutPoint], txid: int) -> None:
        """Lock/spend a validated slice (classify must have said OK)."""
        for outpoint in outpoints:
            if outpoint not in self._unspent:
                raise SimulationError(
                    f"shard {self.shard_id}: spending unavailable "
                    f"{outpoint} for tx {txid}"
                )
            self._unspent.remove(outpoint)
            self._spent_by[outpoint] = txid
        return None

    def unspend(self, outpoints: list[OutPoint], txid: int) -> None:
        """Reclaim inputs after an abort (unlock-to-abort)."""
        for outpoint in outpoints:
            spender = self._spent_by.get(outpoint)
            if spender != txid:
                raise SimulationError(
                    f"shard {self.shard_id}: cannot unlock {outpoint} for "
                    f"tx {txid} (held by {spender})"
                )
            del self._spent_by[outpoint]
            self._unspent.add(outpoint)

    def spender_of(self, outpoint: OutPoint) -> int | None:
        """Which transaction consumed an output (None if unspent/unknown)."""
        return self._spent_by.get(outpoint)

    def first_missing(self, outpoints: list[OutPoint]) -> OutPoint | None:
        """First input whose parent output is not registered yet."""
        for outpoint in outpoints:
            if (
                outpoint not in self._unspent
                and outpoint not in self._spent_by
            ):
                return outpoint
        return None
