"""Quickstart: place a transaction stream with OptChain vs random.

Generates a Bitcoin-like workload, runs the OptChain placer and the
OmniLedger random-hash baseline over it, and prints the two numbers the
paper's abstract leads with: the cross-shard transaction fraction (up to
10x lower with OptChain) and the load balance across shards.

Strategies are named by spec strings (``repro.api.StrategySpec``):
``"optchain"`` picks the fastest available execution backend
(``backend=auto`` resolves to the vectorized backend when numpy is
installed - ``pip install .[fast]`` - and the pure-python golden path
otherwise; placements are bit-identical either way).

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import (
    balance_ratio,
    cross_shard_fraction,
    make_placer,
    synthetic_stream,
)

N_TRANSACTIONS = 20_000
N_SHARDS = 16

#: Spec strings: method plus options, e.g. "optchain-topk:cap=auto:0.01"
#: or "optchain:backend=numpy" (see `repro.api.StrategySpec`).
SPECS = {
    "OptChain": "optchain",
    "OmniLedger (random hash)": "omniledger",
}


def main() -> None:
    print(f"generating {N_TRANSACTIONS} Bitcoin-like transactions...")
    stream = synthetic_stream(N_TRANSACTIONS, seed=7)

    print(f"placing into {N_SHARDS} shards:\n")
    for name, spec in SPECS.items():
        placer = make_placer(spec, N_SHARDS)
        assignment = placer.place_stream(stream)
        cross = cross_shard_fraction(stream, assignment)
        balance = balance_ratio(assignment, N_SHARDS)
        print(f"  {name} (spec {spec!r}, backend {placer.backend})")
        print(f"    cross-shard transactions: {cross:.1%}")
        print(f"    load balance (max shard / ideal): {balance:.2f}")
        print()
    print(
        "OptChain groups related transactions while keeping shards "
        "balanced;\nrandom placement balances but makes almost every "
        "transaction cross-shard."
    )


if __name__ == "__main__":
    main()
