"""Regenerates Table I: % cross-TXs from scratch, per method and k.

Shape asserted against the paper: Metis < T2S-based < Greedy-or-equal <
OmniLedger, every method growing with the shard count.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, scale):
    results = run_once(benchmark, lambda: table1.run(scale))
    print()
    print(table1.as_table(results))
    for k, row in results.items():
        # The orderings the paper's Table I demonstrates.
        assert row["metis"] < row["omniledger"]
        assert row["t2s"] < 0.5 * row["omniledger"]
        assert row["t2s"] <= row["greedy"] * 1.05
    ks = sorted(results)
    for method in ("metis", "omniledger", "t2s"):
        values = [results[k][method] for k in ks]
        assert values == sorted(values), f"{method} not monotone in k"
