"""Intra-shard consensus latency model.

The paper runs a BFT protocol inside each 400-validator committee; we
model one consensus round's duration instead of simulating each
validator's packets (DESIGN.md §4). The duration of committing a block of
``b`` entries is::

    T(b) = broadcast(b) + rounds + base + per_entry * b

- ``broadcast(b)``: the leader disseminates the block over a gossip tree
  of the configured fanout - ``ceil(log_fanout(committee))`` propagation
  hops plus one block transmission time (dissemination is pipelined, so
  the payload transits the slowest link once, not once per hop). Block
  size scales with fill level.
- ``rounds``: two vote rounds (prepare/commit), votes are small so only
  propagation over the tree depth counts.
- ``base + per_entry * b``: leader-side assembly plus per-entry
  validation CPU (signature checks, UTXO lookups).

With the defaults (1 MB / 2000-entry blocks, 20 Mbps, 100 ms links,
400 validators, fanout 8) an empty block takes about 2.9 s and a full
one about 4.3 s, i.e. a shard sustains about 465 entries/s. That
reproduces the paper's observed capacities and crossovers: 16 shards
sustain 6000 tps of OptChain traffic (~1.15 entries per tx, 93%
utilization, Fig. 11) and about 3000 tps of OmniLedger random-placement
traffic (~2.45 entries per tx, 99% utilization) - beyond which
OmniLedger's latency explodes, the Fig. 3/8 behaviour. The flat shape
(high base, small marginal cost) also prices a light-load cross-TX at
roughly twice a same-shard transaction: two block passes plus client
round trips, §III-B's "double confirmation time".
"""

from __future__ import annotations

import math

from repro.simulator.config import SimulationConfig


class ConsensusModel:
    """Deterministic block-commit duration for one shard committee."""

    def __init__(self, config: SimulationConfig) -> None:
        self._config = config
        self._gossip_depth = max(
            1,
            math.ceil(
                math.log(config.validators_per_shard)
                / math.log(config.gossip_fanout)
            ),
        )

    @property
    def gossip_depth(self) -> int:
        """Propagation hops to reach the whole committee."""
        return self._gossip_depth

    def block_bytes(self, n_entries: int) -> int:
        """Wire size of a block carrying ``n_entries`` entries."""
        cfg = self._config
        fill = min(1.0, n_entries / cfg.block_capacity)
        # Header + proportional body.
        return int(1_000 + fill * cfg.block_size_bytes)

    def duration(self, n_entries: int) -> float:
        """Seconds from consensus start to block commit."""
        cfg = self._config
        transmission = self.block_bytes(n_entries) / cfg.bandwidth_bytes_per_s
        broadcast = self._gossip_depth * cfg.base_latency_s + transmission
        vote_rounds = 2 * self._gossip_depth * cfg.base_latency_s
        return (
            broadcast
            + vote_rounds
            + cfg.consensus_base_s
            + cfg.consensus_per_tx_s * n_entries
        )

    def max_throughput(self) -> float:
        """Entries per second a shard sustains with full blocks."""
        return self._config.block_capacity / self.duration(
            self._config.block_capacity
        )
