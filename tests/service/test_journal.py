"""The per-partition write-ahead batch journal, unit level.

The contract under test: a partition rebuilt from ``(checkpoint, WAL
tail)`` is bit-identical to the partition that wrote them, torn tails
are detected by CRC and truncated away, and a journal bound to a
different checkpoint (cursor or snapshot nonce) is discarded rather
than replayed onto the wrong base.
"""

from __future__ import annotations

import os

import pytest

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.service.engine import PlacementEngine
from repro.service.journal import (
    BatchJournal,
    journal_path_for,
    replay_journal,
)
from repro.service.partition import EnginePartition

N_SHARDS = 4
LEASE = 600


def fresh_partition(n_partitions: int = 1) -> EnginePartition:
    engine = PlacementEngine(
        make_placer("optchain", N_SHARDS), epoch_length=500
    )
    return EnginePartition(
        engine,
        partition_id=0,
        n_partitions=n_partitions,
        lease_length=LEASE,
    )


def journaled_partition(tmp_path, name="p0"):
    partition = fresh_partition()
    journal = BatchJournal(
        str(tmp_path / f"{name}.wal"),
        partition_id=0,
        n_partitions=1,
        lease_length=LEASE,
    )
    journal.open(0, "")
    partition.journal = journal
    return partition, journal


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(1_200, seed=11)


class TestReplayRoundtrip:
    def test_replay_is_bit_identical(self, tmp_path, stream):
        writer, journal = journaled_partition(tmp_path)
        placed = []
        for offset in range(0, 900, 150):
            shards, _ = writer.place_batch(stream[offset : offset + 150])
            placed.extend(shards)
        journal.close()

        replayer = fresh_partition()
        result = replay_journal(journal.path, replayer)
        assert result.replayed
        assert result.n_batches == 6
        assert not result.stale
        assert result.torn_bytes == 0
        assert replayer.n_placed == 900
        assert replayer.assignment_slice(0, 900) == placed
        # The replayed partition keeps producing the writer's stream.
        continued, _ = replayer.place_batch(stream[900:1_050])
        reference = fresh_partition()
        for offset in range(0, 1_050, 150):
            reference_shards, _ = reference.place_batch(
                stream[offset : offset + 150]
            )
        assert continued == reference_shards

    def test_rejected_batch_replays_as_noop(self, tmp_path, stream):
        """Append-before-apply journals even batches the engine then
        rejects; on replay the same record must re-fail identically
        without corrupting state or aborting the rest of the tail."""
        writer, journal = journaled_partition(tmp_path)
        shards, _ = writer.place_batch(stream[:150])
        with pytest.raises(Exception, match="dense stream order"):
            writer.place_batch(stream[:150])  # journaled, then rejected
        more, _ = writer.place_batch(stream[150:300])
        journal.close()

        replayer = fresh_partition()
        result = replay_journal(journal.path, replayer)
        assert result.replayed and not result.stale
        assert result.n_batches == 2  # the rejected record is a no-op
        assert replayer.n_placed == 300
        assert replayer.assignment_slice(0, 300) == shards + more

    def test_cursor_mismatch_is_stale(self, tmp_path, stream):
        writer, journal = journaled_partition(tmp_path)
        writer.place_batch(stream[:150])
        journal.close()

        replayer = fresh_partition()
        replayer.place_batch(stream[:150])
        result = replay_journal(journal.path, replayer)
        assert result.stale  # base_cursor 0 != partition cursor 150
        assert replayer.n_placed == 150

    def test_duplicate_replay_of_same_journal(self, tmp_path, stream):
        """Replaying a journal twice (respawn crashing again before its
        first checkpoint) must not double-place anything."""
        writer, journal = journaled_partition(tmp_path)
        shards, _ = writer.place_batch(stream[:300])
        journal.close()

        replayer = fresh_partition()
        first = replay_journal(journal.path, replayer)
        assert first.n_batches == 1
        # Second crash-before-checkpoint: a fresh restore replays the
        # same tail onto the same base and lands in the same place.
        replayer_again = fresh_partition()
        second = replay_journal(journal.path, replayer_again)
        assert second.n_batches == 1
        assert replayer_again.assignment_slice(0, 300) == shards


class TestTornTail:
    def test_torn_tail_truncated_at_every_cut(self, tmp_path, stream):
        writer, journal = journaled_partition(tmp_path)
        writer.place_batch(stream[:150])
        intact_one_record = journal.tell()
        writer.place_batch(stream[150:300])
        journal.close()
        raw = open(journal.path, "rb").read()
        header_end = raw.index(b'"base_nonce"')  # inside the header
        expected = fresh_partition()
        expected_shards, _ = expected.place_batch(stream[:150])

        cuts = sorted(
            set(range(len(raw) - 1, header_end, -97))
            | {intact_one_record + 1, len(raw) - 1}
        )
        for cut in cuts:
            torn_path = str(tmp_path / "torn.wal")
            with open(torn_path, "wb") as fh:
                fh.write(raw[:cut])
            replayer = fresh_partition()
            result = replay_journal(torn_path, replayer)
            if cut < intact_one_record:
                # Even the first record is torn: nothing replays, but
                # the journal itself (header) may survive.
                assert replayer.n_placed == 0
            else:
                assert result.n_batches == 1
                assert result.torn_bytes == intact_one_record - min(
                    cut, intact_one_record
                ) + max(0, cut - intact_one_record)
                assert (
                    replayer.assignment_slice(0, 150) == expected_shards
                )
                # The torn bytes are gone from disk: a subsequent
                # append continues from a clean boundary.
                assert os.path.getsize(torn_path) == intact_one_record

    def test_garbage_file_discarded(self, tmp_path):
        path = str(tmp_path / "garbage.wal")
        with open(path, "wb") as fh:
            fh.write(b"\x00" * 64)
        replayer = fresh_partition()
        result = replay_journal(path, replayer)
        assert result.stale
        assert not result.replayed
        assert not os.path.exists(path)


class TestCheckpointBinding:
    def test_stale_nonce_discarded(self, tmp_path, stream):
        writer, journal = journaled_partition(tmp_path)
        writer.place_batch(stream[:150])
        journal.close()

        # Take a checkpoint *after* the journaled batch; the journal
        # was not reset, so its base (cursor 0, nonce "") no longer
        # matches the snapshot it sits next to.
        snap = str(tmp_path / "p0.snap")
        writer.checkpoint(snap)
        restored = EnginePartition.restore(
            snap, n_partitions=1, lease_length=LEASE
        )
        result = replay_journal(journal.path, restored)
        assert result.stale
        assert restored.n_placed == 150
        assert not os.path.exists(journal.path)

    def test_reset_rebinds_to_new_checkpoint(self, tmp_path, stream):
        writer, journal = journaled_partition(tmp_path)
        writer.place_batch(stream[:150])
        snap = str(tmp_path / "p0.snap")
        writer.checkpoint(snap)
        journal.reset(
            writer.n_placed, writer.engine.last_snapshot_nonce or ""
        )
        shards, _ = writer.place_batch(stream[150:300])
        journal.close()

        restored = EnginePartition.restore(
            snap, n_partitions=1, lease_length=LEASE
        )
        result = replay_journal(journal.path, restored)
        assert result.replayed and not result.stale
        assert result.n_batches == 1
        assert restored.n_placed == 300
        assert restored.assignment_slice(150, 150) == shards

    def test_geometry_mismatch_discarded(self, tmp_path, stream):
        writer, journal = journaled_partition(tmp_path)
        writer.place_batch(stream[:150])
        journal.close()
        replayer = fresh_partition(n_partitions=2)
        result = replay_journal(journal.path, replayer)
        assert result.stale
        assert replayer.n_placed == 0

    def test_journal_path_for(self):
        assert journal_path_for("base.snap.p3") == "base.snap.p3.wal"
