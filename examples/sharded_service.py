"""The horizontally sharded placement service, end to end.

Walks the PR-5 serving story in one script:

1. the **binary wire codec**: the same placements as NDJSON at a
   fraction of the per-transaction codec cost (both codecs share one
   port - the server sniffs the first byte of each connection);
2. the **sharded service**: N worker processes, each owning contiguous
   txid *leases* of a partitioned engine, behind a routing front-end
   that forwards binary ``place`` payloads without decoding them;
   placements are bit-identical to the monolithic engine for any
   worker count;
3. **cross-partition bookkeeping** made visible: merged stats over the
   partitions' disjoint slices;
4. **per-partition checkpoints**: one snapshot file per worker plus a
   manifest, restored into a service that resumes the stream exactly.

Run::

    python examples/sharded_service.py
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

from repro.api import PlacementEngine, make_placer, synthetic_stream
from repro.service.client import (
    AsyncBinaryPlacementClient,
    AsyncPlacementClient,
)
from repro.service.coordinator import ShardedPlacementServer
from repro.service.server import PlacementServer

N_TRANSACTIONS = 12_000
N_SHARDS = 16
CHUNK = 400
LEASE = 2_000
SPEC = {
    "method": "optchain",
    "n_shards": N_SHARDS,
    "epoch_length": 2_000,
}


async def place_all(client, stream) -> list[int]:
    shards: list[int] = []
    for offset in range(0, len(stream), CHUNK):
        shards.extend(await client.place(stream[offset : offset + CHUNK]))
    return shards


async def demo() -> None:
    print(f"generating {N_TRANSACTIONS} Bitcoin-like transactions...")
    stream = synthetic_stream(N_TRANSACTIONS, seed=11)
    reference = make_placer("optchain", N_SHARDS).place_stream(stream)

    # -- 1: two codecs, one port, same placements ------------------------
    server = PlacementServer(
        PlacementEngine(make_placer("optchain", N_SHARDS), epoch_length=2_000),
        port=0,
    )
    await server.start()
    half = N_TRANSACTIONS // 2
    json_client = await AsyncPlacementClient.connect(port=server.port)
    bin_client = await AsyncBinaryPlacementClient.connect(port=server.port)
    start = time.perf_counter()
    served = await place_all(json_client, stream[:half])
    json_seconds = time.perf_counter() - start
    start = time.perf_counter()
    served += await place_all(bin_client, stream[half:])
    binary_seconds = time.perf_counter() - start
    print(
        "\none server, two codecs (NDJSON then binary frames):"
        f"\n  json lane:   {half / json_seconds:>9,.0f} placements/s"
        f"\n  binary lane: {half / binary_seconds:>9,.0f} placements/s"
        f"\n  placements identical to the in-process engine: "
        f"{served == reference}"
    )
    await json_client.close()
    await bin_client.close()
    await server.stop()

    # -- 2 + 3 + 4: the sharded service ----------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = str(Path(tmp) / "sharded.snap")
        sharded = ShardedPlacementServer(
            dict(SPEC),
            n_workers=2,
            port=0,
            lease_length=LEASE,
            checkpoint_path=checkpoint,
        )
        await sharded.start()
        client = await AsyncBinaryPlacementClient.connect(
            port=sharded.port
        )
        served = await place_all(client, stream[:8_000])
        stats = await client.stats()
        print(
            "\nsharded service (2 worker processes, lease "
            f"{LEASE} txids):"
            f"\n  placements bit-identical so far: "
            f"{served == reference[:8_000]}"
            f"\n  merged stats: n_placed={stats['n_placed']}, "
            f"live vectors={stats['live_vectors']} summed over "
            f"{len(stats['partitions'])} partitions"
        )
        for partition in stats["partitions"]:
            print(
                f"    partition {partition['partition_id']}: "
                f"cursor {partition['n_placed']}, "
                f"live {partition['live_vectors']}, "
                f"tracked unspent {partition['tracked_unspent']}"
            )
        report = await client.checkpoint()
        print(
            f"\n  checkpointed {report['partitions']} partitions "
            f"({report['bytes']:,} bytes total) at cursor "
            f"{report['n_placed']}"
        )
        await client.close()
        await sharded.stop()

        resumed = ShardedPlacementServer(
            dict(SPEC),
            n_workers=2,
            port=0,
            lease_length=LEASE,
            checkpoint_path=checkpoint,
        )
        await resumed.start()
        client = await AsyncBinaryPlacementClient.connect(
            port=resumed.port
        )
        ping = await client.ping()
        tail = await place_all(client, stream[ping["n_placed"] :])
        print(
            f"\nrestarted from the checkpoint set at cursor "
            f"{ping['n_placed']}; the continued stream is "
            f"bit-identical: {tail == reference[ping['n_placed']:]}"
        )
        await client.close()
        await resumed.stop()


if __name__ == "__main__":
    asyncio.run(demo())
