"""Lazy-decay load proxy vs an eager-decay reference.

:class:`~repro.core.optchain.LoadProxyLatencyProvider` keeps one global
decay exponent and per-shard scaled values; the eager reference
(:class:`~repro.core._seed_reference.EagerLoadProxy`) multiplies every
shard by the decay factor on every placement. The two accumulate
different rounding, so loads are compared with tight tolerances
(placement-level equivalence is asserted exactly in
``test_golden_equivalence.py``). The property tests drive random
placement sequences, including long horizons with tiny windows where the
global exponent must be renormalized to stay inside double range.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._seed_reference import EagerLoadProxy
from repro.core.optchain import LoadProxyLatencyProvider


def assert_loads_close(lazy_loads, eager_loads, block=2_000):
    assert len(lazy_loads) == len(eager_loads)
    for lazy, eager in zip(lazy_loads, eager_loads):
        # Relative agreement for live loads; absolute slack covers the
        # exact-zero demotion of loads that have decayed below the
        # verify-time formula's resolution (~block * 2^-53).
        assert lazy == pytest.approx(
            eager, rel=1e-9, abs=block * 2.0 ** -50
        )


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    n_shards=st.integers(1, 12),
    window=st.floats(0.2, 500.0),
)
def test_matches_eager_reference(data, n_shards, window):
    lazy = LoadProxyLatencyProvider(n_shards, window=window)
    eager = EagerLoadProxy(n_shards, window=window)
    shards = data.draw(
        st.lists(st.integers(0, n_shards - 1), min_size=1, max_size=300)
    )
    for shard in shards:
        lazy.record(shard)
        eager.record(shard)
    assert_loads_close(lazy.loads, eager.loads)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_long_horizon_with_renormalization(seed):
    """A tiny window forces renormalization every ~100 placements; the
    loads must sail through unchanged (the eager reference underflows
    its stale shards to ~0, the lazy one demotes them to exactly 0)."""
    import random

    rng = random.Random(seed)
    n_shards = 6
    window = 0.4
    lazy = LoadProxyLatencyProvider(n_shards, window=window)
    eager = EagerLoadProxy(n_shards, window=window)
    renorms = 0
    for step in range(2_000):
        shard = rng.randrange(n_shards)
        offset_before = lazy._offset
        lazy.record(shard)
        eager.record(shard)
        if lazy._offset != offset_before:
            renorms += 1
        if step % 101 == 0:
            assert_loads_close(lazy.loads, eager.loads)
    assert renorms >= 2, "window=0.4 over 2000 steps must renormalize"
    assert_loads_close(lazy.loads, eager.loads)


def test_models_match_eager_reference():
    lazy = LoadProxyLatencyProvider(4, window=50.0)
    eager = EagerLoadProxy(4, window=50.0)
    for shard in [0, 1, 1, 2, 1, 0, 3, 1]:
        lazy.record(shard)
        eager.record(shard)
    for ours, ref in zip(lazy(), eager()):
        assert ours.lambda_c == ref.lambda_c
        assert ours.lambda_v == pytest.approx(ref.lambda_v, rel=1e-9)
        assert ours.expected_total == pytest.approx(
            ref.expected_total, rel=1e-9
        )


def test_expected_total_of_matches_models():
    proxy = LoadProxyLatencyProvider(5, window=80.0)
    for shard in [0, 2, 2, 4, 2, 0]:
        proxy.record(shard)
    models = proxy()
    for shard in range(5):
        assert proxy.expected_total_of(shard) == (
            models[shard].expected_total
        )


def test_record_touches_one_shard():
    """O(1) record: one placement changes exactly one scaled entry."""
    proxy = LoadProxyLatencyProvider(8)
    proxy.record(3)
    before = list(proxy._scaled)
    proxy.record(5)
    after = list(proxy._scaled)
    changed = [i for i in range(8) if before[i] != after[i]]
    assert changed == [5]


def test_lightest_excluding_orders_by_total_then_id():
    proxy = LoadProxyLatencyProvider(4, window=10.0)
    for shard in [1, 1, 1, 2]:
        proxy.record(shard)
    # Shards 0 and 3 are idle: lightest is the lower id.
    shard, total = proxy.lightest_excluding(set())
    assert shard == 0
    assert total == proxy.expected_total_of(0)
    shard, _ = proxy.lightest_excluding({0})
    assert shard == 3
    shard, _ = proxy.lightest_excluding({0, 3})
    assert shard == 2  # one placement beats three
    shard, total = proxy.lightest_excluding({0, 1, 2, 3})
    assert shard == -1
    assert total == math.inf


def test_lightest_excluding_direct_and_heap_agree():
    proxy_a = LoadProxyLatencyProvider(9, window=30.0)
    proxy_b = LoadProxyLatencyProvider(9, window=30.0)
    import random

    rng = random.Random(5)
    for _ in range(400):
        shard = rng.randrange(9)
        proxy_a.record(shard)
        proxy_b.record(shard)
    small = {1, 7}  # heap path
    big = set(range(9)) - {0, 4}  # direct-scan path
    assert proxy_a.lightest_excluding(small) == (
        proxy_b._lightest_direct(small)
    )
    assert proxy_a.lightest_excluding(big) == (
        proxy_b._lightest_direct(big)
    )


def test_stale_shards_demote_to_zero_cohort():
    """After ~40 windows of inactivity a shard's load is below the
    verify-time resolution; the spill query demotes it to exact zero."""
    proxy = LoadProxyLatencyProvider(3, window=5.0, block_capacity=100)
    proxy.record(0)
    for _ in range(600):
        proxy.record(1)
    assert proxy._scaled[0] != 0.0
    shard, total = proxy.lightest_excluding(set())
    # Shard 0's decayed remnant is latency-identical to idle shard 2,
    # so the lower id wins.
    assert shard == 0
    assert total == proxy.expected_total_of(2)
    assert proxy._scaled[0] == 0.0  # demoted


def test_loads_property_decays():
    proxy = LoadProxyLatencyProvider(2, window=10.0)
    proxy.record(0)
    first = proxy.loads[0]
    for _ in range(20):
        proxy.record(1)
    assert proxy.loads[0] < first
    assert proxy.loads[0] == pytest.approx(
        first * math.exp(-20 / 10.0), rel=1e-9
    )
