"""Parallel simulate_grid must be bit-identical to the serial path."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import GeneratorConfig
from repro.errors import ConfigurationError
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import clear_caches, resolve_jobs, simulate_grid

#: A deliberately tiny grid (2 methods x 1 shard count x 2 rates) so the
#: process-pool path stays fast enough for the unit suite.
MINI = ExperimentScale(
    name="mini-parallel",
    n_transactions=600,
    generator=GeneratorConfig(
        n_wallets=200, coinbase_interval=100, bootstrap_coinbase=25
    ),
    tx_rates=(100.0, 150.0),
    shard_counts=(4,),
    table_shard_counts=(4,),
    block_capacity=50,
    block_size_bytes=25_000,
    consensus_per_tx_s=0.01,
    commit_bin_s=5.0,
    max_sim_time_s=500.0,
    warm_prefix=400,
    warm_window=200,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def as_comparable(grid):
    return {
        point: (
            result.latencies,
            result.commit_times,
            result.queue_samples,
            result.duration,
            result.n_cross,
            result.bytes_cross,
            result.drained,
        )
        for point, result in grid.items()
    }


class TestParallelGrid:
    def test_parallel_equals_serial(self):
        methods = ("omniledger", "metis")
        serial = as_comparable(simulate_grid(MINI, methods, seed=1, jobs=1))
        clear_caches()
        parallel = as_comparable(
            simulate_grid(MINI, methods, seed=1, jobs=2)
        )
        assert serial == parallel

    def test_parallel_populates_cache(self):
        simulate_grid(MINI, ("omniledger",), seed=1, jobs=2)
        # A second call must be served from cache (serial fast path).
        grid = simulate_grid(MINI, ("omniledger",), seed=1, jobs=2)
        assert len(grid) == 2

    def test_grid_covers_every_point(self):
        grid = simulate_grid(MINI, ("omniledger",), seed=1, jobs=2)
        assert set(grid) == {
            ("omniledger", 4, 100.0),
            ("omniledger", 4, 150.0),
        }
        assert all(result.drained for result in grid.values())


class TestJobsPolicy:
    def test_explicit_jobs_win(self):
        assert resolve_jobs(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)
