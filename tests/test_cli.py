"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_defaults(self):
        args = build_parser().parse_args(["place"])
        assert args.method == "optchain"
        assert args.shards == 16

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table1"])
        assert args.name == "table1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])

    def test_strategy_alias_and_support_cap(self):
        args = build_parser().parse_args(
            ["serve", "--strategy", "optchain-topk", "--support-cap", "4"]
        )
        assert args.method == "optchain-topk"
        # The cap stays a string at parse time: it may be an int or
        # the adaptive "auto:<rate>" form, resolved by _topk_kwargs.
        assert args.support_cap == "4"
        assert args.checkpoint_compress is False
        auto = build_parser().parse_args(
            ["serve", "--strategy", "t2s-topk", "--support-cap", "auto:0.01"]
        )
        assert auto.support_cap == "auto:0.01"

    def test_bad_support_cap_exits_cleanly(self, capsys):
        """A malformed cap is a usage error (exit 2), not a traceback."""
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "place",
                    "--method",
                    "optchain-topk",
                    "--transactions",
                    "10",
                    "--support-cap",
                    "abc",
                ]
            )
        assert excinfo.value.code == 2
        assert "support-cap" in capsys.readouterr().err
        args = build_parser().parse_args(
            ["serve", "--checkpoint-compress"]
        )
        assert args.checkpoint_compress is True
        args = build_parser().parse_args(
            ["place", "--strategy", "optchain-topk"]
        )
        assert args.method == "optchain-topk"
        assert args.support_cap is None


class TestCommands:
    def test_place(self, capsys):
        code = main(
            [
                "place",
                "--method",
                "t2s",
                "--shards",
                "4",
                "--transactions",
                "800",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-shard" in out
        assert "balance" in out

    def test_place_topk(self, capsys):
        code = main(
            ["place", "--strategy", "optchain-topk", "--support-cap",
             "4", "--shards", "8", "--transactions", "800"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optchain-topk" in out
        assert "cross-shard" in out

    def test_place_metis(self, capsys):
        code = main(
            ["place", "--method", "metis", "--shards", "4",
             "--transactions", "500"]
        )
        assert code == 0
        assert "metis" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate",
                "--method",
                "omniledger",
                "--shards",
                "4",
                "--transactions",
                "400",
                "--rate",
                "100",
                "--block-capacity",
                "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "400/400" in out
        assert "throughput" in out

    def test_generate_and_stats_jsonl(self, tmp_path, capsys):
        path = tmp_path / "stream.jsonl"
        assert (
            main(
                [
                    "generate",
                    str(path),
                    "--transactions",
                    "300",
                    "--format",
                    "jsonl",
                ]
            )
            == 0
        )
        assert path.exists()
        capsys.readouterr()
        assert main(["stats", str(path), "--format", "jsonl"]) == 0
        out = capsys.readouterr().out
        assert "nodes:            300" in out

    def test_generate_and_stats_edges(self, tmp_path, capsys):
        path = tmp_path / "edges.txt"
        assert (
            main(
                [
                    "generate",
                    str(path),
                    "--transactions",
                    "300",
                    "--format",
                    "edges",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["stats", str(path), "--format", "edges"]) == 0
        out = capsys.readouterr().out
        assert "edges:" in out

    def test_experiment_tiny(self, capsys, monkeypatch):
        from repro.experiments.runner import clear_caches

        clear_caches()
        code = main(["experiment", "table1", "--scale", "tiny"])
        assert code == 0
        assert "Table I" in capsys.readouterr().out
