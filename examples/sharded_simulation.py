"""End-to-end sharded-blockchain simulation (the paper's §V pipeline).

Runs the discrete-event simulator - shard committees, mempool queues,
the OmniLedger lock/unlock-to-commit protocol, network latencies - over
one workload with two placement strategies, and prints the evaluation
metrics of Figs. 3-10: throughput, average/max confirmation latency,
cross-shard fraction, and queue imbalance.

Run::

    python examples/sharded_simulation.py
"""

from __future__ import annotations

from repro import OmniLedgerRandomPlacer, OptChainPlacer, synthetic_stream
from repro.analysis.distribution import fraction_below, percentile
from repro.analysis.report import compare_results
from repro.analysis.timeseries import queue_ratio_series
from repro.simulator import SimulationConfig, run_simulation

N_TRANSACTIONS = 20_000
N_SHARDS = 8
TX_RATE = 250.0  # scaled-down rate; see repro.experiments.configs


def simulate(placer):
    stream = synthetic_stream(N_TRANSACTIONS, seed=3)
    config = SimulationConfig(
        n_shards=N_SHARDS,
        tx_rate=TX_RATE,
        block_capacity=200,
        block_size_bytes=100_000,
        consensus_per_tx_s=0.005,
        max_sim_time_s=5_000.0,
    )
    return run_simulation(stream, placer, config)


def report(name: str, result) -> None:
    print(f"{name}:")
    print(f"  committed:        {result.n_committed}/{result.n_issued}")
    print(f"  cross-shard:      {result.cross_fraction:.1%}")
    print(f"  throughput:       {result.throughput:.0f} tps")
    print(f"  avg latency:      {result.average_latency:.1f} s")
    print(
        f"  p95 latency:      {percentile(result.latencies, 95):.1f} s"
    )
    print(f"  max latency:      {result.max_latency:.1f} s")
    within_10s = fraction_below(result.latencies, 10.0)
    print(f"  confirmed <10s:   {within_10s:.1%}")
    ratios = [
        ratio
        for _, ratio in queue_ratio_series(
            result.queue_sample_times, result.queue_samples
        )
        if ratio != float("inf")
    ]
    if ratios:
        median = sorted(ratios)[len(ratios) // 2]
        print(f"  queue max/min:    {median:.1f} (median)")
    print()


def main() -> None:
    print(
        f"simulating {N_TRANSACTIONS} txs at {TX_RATE:.0f} tps on "
        f"{N_SHARDS} shards\n"
    )
    optchain_result = simulate(OptChainPlacer(N_SHARDS))
    omniledger_result = simulate(OmniLedgerRandomPlacer(N_SHARDS))
    report("OptChain", optchain_result)
    report("OmniLedger random placement", omniledger_result)
    print(
        compare_results(
            {
                "OptChain": optchain_result,
                "OmniLedger": omniledger_result,
            }
        )
    )
    print(
        "\nthe cross-shard difference translates directly into latency "
        "and throughput:\neach cross-TX occupies block slots in every "
        "involved shard and needs two\nsequential block commits "
        "(lock, then unlock-to-commit)."
    )


if __name__ == "__main__":
    main()
