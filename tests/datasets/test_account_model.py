"""Tests for the account-model (Ethereum-style) workload generator."""

from __future__ import annotations

import pytest

from repro.datasets.account_model import (
    AccountModelConfig,
    AccountModelGenerator,
    account_model_stream,
)
from repro.errors import ConfigurationError
from repro.txgraph.tan import TaNGraph
from repro.txgraph.topo import is_topological_stream
from repro.utxo.utxoset import UTXOSet


CONFIG = AccountModelConfig(n_accounts=100, n_communities=8)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_accounts": 1},
            {"merge_receiver_prob": 1.5},
            {"tx_rate": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AccountModelConfig(**kwargs).validate()

    def test_default_valid(self):
        AccountModelConfig().validate()


class TestValidity:
    def test_stream_valid(self):
        stream = account_model_stream(2_000, seed=3, config=CONFIG)
        assert is_topological_stream(stream)
        UTXOSet().apply_all(stream)

    def test_deterministic(self):
        a = account_model_stream(500, seed=9, config=CONFIG)
        b = account_model_stream(500, seed=9, config=CONFIG)
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            AccountModelGenerator(CONFIG).generate(-1)


class TestShape:
    def test_fanin_at_most_two(self):
        """Account transfers have 1-2 inputs (sender state, optionally
        the receiver's state) - the paper's 'one input and one output'
        account structure, encoded over UTXOs."""
        stream = account_model_stream(2_000, seed=3, config=CONFIG)
        for tx in stream:
            assert len(tx.inputs) <= 2
            assert len(tx.outputs) <= 2

    def test_chains_dominate(self):
        """Each account's states form a path: out-degree of a state
        output is at most 1 spender per output, so TaN out-degree <= 2."""
        stream = account_model_stream(2_000, seed=3, config=CONFIG)
        graph = TaNGraph.from_transactions(stream)
        assert max(
            graph.out_degree(u) for u in graph.nodes()
        ) <= 2

    def test_placement_still_beats_random(self):
        """OptChain's advantage survives the account model (fewer
        parents, but chains still carry community locality)."""
        from repro.core.baselines import OmniLedgerRandomPlacer
        from repro.core.optchain import OptChainPlacer
        from repro.partition.quality import cross_shard_fraction

        stream = account_model_stream(4_000, seed=5, config=CONFIG)
        opt = OptChainPlacer(8).place_stream(stream)
        rand = OmniLedgerRandomPlacer(8).place_stream(stream)
        assert cross_shard_fraction(stream, opt) < 0.5 * (
            cross_shard_fraction(stream, rand)
        )

    def test_genesis_bootstraps_population(self):
        stream = account_model_stream(300, seed=1, config=CONFIG)
        coinbase = [tx for tx in stream if tx.is_coinbase]
        assert len(coinbase) >= 2
        # After bootstrap, transfers dominate.
        tail = stream[-100:]
        transfers = [tx for tx in tail if not tx.is_coinbase]
        assert len(transfers) > 80
