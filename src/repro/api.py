"""The stable programmatic facade of the reproduction toolkit.

Everything an embedding application needs, importable from one place::

    from repro.api import StrategySpec, make_placer, synthetic_stream

    placer = make_placer("optchain-topk:cap=auto:0.01,backend=auto", 64)
    assignment = placer.place_stream(synthetic_stream(100_000, seed=7))

The facade is intentionally small and additive-only:

- **Strategies**: :func:`make_placer` builds any registered strategy
  from a name, a spec string, or a parsed :class:`StrategySpec` - the
  one configuration language shared by the CLI, the experiments
  runner, snapshot headers, and the service (``backend_available``
  reports whether the accelerated numpy backend can run here).
- **Serving**: :class:`PlacementEngine` wraps a placer with epoch
  truncation and snapshot/restore; the client classes speak both wire
  codecs to a running ``optchain serve`` instance.
- **Data**: :func:`synthetic_stream` generates the Bitcoin-like
  workload; the JSONL/edge-list loaders round-trip streams on disk.

Deeper internals (scorer classes, the simulator, wire codecs) remain
importable from their home modules but are not part of this facade's
compatibility surface.
"""

from __future__ import annotations

from repro import __version__
from repro.core.backends import backend_available, backend_unavailable_reason
from repro.core.placement import PlacementStrategy, make_placer
from repro.core.spec import StrategySpec, make_placer_from_spec
from repro.datasets.io import (
    load_edge_list,
    load_stream_jsonl,
    save_edge_list,
    save_stream_jsonl,
)
from repro.datasets.synthetic import BitcoinLikeGenerator, synthetic_stream
from repro.errors import (
    ConfigurationError,
    PlacementError,
    ReproError,
    ServiceError,
)
from repro.partition.quality import (
    balance_ratio,
    cross_shard_fraction,
)
from repro.service.client import (
    AsyncBinaryPlacementClient,
    AsyncPlacementClient,
    BinaryPlacementClient,
    PlacementClient,
    async_client_class,
    client_class,
)
from repro.service.engine import EngineStats, PlacementEngine
from repro.utxo.transaction import OutPoint, Transaction

__all__ = [
    # strategy construction
    "StrategySpec",
    "make_placer",
    "make_placer_from_spec",
    "PlacementStrategy",
    "backend_available",
    "backend_unavailable_reason",
    # serving
    "PlacementEngine",
    "EngineStats",
    "PlacementClient",
    "BinaryPlacementClient",
    "AsyncPlacementClient",
    "AsyncBinaryPlacementClient",
    "client_class",
    "async_client_class",
    # data
    "Transaction",
    "OutPoint",
    "BitcoinLikeGenerator",
    "synthetic_stream",
    "load_stream_jsonl",
    "save_stream_jsonl",
    "load_edge_list",
    "save_edge_list",
    # quality metrics
    "cross_shard_fraction",
    "balance_ratio",
    # errors
    "ReproError",
    "ConfigurationError",
    "PlacementError",
    "ServiceError",
    # meta
    "__version__",
]
