"""The placement-strategy interface and factory.

A placement strategy consumes the transaction stream in arrival order and
decides, online, which shard owns each transaction. Strategies are the
unit the whole evaluation varies: Tables I/II compare their static
cross-TX quality; Figures 3-11 plug them into the simulator.

Contract: ``place`` is called exactly once per transaction, in stream
order; it must return a shard id in ``[0, n_shards)`` and record the
assignment so later transactions can see their inputs' shards via
``shard_of``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable

from repro.core._argmin import LazyArgmin
from repro.errors import ConfigurationError, PlacementError
from repro.utxo.transaction import Transaction


class PlacementStrategy(ABC):
    """Base class for all transaction placers."""

    #: Registry name -> subclass, populated by __init_subclass__.
    registry: dict[str, type["PlacementStrategy"]] = {}

    #: Subclasses set this to register themselves with the factory.
    name: str = ""

    #: Which execution backend the class implements. Alternative
    #: backends of a registered strategy (repro.core.backends) inherit
    #: ``name`` for display/spec purposes and override only this.
    backend: str = "python"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # Register only classes that declare their own name: backend
        # subclasses inherit the canonical name and must not displace
        # the canonical class in the registry (mirrors the scorer
        # registry's guard).
        if "name" in cls.__dict__ and cls.name:
            PlacementStrategy.registry[cls.name] = cls

    def __init__(self, n_shards: int) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.n_shards = n_shards
        self._assignment: list[int] = []
        self._shard_sizes: list[int] = [0] * n_shards
        self._size_argmin: LazyArgmin | None = None
        # Exact running minimum of the shard sizes, O(1) amortized:
        # sizes only grow by one, so when the last shard leaves the
        # current minimum the new minimum is exactly one higher (that
        # shard now sits there), and the recount is O(n_shards) at most
        # once per full level - O(1) per placement overall.
        self._min_shard_size = 0
        self._min_size_count = n_shards
        # Exact running maximum, O(1): sizes only grow, so the maximum
        # can only be advanced by the shard just bumped. The capped
        # baselines use it to answer "is every shard under the cap?"
        # without scanning (the coinbase-burst fast path).
        self._max_shard_size = 0

    # -- contract ----------------------------------------------------------

    @abstractmethod
    def _choose(self, tx: Transaction) -> int:
        """Pick a shard for ``tx``; assignment recording is handled here."""

    def place(self, tx: Transaction) -> int:
        """Place one transaction; returns its shard."""
        assignment = self._assignment
        if tx.txid != len(assignment):
            raise PlacementError(
                f"transactions must be placed in dense stream order: got "
                f"{tx.txid}, expected {len(assignment)}"
            )
        shard = self._choose(tx)
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"{type(self).__name__} produced shard {shard}, valid "
                f"range is [0, {self.n_shards})"
            )
        assignment.append(shard)
        self._bump_shard_size(shard)
        return shard

    def place_stream(self, txs: Iterable[Transaction]) -> list[int]:
        """Place a whole stream; returns the *full* assignment so far."""
        self.place_batch(txs)
        return list(self._assignment)

    def place_batch(self, txs: Iterable[Transaction]) -> list[int]:
        """Place a batch; returns the shards of *these* transactions only.

        The long-lived serving path (:mod:`repro.service`): a server
        placing millions of transactions in micro-batches must not pay
        the O(n_placed) full-assignment copy that :meth:`place_stream`
        returns per call. Decisions and state are identical to calling
        :meth:`place` in a loop.
        """
        place = self.place
        return [place(tx) for tx in txs]

    def force_place(self, tx: Transaction, shard: int) -> None:
        """Record an externally decided placement (warm starts).

        Table II seeds every strategy with a Metis partition of the
        stream prefix before measuring the placement window; the internal
        state (scores, sizes) must track these decisions exactly as if
        the strategy had made them.
        """
        if tx.txid != len(self._assignment):
            raise PlacementError(
                f"transactions must be placed in dense stream order: got "
                f"{tx.txid}, expected {len(self._assignment)}"
            )
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"forced shard {shard} out of range [0, {self.n_shards})"
            )
        self._on_forced(tx, shard)
        self._assignment.append(shard)
        self._bump_shard_size(shard)

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        """Subclass hook: absorb a forced placement into internal state.

        The default is a no-op, correct for stateless strategies
        (random hash, offline replay).
        """

    def place_observed(self, tx: Transaction, shard: int) -> int:
        """Adopt an external placement and return the shard this
        strategy would have chosen (drift-monitor shadow scoring).

        Only strategies whose decision step is separable from its
        commit implement this; see
        :meth:`repro.core.optchain.OptChainPlacer.place_observed`.
        """
        raise PlacementError(
            f"{type(self).__name__} cannot score observed placements; "
            "drift monitoring needs an optchain-family shadow"
        )

    # -- shared queries ------------------------------------------------------

    @property
    def n_placed(self) -> int:
        """Transactions placed so far."""
        return len(self._assignment)

    def shard_of(self, txid: int) -> int:
        """Shard of an already-placed transaction."""
        return self._assignment[txid]

    def assignment(self) -> list[int]:
        """Copy of the full assignment so far."""
        return list(self._assignment)

    def input_shards(self, tx: Transaction) -> set[int]:
        """``Sin(u)`` given the placements made so far.

        Iterates the raw inputs rather than the deduplicated
        ``tx.input_txids`` tuple (which allocates a dict and a tuple per
        call). The set's insertion sequence of *new* shards is unchanged
        - duplicate parents re-insert an element already present, which
        leaves set layout untouched - so iteration order, and with it
        every downstream tie-break, is identical.
        """
        assignment = self._assignment
        shards: set[int] = set()
        add = shards.add
        # A plain loop, not a set comprehension: comprehensions cost an
        # extra frame per call on 3.11, and this runs once per issued
        # transaction inside the simulator.
        for outpoint in tx.inputs:
            add(assignment[outpoint.txid])
        return shards

    def shard_sizes(self) -> list[int]:
        """Current transaction count per shard (maintained incrementally,
        O(n_shards) only for the returned copy - never O(n_placed))."""
        return list(self._shard_sizes)

    @property
    def min_shard_size(self) -> int:
        """Exact size of the currently smallest shard, O(1)."""
        return self._min_shard_size

    @property
    def max_shard_size(self) -> int:
        """Exact size of the currently largest shard, O(1)."""
        return self._max_shard_size

    def _bump_shard_size(self, shard: int) -> None:
        sizes = self._shard_sizes
        old = sizes[shard]
        sizes[shard] = old + 1
        if old + 1 > self._max_shard_size:
            self._max_shard_size = old + 1
        if old == self._min_shard_size:
            count = self._min_size_count - 1
            if count == 0:
                # The bumped shard now sits exactly one level up, so the
                # recount can never come back zero.
                self._min_shard_size = old + 1
                count = sizes.count(old + 1)
            self._min_size_count = count
        if self._size_argmin is not None:
            self._size_argmin.bump(shard)

    def size_argmin(self) -> LazyArgmin:
        """Lazy argmin over the shard sizes, created on first use.

        Strategies that need "the lightest shard" per placement (OptChain
        without a latency provider, the capped baselines' fallback) ask
        for this once and then get amortized O(log n_shards) queries
        instead of an O(n_shards) scan per transaction.
        """
        if self._size_argmin is None:
            self._size_argmin = LazyArgmin(self._shard_sizes)
        return self._size_argmin

    # -- snapshot/restore ----------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """Plain-data dump of the mutable placement state.

        Together with the constructor arguments this is everything a
        fresh instance needs to continue the stream *bit-identically*
        (see :mod:`repro.service.state` for the on-disk format and the
        golden restore-then-continue test). Lazy heap contents are
        exported verbatim: heap layout decides the traversal order of
        tie-handling queries, so "semantically equal" rebuilt heaps are
        not enough for the bit-identical contract.
        """
        state: dict[str, Any] = {
            "assignment": list(self._assignment),
            "shard_sizes": list(self._shard_sizes),
            "min_shard_size": self._min_shard_size,
            "min_size_count": self._min_size_count,
            "max_shard_size": self._max_shard_size,
        }
        if self._size_argmin is not None:
            state["size_argmin_heap"] = [
                (value, index) for value, index in self._size_argmin._heap
            ]
        return state

    def restore_state(self, state: dict[str, Any]) -> None:
        """Load a dump produced by :meth:`export_state`.

        Must be called on an instance constructed with the same
        parameters the exporting instance was. Backing lists are
        mutated in place so long-lived references (lazy argmin heaps)
        stay attached.
        """
        sizes = state["shard_sizes"]
        if len(sizes) != self.n_shards:
            raise PlacementError(
                f"snapshot has {len(sizes)} shards, placer has "
                f"{self.n_shards}"
            )
        self._assignment[:] = state["assignment"]
        self._shard_sizes[:] = sizes
        self._min_shard_size = state["min_shard_size"]
        self._min_size_count = state["min_size_count"]
        self._max_shard_size = state["max_shard_size"]
        heap = state.get("size_argmin_heap")
        if heap is not None:
            argmin = self.size_argmin()
            argmin._heap[:] = [(value, index) for value, index in heap]
        elif self._size_argmin is not None:
            self._size_argmin.rebuild()


def make_placer(
    name, n_shards: int, backend: "str | None" = None, **kwargs
) -> PlacementStrategy:
    """Factory over the strategy registry and the spec language.

    ``name`` accepts a plain registry name (``optchain``,
    ``optchain-topk``, ``omniledger``, ``greedy``, ``metis``, ``t2s``,
    ``t2s-topk`` - see :mod:`repro.core.baselines` and
    :mod:`repro.core.optchain`), a full spec string
    (``"optchain-topk:cap=4,backend=numpy"``), or a parsed
    :class:`~repro.core.spec.StrategySpec`. The ``backend`` keyword
    routes a plain name through spec resolution
    (``make_placer("optchain", 16, backend="numpy")``).
    """
    from repro.core.spec import StrategySpec

    if isinstance(name, StrategySpec):
        return name.build(n_shards, **kwargs)
    if ":" in name or backend is not None:
        spec = StrategySpec.parse(name)
        if backend is not None:
            spec = spec.with_backend(backend)
        return spec.build(n_shards, **kwargs)
    try:
        cls = PlacementStrategy.registry[name]
    except KeyError:
        known = ", ".join(sorted(PlacementStrategy.registry))
        raise ConfigurationError(
            f"unknown placement strategy {name!r}; known: {known}"
        )
    return cls(n_shards=n_shards, **kwargs)
