"""Regenerates Fig. 11: OptChain's max sustained rate versus #shards.

Shape asserted: the sustainable rate is non-decreasing in the shard
count (the paper finds a near-linear relationship).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig11


def test_fig11(benchmark, scale):
    points = run_once(benchmark, lambda: fig11.run(scale))
    print()
    print(fig11.as_table(points))
    rates = [p.max_rate for p in points]
    assert all(rate > 0 for rate in rates)
    # The scalability claim: more shards sustain a higher rate. Local
    # dips within the binary-search resolution are tolerated.
    assert rates[-1] > rates[0]
    assert all(b >= 0.9 * a for a, b in zip(rates, rates[1:]))
