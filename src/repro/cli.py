"""Command-line interface: ``optchain`` (or ``python -m repro``).

Subcommands:

- ``place``      - place a synthetic stream with a chosen strategy and
  print cross-shard/balance statistics.
- ``simulate``   - run one discrete-event simulation and print the §V
  metrics.
- ``experiment`` - regenerate a paper table/figure
  (``table1 table2 fig2 ... fig11`` or ``all``).
- ``generate``   - write a synthetic workload to JSONL or edge-list.
- ``stats``      - TaN statistics of a stream file.
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro import __version__

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="optchain",
        description="OptChain (ICDCS 2019) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    place = commands.add_parser(
        "place", help="place a synthetic stream and print statistics"
    )
    place.add_argument("--method", default="optchain")
    place.add_argument("--shards", type=int, default=16)
    place.add_argument("--transactions", type=int, default=20_000)
    place.add_argument("--seed", type=int, default=1)

    simulate = commands.add_parser(
        "simulate", help="run one discrete-event simulation"
    )
    simulate.add_argument("--method", default="optchain")
    simulate.add_argument("--shards", type=int, default=16)
    simulate.add_argument("--transactions", type=int, default=20_000)
    simulate.add_argument("--rate", type=float, default=300.0)
    simulate.add_argument("--block-capacity", type=int, default=200)
    simulate.add_argument(
        "--protocol", choices=("omniledger", "rapidchain"),
        default="omniledger",
    )
    simulate.add_argument(
        "--validate",
        action="store_true",
        help="full per-shard UTXO validation (dependency parking, "
        "natural double-spend rejection)",
    )
    simulate.add_argument("--seed", type=int, default=1)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "name", choices=_EXPERIMENTS + ("all",)
    )
    experiment.add_argument(
        "--scale", default=None, help="tiny | default | paper"
    )

    generate = commands.add_parser(
        "generate", help="write a synthetic workload to disk"
    )
    generate.add_argument("path")
    generate.add_argument("--transactions", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument(
        "--format", choices=("jsonl", "edges"), default="jsonl"
    )

    stats = commands.add_parser(
        "stats", help="TaN statistics of a stream file"
    )
    stats.add_argument("path")
    stats.add_argument(
        "--format", choices=("jsonl", "edges"), default="jsonl"
    )
    return parser


def _cmd_place(args) -> int:
    from repro.core.placement import make_placer
    from repro.datasets.synthetic import synthetic_stream
    from repro.partition.quality import balance_ratio, cross_shard_fraction

    stream = synthetic_stream(args.transactions, seed=args.seed)
    kwargs = (
        {"expected_total": len(stream)}
        if args.method in ("greedy", "t2s")
        else {}
    )
    if args.method == "metis":
        from repro.partition.metis_like import partition_tan
        from repro.txgraph.tan import TaNGraph

        assignment = partition_tan(
            TaNGraph.from_transactions(stream), args.shards
        )
    else:
        placer = make_placer(args.method, args.shards, **kwargs)
        assignment = placer.place_stream(stream)
    print(f"method:       {args.method}")
    print(f"transactions: {len(stream)}")
    print(f"shards:       {args.shards}")
    print(
        f"cross-shard:  "
        f"{cross_shard_fraction(stream, assignment):.2%}"
    )
    print(
        f"balance:      {balance_ratio(assignment, args.shards):.3f}"
    )
    return 0


def _cmd_simulate(args) -> int:
    from repro.analysis.report import summarize_result
    from repro.core.placement import make_placer
    from repro.datasets.synthetic import synthetic_stream
    from repro.simulator import SimulationConfig, run_simulation

    stream = synthetic_stream(args.transactions, seed=args.seed)
    placer = make_placer(args.method, args.shards)
    config = SimulationConfig(
        n_shards=args.shards,
        tx_rate=args.rate,
        block_capacity=args.block_capacity,
        block_size_bytes=args.block_capacity * 500,
        consensus_per_tx_s=min(0.01, 1.0 / args.block_capacity),
        max_sim_time_s=50_000.0,
        protocol=args.protocol,
        validate_ledger=args.validate,
        seed=args.seed,
    )
    result = run_simulation(stream, placer, config)
    print(summarize_result(result))
    return 0


def _cmd_experiment(args) -> int:
    names = _EXPERIMENTS if args.name == "all" else (args.name,)
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        module.main(args.scale)
        print()
    return 0


def _cmd_generate(args) -> int:
    from repro.datasets.io import save_edge_list, save_stream_jsonl
    from repro.datasets.synthetic import synthetic_stream

    stream = synthetic_stream(args.transactions, seed=args.seed)
    if args.format == "jsonl":
        count = save_stream_jsonl(stream, args.path)
        print(f"wrote {count} transactions to {args.path}")
    else:
        count = save_edge_list(stream, args.path)
        print(f"wrote {count} TaN edges to {args.path}")
    return 0


def _cmd_stats(args) -> int:
    from repro.datasets.io import load_edge_list, load_stream_jsonl
    from repro.txgraph.stats import graph_summary
    from repro.txgraph.tan import TaNGraph

    if args.format == "jsonl":
        stream = list(load_stream_jsonl(args.path))
    else:
        stream = load_edge_list(args.path)
    summary = graph_summary(TaNGraph.from_transactions(stream))
    print(f"nodes:            {summary.n_nodes}")
    print(f"edges:            {summary.n_edges}")
    print(f"average degree:   {summary.average_degree:.3f}")
    print(f"coinbase:         {summary.n_coinbase}")
    print(f"unspent frontier: {summary.n_unspent_frontier}")
    print(f"in-degree < 3:    {summary.fraction_in_degree_below_3:.1%}")
    print(f"out-degree < 10:  {summary.fraction_out_degree_below_10:.1%}")
    return 0


_HANDLERS = {
    "place": _cmd_place,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "generate": _cmd_generate,
    "stats": _cmd_stats,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
