"""Every example script must run cleanly end to end.

Examples are user-facing documentation; a broken example is a
documentation bug. Each runs in a subprocess with the real interpreter.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_examples_exist():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3
