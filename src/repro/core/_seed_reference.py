"""Reference (pre-optimization) placement implementations.

These are the straightforward O(n_shards)-per-transaction versions of
the placement hot path, kept as executable documentation of the exact
decision semantics the optimized fast paths in
:mod:`repro.core.optchain` and :mod:`repro.core.baselines` must
reproduce:

- :class:`EagerLoadProxy` decays *every* shard on every placement and
  builds one :class:`ShardLatencyModel` per shard per read;
- :class:`SeedOptChainPlacer` rebuilds an :class:`L2SEstimator` (and
  ``n_shards`` validated model dataclasses) per transaction and scans
  every shard in the fitness argmax;
- :class:`SeedT2SOnlyPlacer` densifies the sparse T2S scores and
  enumerates all allowed shards per transaction;
- :class:`SeedGreedyPlacer` does the same for one-hop input counts.

They are registered under ``*_seed`` factory names so the throughput
benchmark can measure the before/after ratio honestly, and the golden
equivalence tests (``tests/core/test_golden_equivalence.py``) assert the
optimized strategies produce *identical* placements. Do not use these on
hot paths.
"""

from __future__ import annotations

import math

from repro.core.baselines import PAPER_EPSILON
from repro.core.fitness import PAPER_LATENCY_WEIGHT, TemporalFitness
from repro.core.l2s import L2SEstimator, ShardLatencyModel
from repro.core.placement import PlacementStrategy
from repro.core.t2s import T2SScorer
from repro.errors import ConfigurationError, PlacementError
from repro.rng import make_rng
from repro.utxo.transaction import Transaction


class SeedT2SScorer(T2SScorer):
    """Seed-semantics T2S scoring: the original single generic path.

    Identical results to :class:`~repro.core.t2s.T2SScorer` (that is
    property-tested); kept so the benchmark's "seed" measurement pays the
    original per-transaction costs - distinct-dict construction for every
    arrival and a normalized-score dict per call - rather than borrowing
    the optimized fast paths.
    """

    def add_transaction(
        self,
        txid: int,
        input_txids,
        n_outputs: int = 1,
    ) -> dict[int, float]:
        if self._pending is not None:
            raise PlacementError(
                f"transaction {self._pending} was added but never placed"
            )
        if txid != len(self._p_prime):
            raise PlacementError(
                f"transactions must arrive in dense order: got {txid}, "
                f"expected {len(self._p_prime)}"
            )
        distinct: dict[int, None] = {}
        for parent in input_txids:
            if not 0 <= parent < txid:
                raise PlacementError(
                    f"transaction {txid} has invalid input {parent}"
                )
            distinct.setdefault(parent, None)
        for parent in distinct:
            self._spender_count[parent] += 1

        p_prime: dict[int, float] = {}
        scale = 1.0 - self.alpha
        if scale > 0.0:
            for parent in distinct:
                divisor = self._divisor(parent)
                parent_vector = self._p_prime[parent]
                if not parent_vector:
                    continue
                factor = scale / divisor
                for shard, mass in parent_vector.items():
                    p_prime[shard] = p_prime.get(shard, 0.0) + mass * factor
        if self.prune_epsilon > 0.0 and p_prime:
            p_prime = {
                shard: mass
                for shard, mass in p_prime.items()
                if mass > self.prune_epsilon
            }
        self._p_prime.append(p_prime)
        self._spender_count.append(0)
        self._output_count.append(max(1, n_outputs))
        self._pending = txid
        return self.normalized(txid)

    def add_transaction_raw(
        self, txid: int, input_txids, n_outputs: int = 1
    ) -> dict[int, float]:
        self.add_transaction(txid, input_txids, n_outputs)
        return self._p_prime[txid]

    def place(self, txid: int, shard: int) -> None:
        if self._pending != txid:
            raise PlacementError(
                f"place({txid}) without matching add_transaction "
                f"(pending: {self._pending})"
            )
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        vector = self._p_prime[txid]
        vector[shard] = vector.get(shard, 0.0) + self.alpha
        self._shard_sizes[shard] += 1
        self._pending = None


class EagerLoadProxy:
    """Seed-semantics load proxy: O(n_shards) decay per placement."""

    def __init__(
        self,
        n_shards: int,
        window: float = 2_000.0,
        base_verify_time: float = 5.0,
        base_comm_time: float = 0.1,
        block_capacity: int = 2_000,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self._loads = [0.0] * n_shards
        self._decay = math.exp(-1.0 / window)
        self._base_verify = base_verify_time
        self._base_comm = base_comm_time
        self._block = block_capacity

    @property
    def loads(self) -> list[float]:
        """Copy of the decayed per-shard loads."""
        return list(self._loads)

    def record(self, shard: int) -> None:
        """Account one placement into ``shard`` (and decay everything)."""
        for index in range(len(self._loads)):
            self._loads[index] *= self._decay
        self._loads[shard] += 1.0

    def __call__(self) -> list[ShardLatencyModel]:
        models = []
        for load in self._loads:
            verify_time = self._base_verify * (1.0 + load / self._block)
            models.append(
                ShardLatencyModel(
                    lambda_c=1.0 / self._base_comm,
                    lambda_v=1.0 / verify_time,
                )
            )
        return models


class SeedOptChainPlacer(PlacementStrategy):
    """Seed-semantics OptChain: full scans, per-transaction estimators."""

    name = "optchain_seed"

    def __init__(
        self,
        n_shards: int,
        alpha: float = 0.5,
        latency_weight: float = PAPER_LATENCY_WEIGHT,
        latency_provider="proxy",
        l2s_mode: str = "shard_load",
        outdeg_mode: str = "spenders",
    ) -> None:
        super().__init__(n_shards)
        self.scorer = SeedT2SScorer(
            n_shards, alpha=alpha, outdeg_mode=outdeg_mode
        )
        self.fitness = TemporalFitness(latency_weight=latency_weight)
        self.l2s_mode = l2s_mode
        self._proxy: EagerLoadProxy | None = None
        if latency_provider == "proxy":
            self._proxy = EagerLoadProxy(n_shards)
            self.latency_provider = self._proxy
        else:
            self.latency_provider = latency_provider

    def use_latency_provider(self, provider) -> None:
        """Swap in a live latency source, mirroring the real placer."""
        self._proxy = None
        self.latency_provider = provider

    def _choose(self, tx: Transaction) -> int:
        t2s_scores = self.scorer.add_transaction(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        if self.latency_provider is None:
            shard = self._t2s_argmax(t2s_scores)
        else:
            models = self.latency_provider()
            if len(models) != self.n_shards:
                raise ConfigurationError(
                    f"latency provider returned {len(models)} models for "
                    f"{self.n_shards} shards"
                )
            estimator = L2SEstimator(models, mode=self.l2s_mode)
            l2s_scores = estimator.scores_all(self.input_shards(tx))
            shard = self.fitness.best_shard(t2s_scores, l2s_scores)
        self.scorer.place(tx.txid, shard)
        if self._proxy is not None:
            self._proxy.record(shard)
        return shard

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        self.scorer.add_transaction(tx.txid, tx.input_txids, len(tx.outputs))
        self.scorer.place(tx.txid, shard)
        if self._proxy is not None:
            self._proxy.record(shard)

    def _t2s_argmax(self, sparse: dict[int, float]) -> int:
        sizes = self.scorer.shard_sizes
        best = min(range(self.n_shards), key=sizes.__getitem__)
        best_score = sparse.get(best, 0.0)
        for shard in range(self.n_shards):
            score = sparse.get(shard, 0.0)
            if score > best_score:
                best = shard
                best_score = score
        return best


class _SeedCappedPlacer(PlacementStrategy):
    """Seed-semantics size-cap logic: dense allowed/tied enumeration."""

    def __init__(
        self,
        n_shards: int,
        epsilon: float = PAPER_EPSILON,
        expected_total: int | None = None,
        tie_break: str = "random",
        seed: int = 0,
    ) -> None:
        super().__init__(n_shards)
        self.epsilon = epsilon
        self.expected_total = expected_total
        self.tie_break = tie_break
        self._rng = make_rng(seed)
        self._sizes = [0] * n_shards

    def _cap(self) -> float:
        if self.expected_total is not None:
            return (1.0 + self.epsilon) * (
                self.expected_total // self.n_shards
            )
        total = self.n_placed + 1
        return (1.0 + self.epsilon) * math.ceil(total / self.n_shards) + 1.0

    def _under_cap(self, shard: int) -> bool:
        return self._sizes[shard] + 1 <= self._cap()

    def _best_allowed(self, scores) -> int:
        allowed = [s for s in range(self.n_shards) if self._under_cap(s)]
        if not allowed:
            return min(range(self.n_shards), key=self._sizes.__getitem__)
        top = max(scores[s] for s in allowed)
        tied = [s for s in allowed if scores[s] == top]
        if len(tied) == 1 or self.tie_break == "first":
            return tied[0]
        if self.tie_break == "lightest":
            return min(tied, key=self._sizes.__getitem__)
        return tied[self._rng.randrange(len(tied))]

    def _record(self, shard: int) -> None:
        self._sizes[shard] += 1

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        self._record(shard)


class SeedGreedyPlacer(_SeedCappedPlacer):
    """Seed-semantics Greedy baseline (dense per-transaction scores)."""

    name = "greedy_seed"

    def _choose(self, tx: Transaction) -> int:
        scores = [0.0] * self.n_shards
        for parent in tx.input_txids:
            scores[self.shard_of(parent)] += 1.0
        shard = self._best_allowed(scores)
        self._record(shard)
        return shard


class SeedT2SOnlyPlacer(_SeedCappedPlacer):
    """Seed-semantics T2S-based baseline (dense per-transaction scores)."""

    name = "t2s_seed"

    def __init__(
        self,
        n_shards: int,
        epsilon: float = PAPER_EPSILON,
        expected_total: int | None = None,
        tie_break: str = "random",
        seed: int = 0,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
    ) -> None:
        super().__init__(
            n_shards,
            epsilon=epsilon,
            expected_total=expected_total,
            tie_break=tie_break,
            seed=seed,
        )
        self.scorer = SeedT2SScorer(
            n_shards, alpha=alpha, outdeg_mode=outdeg_mode
        )

    def _choose(self, tx: Transaction) -> int:
        sparse = self.scorer.add_transaction(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        scores = [0.0] * self.n_shards
        for shard, value in sparse.items():
            scores[shard] = value
        shard = self._best_allowed(scores)
        self.scorer.place(tx.txid, shard)
        self._record(shard)
        return shard

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        self.scorer.add_transaction(tx.txid, tx.input_txids, len(tx.outputs))
        self.scorer.place(tx.txid, shard)
        self._record(shard)


def digest_seed(tx: Transaction) -> bytes:
    """The seed Transaction.digest: one hasher + update per field.

    The optimized digest assembles a single buffer and hashes it with
    one update on a copied prototype hasher; a streaming hash over the
    concatenation is the same hash, which this reference documents (and
    the golden test asserts).
    """
    import hashlib

    hasher = hashlib.blake2b(digest_size=20)
    hasher.update(tx.txid.to_bytes(8, "big"))
    for outpoint in tx.inputs:
        hasher.update(outpoint.txid.to_bytes(8, "big"))
        hasher.update(outpoint.index.to_bytes(4, "big"))
    for output in tx.outputs:
        hasher.update(output.value.to_bytes(8, "big", signed=False))
        hasher.update(output.address.to_bytes(8, "big", signed=True))
    return hasher.digest()


class SeedOmniLedgerRandomPlacer(PlacementStrategy):
    """Seed-cost OmniLedger random placement: ``hash(tx) mod k``.

    Same decisions as :class:`repro.core.baselines.OmniLedgerRandomPlacer`
    - the golden test asserts identical assignments - but running the
    seed implementations of everything the simulator-overhaul PR touched
    on the issue path: per-field streaming digest, the dict+tuple
    ``input_txids`` detour in ``input_shards``, and the original
    ``place`` wrapper with its helper-frame size bump. The simulator
    throughput benchmark pairs this with the seed event loop so its
    before/after ratio charges the seed lane its true historical cost.
    """

    name = "omniledger_seed"

    def _choose(self, tx: Transaction) -> int:
        # n_shards > 0 is enforced by PlacementStrategy.__init__.
        return int.from_bytes(digest_seed(tx)[:8], "big") % self.n_shards

    def place(self, tx: Transaction) -> int:
        # The seed place() wrapper: helper-frame _bump_shard_size call.
        if tx.txid != len(self._assignment):
            raise PlacementError(
                f"transactions must be placed in dense stream order: got "
                f"{tx.txid}, expected {len(self._assignment)}"
            )
        shard = self._choose(tx)
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"{type(self).__name__} produced shard {shard}, valid "
                f"range is [0, {self.n_shards})"
            )
        self._assignment.append(shard)
        self._bump_shard_size(shard)
        return shard

    def input_shards(self, tx: Transaction) -> set[int]:
        # The seed derivation via the deduplicated input_txids tuple.
        return {self._assignment[parent] for parent in tx.input_txids}
