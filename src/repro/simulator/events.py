"""Typed event queue for the discrete-event simulation.

The heap holds *typed event records* ``(time, sequence, handler, a, b)``
instead of the seed's ``(time, sequence, callback)`` thunks. The handler
slot is a long-lived bound method - one per event *kind*, allocated once
when the simulation is wired - and ``a``/``b`` are its payload, so the
hot path never allocates a closure, ``partial``, or fresh bound method
per event. :meth:`run` dispatches records in a single inlined batch loop
(no per-event ``step()`` frame, heap and clock pinned in locals), which
together with the typed records is where the event-loop throughput of
``BENCH_simulator.json`` comes from.

The sequence number makes ordering total and FIFO among simultaneous
events, exactly as in the seed queue
(:class:`repro.simulator._seed_reference.SeedEventQueue`), which keeps
runs deterministic - the property every reproducibility test relies on.
Because handlers never compare (the ``(time, sequence)`` prefix is
always unique), records pop in the same order the seed's thunks did, and
the equivalence tests hold bit-identically.

The thunk-style API (:meth:`schedule` / :meth:`schedule_at` with a
zero-argument callback) is preserved for callers that are not on the hot
path - tests, failure injection - by dispatching through a module-level
trampoline.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable

from repro.errors import SimulationError

Callback = Callable[[], Any]
#: Typed handlers receive the record's two payload slots.
Handler = Callable[[Any, Any], Any]


def _invoke_thunk(callback: Callback, _unused: Any) -> None:
    """Trampoline giving zero-argument callbacks the typed signature."""
    callback()


class EventQueue:
    """Time-ordered typed-record queue with a monotonic clock.

    Hot callers inside this package (protocol, client, shard) push
    records onto ``_heap`` directly with ``heapq.heappush`` and a
    sequence number from ``next(_sequence)``, skipping the
    :meth:`schedule_event` frame; the record layout above is the
    contract they compile against. ``_sequence`` is therefore a shared
    :func:`itertools.count`, not a private integer.
    """

    __slots__ = ("_heap", "_sequence", "_now", "_processed")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Handler, Any, Any]] = []
        self._sequence = count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def n_pending(self) -> int:
        """Events scheduled but not yet executed."""
        return len(self._heap)

    @property
    def n_processed(self) -> int:
        """Events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run a zero-argument ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(
            self._heap,
            (
                self._now + delay,
                next(self._sequence),
                _invoke_thunk,
                callback,
                None,
            ),
        )

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run a zero-argument ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, clock is at {self._now}"
            )
        heapq.heappush(
            self._heap,
            (time, next(self._sequence), _invoke_thunk, callback, None),
        )

    def schedule_event(
        self, delay: float, handler: Handler, a: Any = None, b: Any = None
    ) -> None:
        """Schedule a typed record: ``handler(a, b)`` at ``now + delay``.

        ``handler`` must be long-lived (a cached bound method or module
        function); allocating it per call would reintroduce exactly the
        per-event cost this queue removes.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(
            self._heap,
            (self._now + delay, next(self._sequence), handler, a, b),
        )

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _, handler, a, b = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        handler(a, b)
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Drain the queue, optionally bounded by time or event count.

        With ``until``, events at times strictly greater are left queued
        and the clock advances to ``until``. Dispatch is batched: the
        unbounded path is a tight loop over the heap with no per-event
        method frames.
        """
        heap = self._heap
        heappop = heapq.heappop
        if until is None and max_events is None:
            # The common fully-draining run: nothing to check per event,
            # and the processed count is folded in once at the end (no
            # engine handler reads it mid-run; step() and the bounded
            # path below keep it exact per event).
            processed = 0
            try:
                while heap:
                    time, _, handler, a, b = heappop(heap)
                    self._now = time
                    processed += 1
                    handler(a, b)
            finally:
                self._processed += processed
            return
        executed = 0
        while heap:
            if max_events is not None and executed >= max_events:
                return
            if until is not None and heap[0][0] > until:
                self._now = until
                return
            time, _, handler, a, b = heappop(heap)
            self._now = time
            self._processed += 1
            handler(a, b)
            executed += 1
