"""Unit tests for the per-figure post-processing helpers.

These run on the tiny-scale cached grid (built once per session by the
runner cache) and verify the *computations* each figure applies to raw
simulation results; the shape assertions against the paper live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig3, fig6, fig8, fig9, fig11, get_scale


@pytest.fixture(scope="module")
def tiny():
    return get_scale("tiny")


@pytest.fixture(scope="module")
def grid(tiny):
    return fig3.run(tiny)


class TestFig3Cells:
    def test_grid_complete(self, tiny, grid):
        expected = (
            4 * len(tiny.shard_counts) * len(tiny.tx_rates)
        )  # 4 methods
        assert len(grid) == expected

    def test_cells_well_formed(self, grid):
        for cell in grid:
            assert cell.throughput >= 0
            assert cell.average_latency >= 0
            assert cell.max_latency >= cell.average_latency
            assert 0.0 <= cell.cross_fraction <= 1.0

    def test_table_renders_all_methods(self, grid):
        text = fig3.as_table(grid)
        for method in ("optchain", "omniledger", "greedy", "metis"):
            assert method in text


class TestFig6Helpers:
    def test_worst_max_queue(self):
        series = [(0.0, 5, 1), (1.0, 9, 0), (2.0, 3, 3)]
        assert fig6.worst_max_queue(series) == 9

    def test_worst_max_queue_empty(self):
        assert fig6.worst_max_queue([]) == 0


class TestFig8Helpers:
    def test_series_sorted_by_rate(self, tiny, grid):
        series = fig8.latency_at_max_shards(grid)
        for points in series.values():
            rates = [rate for rate, _ in points]
            assert rates == sorted(rates)
            assert len(points) == len(tiny.tx_rates)

    def test_reduction_in_unit_range(self, grid):
        reduction = fig8.reduction_vs(grid)
        assert -1.0 <= reduction < 1.0


class TestFig9Helpers:
    def test_worst_case_covers_methods(self, grid):
        worst = fig9.worst_case(grid)
        assert set(worst) == {"optchain", "omniledger", "greedy", "metis"}
        assert all(v > 0 for v in worst.values())

    def test_worst_case_at_least_series_max(self, grid):
        worst = fig9.worst_case(grid)
        series = fig9.max_latency_at_max_shards(grid)
        for method, points in series.items():
            assert worst[method] >= max(latency for _, latency in points)


class TestFig11Helpers:
    def test_table_renders(self):
        points = [
            fig11.ScalePoint(4, 100.0, 5.0, 12.0),
            fig11.ScalePoint(8, 210.0, 6.0, 14.0),
        ]
        text = fig11.as_table(points)
        assert "Fig. 11" in text
        assert "210" in text
