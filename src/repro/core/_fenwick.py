"""Fenwick (binary-indexed) tree over 0/1 flags: count + order-select.

The capped baselines need two queries about the *allowed* set (shards
still under the size cap) to place a zero-score transaction exactly as
the dense enumeration would: how many shards are allowed, and which is
the i-th allowed shard in id order (the dense tied list is exactly the
allowed ids ascending). Both are O(log n) here; maintaining the flags
is O(log n) per cap transition, of which each shard has O(1) per cap
level.
"""

from __future__ import annotations


class FenwickFlags:
    """0/1 flags over ``[0, n)`` with popcount and select."""

    __slots__ = ("_tree", "_n", "_log", "total")

    def __init__(self, n: int, initial: bool = True) -> None:
        self._n = n
        self._log = n.bit_length()
        self.total = n if initial else 0
        tree = [0] * (n + 1)
        if initial:
            # O(n) all-ones build: set each leaf, push into the parent.
            for index in range(1, n + 1):
                tree[index] += 1
                parent = index + (index & -index)
                if parent <= n:
                    tree[parent] += tree[index]
        self._tree = tree

    def add(self, index: int, delta: int) -> None:
        """Adjust the flag at ``index`` by ``delta`` (+1 set, -1 clear).

        The caller keeps flags in {0, 1}; the tree does not re-check.
        """
        self.total += delta
        position = index + 1
        tree = self._tree
        n = self._n
        while position <= n:
            tree[position] += delta
            position += position & -position

    def select(self, k: int) -> int:
        """Index of the ``k``-th (0-based) set flag, ascending order."""
        if not 0 <= k < self.total:
            raise IndexError(
                f"select({k}) out of range (total={self.total})"
            )
        tree = self._tree
        n = self._n
        position = 0
        remaining = k + 1
        bit = 1 << self._log
        while bit:
            probe = position + bit
            if probe <= n and tree[probe] < remaining:
                position = probe
                remaining -= tree[probe]
            bit >>= 1
        return position
