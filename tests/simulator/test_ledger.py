"""Tests for per-shard ledgers and opt-in full validation."""

from __future__ import annotations

import pytest

from repro.core.baselines import OmniLedgerRandomPlacer
from repro.core.optchain import OptChainPlacer
from repro.datasets.synthetic import GeneratorConfig, synthetic_stream
from repro.errors import SimulationError
from repro.simulator import SimulationConfig, run_simulation
from repro.simulator.ledger import CONFLICT, MISSING, OK, ShardLedger
from repro.utxo.transaction import OutPoint, Transaction, TxOutput


GEN = GeneratorConfig(
    n_wallets=200, coinbase_interval=100, bootstrap_coinbase=20
)


def sim(**kwargs) -> SimulationConfig:
    defaults = dict(
        n_shards=4,
        tx_rate=150.0,
        block_capacity=50,
        block_size_bytes=25_000,
        max_sim_time_s=3_000.0,
        validate_ledger=True,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestShardLedger:
    def test_register_and_classify(self):
        ledger = ShardLedger(0)
        ledger.register_outputs(5, 2)
        assert ledger.classify([OutPoint(5, 0)]) == OK
        assert ledger.classify([OutPoint(5, 0), OutPoint(9, 0)]) == MISSING
        assert ledger.n_unspent == 2

    def test_spend_and_conflict(self):
        ledger = ShardLedger(0)
        ledger.register_outputs(5, 1)
        ledger.spend([OutPoint(5, 0)], txid=7)
        assert ledger.classify([OutPoint(5, 0)]) == CONFLICT
        assert ledger.spender_of(OutPoint(5, 0)) == 7
        assert ledger.n_spent == 1

    def test_conflict_dominates_missing(self):
        ledger = ShardLedger(0)
        ledger.register_outputs(5, 1)
        ledger.spend([OutPoint(5, 0)], txid=7)
        verdict = ledger.classify([OutPoint(5, 0), OutPoint(99, 0)])
        assert verdict == CONFLICT

    def test_unspend_reclaims(self):
        ledger = ShardLedger(0)
        ledger.register_outputs(5, 1)
        ledger.spend([OutPoint(5, 0)], txid=7)
        ledger.unspend([OutPoint(5, 0)], txid=7)
        assert ledger.classify([OutPoint(5, 0)]) == OK

    def test_unspend_wrong_txid_rejected(self):
        ledger = ShardLedger(0)
        ledger.register_outputs(5, 1)
        ledger.spend([OutPoint(5, 0)], txid=7)
        with pytest.raises(SimulationError):
            ledger.unspend([OutPoint(5, 0)], txid=8)

    def test_double_register_rejected(self):
        ledger = ShardLedger(0)
        ledger.register_outputs(5, 1)
        with pytest.raises(SimulationError):
            ledger.register_outputs(5, 1)

    def test_spend_unavailable_rejected(self):
        ledger = ShardLedger(0)
        with pytest.raises(SimulationError):
            ledger.spend([OutPoint(1, 0)], txid=2)

    def test_first_missing(self):
        ledger = ShardLedger(0)
        ledger.register_outputs(5, 1)
        assert ledger.first_missing([OutPoint(5, 0)]) is None
        assert ledger.first_missing(
            [OutPoint(5, 0), OutPoint(6, 0)]
        ) == OutPoint(6, 0)


class TestValidatedSimulation:
    def test_valid_stream_fully_commits(self):
        """A generator stream (no conflicts) commits completely under
        full validation; parking only delays, never drops."""
        stream = synthetic_stream(1_200, seed=3, config=GEN)
        result = run_simulation(stream, OmniLedgerRandomPlacer(4), sim())
        assert result.drained
        assert result.n_committed == len(stream)
        assert result.n_aborted == 0

    def test_validation_increases_latency(self):
        """Dependency ordering (children wait for parents) costs
        latency relative to the trusting replay."""
        stream = synthetic_stream(1_200, seed=3, config=GEN)
        validated = run_simulation(
            stream, OmniLedgerRandomPlacer(4), sim()
        )
        trusting = run_simulation(
            stream, OmniLedgerRandomPlacer(4), sim(validate_ledger=False)
        )
        assert validated.average_latency >= trusting.average_latency

    def test_ledger_state_consistent_after_run(self):
        """Spent + unspent outputs across shards equal the stream's
        totals (conservation under sharding)."""
        stream = synthetic_stream(800, seed=5, config=GEN)
        result = run_simulation(stream, OptChainPlacer(4), sim())
        assert result.drained
        total_outputs = sum(len(tx.outputs) for tx in stream)
        total_inputs = sum(len(tx.inputs) for tx in stream)
        # The engine does not expose protocol internals; re-run through
        # the protocol-level accessor instead.
        # (Result-level check: every tx committed exactly once.)
        assert result.n_committed == len(stream)
        assert total_outputs >= total_inputs  # stream sanity

    def test_double_spend_rejected_through_protocol(self):
        """A crafted conflicting transaction is rejected by ledger
        validation itself - no oracle list."""
        stream = list(synthetic_stream(600, seed=7, config=GEN))
        # Craft a conflict: duplicate the inputs of the last non-coinbase
        # transaction into a new competing transaction appended after it.
        victim = next(
            tx for tx in reversed(stream) if not tx.is_coinbase
        )
        attacker = Transaction(
            txid=len(stream),
            inputs=victim.inputs,
            outputs=(TxOutput(1, address=0),),
            timestamp=victim.timestamp + 0.001,
        )
        stream.append(attacker)
        result = run_simulation(stream, OmniLedgerRandomPlacer(4), sim())
        # Exactly one of {victim, attacker} commits; the other aborts.
        assert result.n_aborted == 1
        assert result.n_committed == len(stream) - 1

    def test_parking_counter_visible(self):
        """At high rate, some children arrive before their parents
        commit and must park."""
        stream = synthetic_stream(1_200, seed=3, config=GEN)
        fast = sim(tx_rate=400.0)
        result = run_simulation(stream, OmniLedgerRandomPlacer(4), fast)
        assert result.drained
        assert result.n_parked > 0


class TestValidatedRapidChain:
    def test_rapidchain_validated_run(self):
        stream = synthetic_stream(800, seed=9, config=GEN)
        result = run_simulation(
            stream,
            OmniLedgerRandomPlacer(4),
            sim(protocol="rapidchain"),
        )
        assert result.drained
        assert result.n_committed == len(stream)
