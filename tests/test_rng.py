"""Unit tests for the deterministic RNG utilities."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rng import (
    ZipfSampler,
    bounded_power_law,
    derive_rng,
    exponential,
    make_rng,
    weighted_choice,
)


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_none_is_fixed(self):
        assert make_rng(None).random() == make_rng(0).random()

    def test_derive_independent_streams(self):
        base = make_rng(1)
        a = derive_rng(base, "alpha")
        base2 = make_rng(1)
        b = derive_rng(base2, "beta")
        assert a.random() != b.random()

    def test_derive_deterministic(self):
        a = derive_rng(make_rng(1), "x").random()
        b = derive_rng(make_rng(1), "x").random()
        assert a == b


class TestZipfSampler:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 1.0, make_rng(1))
        with pytest.raises(ConfigurationError):
            ZipfSampler(5, -1.0, make_rng(1))

    def test_range(self):
        sampler = ZipfSampler(10, 1.0, make_rng(2))
        for _ in range(200):
            assert 0 <= sampler.sample() < 10

    def test_skew(self):
        """Rank 0 is drawn far more often than rank n-1 for exponent 1."""
        sampler = ZipfSampler(50, 1.0, make_rng(3))
        counts = [0] * 50
        for _ in range(5_000):
            counts[sampler.sample()] += 1
        assert counts[0] > 5 * max(1, counts[-1])

    def test_uniform_at_zero_exponent(self):
        sampler = ZipfSampler(4, 0.0, make_rng(4))
        counts = [0] * 4
        for _ in range(4_000):
            counts[sampler.sample()] += 1
        assert max(counts) < 1.3 * min(counts)

    def test_n_property(self):
        assert ZipfSampler(7, 1.0, make_rng(1)).n == 7


class TestBoundedPowerLaw:
    def test_validation(self):
        rng = make_rng(1)
        with pytest.raises(ConfigurationError):
            bounded_power_law(rng, 0, 5, 2.0)
        with pytest.raises(ConfigurationError):
            bounded_power_law(rng, 5, 2, 2.0)

    def test_degenerate_range(self):
        assert bounded_power_law(make_rng(1), 3, 3, 2.0) == 3

    def test_bounds(self):
        rng = make_rng(2)
        for _ in range(200):
            assert 1 <= bounded_power_law(rng, 1, 6, 2.1) <= 6

    def test_heavier_head(self):
        rng = make_rng(3)
        draws = [bounded_power_law(rng, 1, 10, 2.0) for _ in range(2_000)]
        assert draws.count(1) > 3 * draws.count(5)


class TestWeightedChoice:
    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_choice(make_rng(1), [1.0, -0.5])

    def test_zero_weights_uniform(self):
        rng = make_rng(2)
        draws = {weighted_choice(rng, [0.0, 0.0, 0.0]) for _ in range(100)}
        assert draws == {0, 1, 2}

    def test_respects_weights(self):
        rng = make_rng(3)
        counts = [0, 0]
        for _ in range(2_000):
            counts[weighted_choice(rng, [9.0, 1.0])] += 1
        assert counts[0] > 5 * counts[1]


class TestExponential:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            exponential(make_rng(1), 0.0)

    def test_mean(self):
        rng = make_rng(4)
        draws = [exponential(rng, 2.0) for _ in range(20_000)]
        assert sum(draws) / len(draws) == pytest.approx(0.5, rel=0.05)
