"""Numpy/compiled backend for the OptChain placement strategies.

The classes here are drop-in subclasses of the python strategies with
two changes:

1. **State representation.** Per-transaction state (assignments, T2S
   vectors, spender counts, min-mass bounds) lives in growable
   C-contiguous numpy buffers behind the list-like adapters of
   :mod:`repro.core.backends.arrays`, so snapshots, deltas, partition
   handoff, epoch sweeps, and the generic per-transaction placement
   loop all keep reading/writing it through the unchanged python code
   paths. All O(n_shards) state (shard sizes, the load proxy's lazy
   heaps) stays in plain python lists - ``heapq`` and the handoff code
   require real lists - and is copied into the kernel's typed scratch
   before each batch and back after (O(n_shards + heap) per *batch*,
   irrelevant at batch sizes the service uses).

2. **The hot loop.** ``place_batch`` marshals the micro-batch into a
   deduped-parent CSR and runs the compiled fused kernel
   (``_kernel.c``) - the same T2S recurrence + pruned fitness argmax +
   proxy update the pure-python fused loop performs, placement-for-
   placement and bit-for-bit (the differential tests compare full
   exported state). Configurations the fused python path would itself
   refuse (live latency providers, adaptive-cap scorers, a zero
   pruning epsilon, lazy argmin users) fall back to the generic
   per-transaction loop, which is still backed by the numpy state.

The kernel additionally requires ``prune_epsilon > 0``: stored masses
are then always positive, so the dense row representation can use
exact 0.0 for "shard absent".
"""

from __future__ import annotations

import ctypes
from typing import Any

import numpy as np

from repro.core.backends.arrays import (
    FloatVector,
    IntVector,
    MaskMap,
    RowMatrix,
)
from repro.core.backends.ckernel import (
    KERN_CAPACITY,
    KERN_INVALID_INPUT,
    KERN_OK,
    VALID_FALLBACK,
    VALID_FUTURE,
    VALID_OK,
    VALID_SPENT,
    VALID_UNKNOWN,
    KState,
    VState,
    load_kernel,
)
from repro.core.optchain import (
    _PATH_FUSED,
    PAPER_LATENCY_WEIGHT,
    USE_LOAD_PROXY,
    OptChainPlacer,
    TopKOptChainPlacer,
)
from repro.core.placement import PlacementStrategy
from repro.core.scorer import DEFAULT_SUPPORT_CAP, parse_support_cap
from repro.core.t2s import AdaptiveTopKT2SScorer, T2SScorer, TopKT2SScorer
from repro.errors import EngineError, PlacementError

_c_double_p = ctypes.POINTER(ctypes.c_double)
_c_int64_p = ctypes.POINTER(ctypes.c_int64)
_c_int32_p = ctypes.POINTER(ctypes.c_int32)
_c_uint8_p = ctypes.POINTER(ctypes.c_uint8)


def _dptr(arr: np.ndarray):
    return arr.ctypes.data_as(_c_double_p)


def _iptr(arr: np.ndarray):
    return arr.ctypes.data_as(_c_int64_p)


class _NumpyStateMixin:
    """Typed-array per-transaction state for a T2S scorer.

    Methods that *mutate* stored vectors are overridden to write
    through to the arrays: the inherited versions mutate the borrowed
    dict a :class:`~repro.core.backends.arrays.RowMatrix` materializes
    on read, which would be lost. Read-only paths (snapshots, handoff,
    ``normalized``) work through the adapters unchanged.
    """

    backend = "numpy"

    def _init_numpy_state(self, n_shards: int, capacity: int = 1024) -> None:
        self._p_prime = RowMatrix(n_shards, capacity=capacity)
        self._spender_count = IntVector(capacity=capacity)
        self._min_mass = FloatVector(capacity=capacity)

    def place(self, txid: int, shard: int) -> None:
        if self._pending != txid:
            raise PlacementError(
                f"place({txid}) without matching add_transaction "
                f"(pending: {self._pending})"
            )
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        # Same bits as `vector.get(shard, 0.0) + alpha`: an absent
        # shard reads as exactly 0.0 in the dense row.
        row = self._p_prime.arr[txid]
        value = row[shard] + self.alpha
        row[shard] = value
        min_mass = self._min_mass.arr
        if value < min_mass[txid]:
            min_mass[txid] = value
        self._shard_sizes[shard] += 1
        self._pending = None

    def release_vectors(self, txids) -> None:
        mat = self._p_prime
        idx = np.fromiter(txids, dtype=np.int64)
        if not idx.size:
            return
        n = len(mat)
        bad = (idx < 0) | (idx >= n)
        pending = self._pending
        if pending is not None:
            bad |= idx == pending
        stop = int(np.argmax(bad)) if bad.any() else idx.size
        head = idx[:stop]
        if head.size:
            unique = np.unique(head)
            released = int(mat.live[unique].sum())
            if released:
                mat.arr[unique] = 0.0
                mat.live[unique] = 0
                if stop == idx.size:
                    # The python loop adds to the counter only after
                    # the full iteration; an error skips the add even
                    # though the preceding vectors were dropped.
                    self._released += released
        if stop != idx.size:
            # Match the python loop's mutate-as-you-iterate semantics
            # exactly: releases preceding the offender have committed,
            # and the error is the one the per-txid loop raises (range
            # before pending).
            txid = int(idx[stop])
            if not 0 <= txid < n:
                raise PlacementError(
                    f"cannot release unknown transaction {txid}"
                )
            raise PlacementError(
                f"cannot release pending transaction {txid}"
            )

    def support_stats(self) -> dict[str, Any]:
        mat = self._p_prime
        n = len(mat)
        live_mask = mat.live[:n] != 0
        live = int(live_mask.sum())
        if live:
            nnz = np.count_nonzero(mat.arr[:n][live_mask], axis=1)
            total_nnz = int(nnz.sum())
            max_nnz = int(nnz.max())
        else:
            total_nnz = 0
            max_nnz = 0
        return {
            "live_vectors": live,
            "mean_nnz": (total_nnz / live) if live else 0.0,
            "max_nnz": max_nnz,
            "dropped_mass": self._dropped_mass,
            "truncated_vectors": self._truncated_vectors,
            "support_cap": self.support_cap,
        }


class NumpyT2SScorer(_NumpyStateMixin, T2SScorer):
    """Exact T2S scoring over typed-array state (kind ``"exact"``)."""

    def __init__(
        self,
        n_shards: int,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
        prune_epsilon: float = 1e-12,
    ) -> None:
        super().__init__(
            n_shards,
            alpha=alpha,
            outdeg_mode=outdeg_mode,
            prune_epsilon=prune_epsilon,
        )
        self._init_numpy_state(n_shards)


class NumpyTopKT2SScorer(_NumpyStateMixin, TopKT2SScorer):
    """Bounded-support T2S scoring over typed-array state."""

    def __init__(
        self,
        n_shards: int,
        support_cap: int = DEFAULT_SUPPORT_CAP,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
        prune_epsilon: float = 1e-12,
    ) -> None:
        super().__init__(
            n_shards,
            support_cap=support_cap,
            alpha=alpha,
            outdeg_mode=outdeg_mode,
            prune_epsilon=prune_epsilon,
        )
        self._init_numpy_state(n_shards)


class NumpyAdaptiveTopKT2SScorer(_NumpyStateMixin, AdaptiveTopKT2SScorer):
    """Adaptive-cap scoring over typed-array state.

    Runs unfused like its parent (``fused_compatible`` is False - the
    window accounting is inherently per-transaction), so it never
    enters the compiled kernel; the typed-array state still makes its
    snapshots interchangeable with the other numpy scorers.
    """

    def __init__(
        self,
        n_shards: int,
        target_rate: float,
        support_cap: int | None = None,
        window: int | None = None,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
        prune_epsilon: float = 1e-12,
    ) -> None:
        kwargs: dict[str, Any] = {}
        if support_cap is not None:
            kwargs["support_cap"] = support_cap
        if window is not None:
            kwargs["window"] = window
        super().__init__(
            n_shards,
            target_rate=target_rate,
            alpha=alpha,
            outdeg_mode=outdeg_mode,
            prune_epsilon=prune_epsilon,
            **kwargs,
        )
        self._init_numpy_state(n_shards)


def _make_numpy_support_scorer(
    n_shards: int,
    support_cap,
    *,
    alpha: float = 0.5,
    outdeg_mode: str = "spenders",
    initial_cap: "int | None" = None,
    window: "int | None" = None,
) -> TopKT2SScorer:
    mode, value = parse_support_cap(support_cap)
    if mode == "fixed":
        return NumpyTopKT2SScorer(
            n_shards,
            support_cap=value,
            alpha=alpha,
            outdeg_mode=outdeg_mode,
        )
    return NumpyAdaptiveTopKT2SScorer(
        n_shards,
        target_rate=value,
        support_cap=initial_cap,
        window=window,
        alpha=alpha,
        outdeg_mode=outdeg_mode,
    )


class _KernelDriver:
    """Owns the ctypes KState, the scratch buffers, and the per-batch
    copy-in/copy-out against one placer instance."""

    def __init__(self, placer: "NumpyOptChainPlacer") -> None:
        self.placer = placer
        k = placer.n_shards
        proxy = placer._proxy
        self.k = k
        self.heap_cap = max(k, proxy._compact_limit + 1) + 8
        self.zero_cap = max(4 * k, 256)
        self.scaled = np.zeros(k, dtype=np.float64)
        self.heap_vals = np.zeros(self.heap_cap, dtype=np.float64)
        self.heap_idx = np.zeros(self.heap_cap, dtype=np.int64)
        self.zero_heap = np.zeros(self.zero_cap, dtype=np.int64)
        self.strat_sizes = np.zeros(k, dtype=np.int64)
        self.scorer_sizes = np.zeros(k, dtype=np.int64)
        self.raw = np.zeros(k, dtype=np.float64)
        self.touched = np.zeros(k, dtype=np.int64)
        self.shard_mark = np.full(k, -1, dtype=np.int64)
        self.excl_mark = np.full(k, -1, dtype=np.int64)
        self.sort_mass = np.zeros(k, dtype=np.float64)
        self.sort_shard = np.zeros(k, dtype=np.int64)
        self.pb_vals = np.zeros(self.heap_cap, dtype=np.float64)
        self.pb_idx = np.zeros(self.heap_cap, dtype=np.int64)
        self.pb_ids = np.zeros(self.zero_cap, dtype=np.int64)
        self.dedup = np.zeros(64, dtype=np.int64)

    def _grow_heaps(self) -> None:
        self.heap_cap *= 2
        self.zero_cap *= 2
        self.heap_vals = np.zeros(self.heap_cap, dtype=np.float64)
        self.heap_idx = np.zeros(self.heap_cap, dtype=np.int64)
        self.zero_heap = np.zeros(self.zero_cap, dtype=np.int64)
        self.pb_vals = np.zeros(self.heap_cap, dtype=np.float64)
        self.pb_idx = np.zeros(self.heap_cap, dtype=np.int64)
        self.pb_ids = np.zeros(self.zero_cap, dtype=np.int64)

    def run(self, parents, par_off, n_outs, n_tx, raw: bool = False) -> None:
        """Run the kernel over the marshalled batch, committing state.

        With ``raw=True`` the CSR carries raw outpoint txids straight
        off the wire (``n_outs`` is unused) and the kernel deduplicates
        per transaction itself; otherwise parents arrive pre-deduped
        with raw counts in ``n_outs``.

        Raises :class:`PlacementError` (with all prior transactions
        committed, matching the python loop) on an invalid input.
        """
        placer = self.placer
        scorer = placer.scorer
        proxy = placer._proxy
        lib = load_kernel()
        mat: RowMatrix = scorer._p_prime
        min_mass: FloatVector = scorer._min_mass
        spender: IntVector = scorer._spender_count
        assignment: IntVector = placer._assignment
        n_placed = len(assignment)
        needed = n_placed + n_tx
        mat._grow_to(needed)
        min_mass._grow_to(needed)
        spender._grow_to(needed)
        assignment._grow_to(needed)

        # ---- copy python-side state into the typed scratch ----
        heap = proxy._heap
        zero_heap = proxy._zero_heap
        while len(heap) > self.heap_cap or len(zero_heap) > self.zero_cap:
            self._grow_heaps()
        self.scaled[:] = proxy._scaled
        if heap:
            hv, hi = zip(*heap)
            self.heap_vals[: len(heap)] = hv
            self.heap_idx[: len(heap)] = hi
        if zero_heap:
            self.zero_heap[: len(zero_heap)] = zero_heap
        self.strat_sizes[:] = placer._shard_sizes
        self.scorer_sizes[:] = scorer._shard_sizes

        st = KState()
        st.n_shards = self.k
        st.alpha = scorer.alpha
        st.one_minus_alpha = scorer._scale
        st.epsilon = scorer.prune_epsilon
        st.weight = placer.fitness.latency_weight
        cap = scorer.support_cap
        st.support_cap = -1 if cap is None else cap
        st.has_scale = 1 if scorer._scale > 0.0 else 0
        st.has_eps = 1 if scorer.prune_epsilon > 0.0 else 0
        st.decay = proxy._decay
        st.base_verify = proxy._base_verify
        st.base_total = proxy._base_total
        st.comm_expected = proxy._comm_expected
        st.block = proxy._block
        st.renorm_span = proxy._renorm_span
        st.compact_limit = proxy._compact_limit
        st.heap_len = len(heap)
        st.heap_cap = self.heap_cap
        st.zero_len = len(zero_heap)
        st.zero_cap = self.zero_cap
        st.step = proxy._step
        st.offset = proxy._offset
        st.pscale = proxy._scale
        st.min_size_val = placer._min_shard_size
        st.min_size_count = placer._min_size_count
        st.max_size_val = placer._max_shard_size
        st.n_placed = n_placed
        st.rows_cap = len(mat.live)
        st.dropped_mass = scorer._dropped_mass
        st.truncated_vectors = scorer._truncated_vectors
        st.raw_parents = 1 if raw else 0
        if raw:
            max_in = int(np.diff(par_off).max()) if n_tx else 0
            if max_in > len(self.dedup):
                self.dedup = np.zeros(
                    max(max_in, 2 * len(self.dedup)), dtype=np.int64
                )
            st.dedup = _iptr(self.dedup)
            st.dedup_cap = len(self.dedup)

        st.scaled = _dptr(self.scaled)
        st.heap_vals = _dptr(self.heap_vals)
        st.heap_idx = _iptr(self.heap_idx)
        st.zero_heap = _iptr(self.zero_heap)
        st.strat_sizes = _iptr(self.strat_sizes)
        st.scorer_sizes = _iptr(self.scorer_sizes)
        st.pmat = _dptr(mat.arr)
        st.live = mat.live.ctypes.data_as(_c_uint8_p)
        st.min_mass = _dptr(min_mass.arr)
        st.spender_count = _iptr(spender.arr)
        st.assignment = _iptr(assignment.arr)
        st.raw = _dptr(self.raw)
        st.touched = _iptr(self.touched)
        st.shard_mark = _iptr(self.shard_mark)
        st.excl_mark = _iptr(self.excl_mark)
        st.sort_mass = _dptr(self.sort_mass)
        st.sort_shard = _iptr(self.sort_shard)
        st.pb_ids = _iptr(self.pb_ids)
        st.pb_vals = _dptr(self.pb_vals)
        st.pb_idx = _iptr(self.pb_idx)

        done = 0
        while True:
            st.n_tx = n_tx - done
            st.parents = _iptr(parents)
            st.par_off = _iptr(par_off[done:])
            if not raw:
                st.n_outpoints = n_outs[done:].ctypes.data_as(_c_int32_p)
            rc = lib.place_batch(ctypes.byref(st))
            done += st.n_done
            if rc == KERN_CAPACITY:
                # Heap scratch too small for the next transaction (the
                # zero cohort accumulates stale duplicates between
                # compactions). Copy the heap contents into bigger
                # buffers and resume exactly where the kernel stopped.
                hl, zl = st.heap_len, st.zero_len
                old_hv = self.heap_vals[:hl].copy()
                old_hi = self.heap_idx[:hl].copy()
                old_zh = self.zero_heap[:zl].copy()
                self._grow_heaps()
                self.heap_vals[:hl] = old_hv
                self.heap_idx[:hl] = old_hi
                self.zero_heap[:zl] = old_zh
                st.heap_cap = self.heap_cap
                st.zero_cap = self.zero_cap
                st.heap_vals = _dptr(self.heap_vals)
                st.heap_idx = _iptr(self.heap_idx)
                st.zero_heap = _iptr(self.zero_heap)
                st.pb_vals = _dptr(self.pb_vals)
                st.pb_idx = _iptr(self.pb_idx)
                st.pb_ids = _iptr(self.pb_ids)
                continue
            break

        # ---- copy kernel results back into python-side state ----
        proxy._scaled[:] = self.scaled.tolist()
        proxy._heap[:] = list(
            zip(
                self.heap_vals[: st.heap_len].tolist(),
                self.heap_idx[: st.heap_len].tolist(),
            )
        )
        proxy._zero_heap[:] = self.zero_heap[: st.zero_len].tolist()
        proxy._step = st.step
        proxy._offset = st.offset
        proxy._scale = st.pscale
        placer._shard_sizes[:] = self.strat_sizes.tolist()
        placer._min_shard_size = st.min_size_val
        placer._min_size_count = st.min_size_count
        placer._max_shard_size = st.max_size_val
        scorer._shard_sizes[:] = self.scorer_sizes.tolist()
        if cap is not None:
            scorer._dropped_mass = st.dropped_mass
            scorer._truncated_vectors = st.truncated_vectors
        new_n = st.n_placed
        mat._n = new_n
        min_mass._n = new_n
        spender._n = new_n
        assignment._n = new_n

        if rc == KERN_INVALID_INPUT:
            raise PlacementError(
                f"transaction {st.error_txid} has invalid input "
                f"{st.error_parent}"
            )
        if rc != KERN_OK:
            raise RuntimeError(
                f"placement kernel failed with internal status {rc}"
            )


class NumpyOptChainPlacer(OptChainPlacer):
    """OptChain with typed-array state and the compiled fused kernel.

    Registered behind ``StrategySpec`` backend selection (never in the
    name registry - ``name`` is inherited so specs and stats report
    the canonical strategy name). Placements and exported state are
    bit-identical to :class:`~repro.core.optchain.OptChainPlacer`;
    the differential suite compares both full-state.
    """

    backend = "numpy"

    def __init__(
        self,
        n_shards: int,
        alpha: float = 0.5,
        latency_weight: float = PAPER_LATENCY_WEIGHT,
        latency_provider=USE_LOAD_PROXY,
        l2s_mode: str = "shard_load",
        outdeg_mode: str = "spenders",
        scorer=None,
    ) -> None:
        if scorer is None:
            scorer = NumpyT2SScorer(
                n_shards, alpha=alpha, outdeg_mode=outdeg_mode
            )
        super().__init__(
            n_shards,
            alpha=alpha,
            latency_weight=latency_weight,
            latency_provider=latency_provider,
            l2s_mode=l2s_mode,
            outdeg_mode=outdeg_mode,
            scorer=scorer,
        )
        self._assignment = IntVector()
        self._driver: _KernelDriver | None = None

    def _kernel_ready(self) -> bool:
        scorer = self.scorer
        return (
            self._path == _PATH_FUSED
            and self._size_argmin is None
            and isinstance(scorer, _NumpyStateMixin)
            and scorer.fused_compatible
            and scorer._spenders_divisor
            and scorer.prune_epsilon > 0.0
            and load_kernel() is not None
        )

    def place_batch(self, txs) -> list[int]:
        if not self._kernel_ready():
            # The inherited *fused* python loop would mutate the local
            # dicts it appends (lost through the row adapters); the
            # generic per-transaction loop commits through scorer.place
            # and is correct against any state representation.
            return PlacementStrategy.place_batch(self, txs)
        scorer = self.scorer
        if scorer._pending is not None:
            raise PlacementError(
                f"transaction {scorer._pending} was added but never placed"
            )
        if self._driver is None:
            self._driver = _KernelDriver(self)
        batch_start = len(self._assignment)

        # Marshal to a deduped-parent CSR (first-appearance order, as
        # Transaction.input_txids derives) plus raw outpoint counts -
        # the recurrence branches on the raw count, the argmax seeding
        # on the deduped count.
        parents: list[int] = []
        par_off = [0]
        n_outs: list[int] = []
        bad_txid = -1
        expected = batch_start
        for tx in txs:
            txid = tx.txid
            if txid != expected:
                bad_txid = txid
                break
            inputs = tx.inputs
            if len(inputs) == 1:
                parents.append(inputs[0].txid)
            elif inputs:
                parents.extend(
                    dict.fromkeys(outpoint.txid for outpoint in inputs)
                )
            n_outs.append(len(inputs))
            par_off.append(len(parents))
            expected += 1
        n_tx = len(n_outs)
        if n_tx:
            self._driver.run(
                np.array(parents, dtype=np.int64),
                np.array(par_off, dtype=np.int64),
                np.array(n_outs, dtype=np.int32),
                n_tx,
            )
        if bad_txid >= 0:
            # Same behavior as the python loop: every transaction
            # before the offender is committed, then the stream-order
            # violation raises.
            raise PlacementError(
                f"transactions must be placed in dense stream order: "
                f"got {bad_txid}, expected {len(self._assignment)}"
            )
        return self._assignment[batch_start:]

    def place_batch_raw(self, parents, in_off, n_tx) -> list[int]:
        """Place a raw-CSR marshalled batch (wire arrays or the
        engine's validation marshal): ``parents`` holds every raw
        outpoint txid, ``in_off`` the per-transaction offsets. Dense
        txid order is the caller's contract (the engine's marshal and
        validator both check it). Requires :meth:`_kernel_ready`."""
        scorer = self.scorer
        if scorer._pending is not None:
            raise PlacementError(
                f"transaction {scorer._pending} was added but never placed"
            )
        if self._driver is None:
            self._driver = _KernelDriver(self)
        batch_start = len(self._assignment)
        if n_tx:
            self._driver.run(parents, in_off, None, n_tx, raw=True)
        return self._assignment[batch_start:]

    def validation_driver(self) -> "_ValidationDriver | None":
        """A kernel batch-validation driver, or ``None`` when this
        placer's configuration keeps the kernel off the hot path (the
        engine then runs its python journal)."""
        if not self._kernel_ready():
            return None
        return _ValidationDriver()


class _ValidationDriver:
    """Kernel-resident batch validation against a :class:`MaskMap`.

    The compiled twin of ``PlacementEngine._apply_inputs``: marshals a
    batch of transactions into the raw-outpoint CSR, runs
    ``validate_batch`` in C against the engine's mask store, and maps
    error codes back to the byte-exact :class:`EngineError` messages.
    The same CSR then feeds :meth:`NumpyOptChainPlacer.place_batch_raw`
    so the batch is marshalled exactly once per request.
    """

    def __init__(self) -> None:
        self._lib = load_kernel()  # caller verified availability

    @staticmethod
    def marshal(batch, first_txid: int):
        """Typed-array CSR for ``batch``, or ``None`` when the batch
        needs the python journal (non-dense txids report their exact
        error there; negative/overflowing ids keep python semantics).
        """
        n = len(batch)
        txids = [tx.txid for tx in batch]
        if txids != list(range(first_txid, first_txid + n)):
            return None
        all_inputs = [tx.inputs for tx in batch]
        try:
            # uint dtypes reject negative and over-wide ids, pushing
            # those (contract-violating) batches to the python path;
            # the signed views match the wire decoder's zero-copy
            # reinterpretation, so both marshals hit identical kernel
            # branches.
            parents = np.array(
                [op.txid for ins in all_inputs for op in ins],
                dtype=np.uint64,
            ).view(np.int64)
            indexes = np.array(
                [op.index for ins in all_inputs for op in ins],
                dtype=np.uint32,
            ).view(np.int32)
            n_outputs = np.array(
                [len(tx.outputs) for tx in batch], dtype=np.int32
            )
        except OverflowError:
            return None
        in_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(list(map(len, all_inputs)), out=in_off[1:])
        return _MarshalledBatch(
            first_txid, n, parents, indexes, in_off, n_outputs
        )

    def validate(self, masks: MaskMap, m, *, horizon_start: int):
        """Validate + commit ``m`` against ``masks`` in the kernel.

        Returns ``(released, undo_txids)`` on success - ``released``
        in python event order, ``undo_txids`` the touched parents (or
        ``None`` when no input spent anything) - or ``None`` when the
        batch needs the python journal (arbitrary-precision masks,
        >62-output transactions), with the store rolled back untouched.
        Raises :class:`EngineError` with the python journal's exact
        message on an invalid batch, nothing committed.
        """
        n_tx = m.n_txs
        masks._grow_to(m.first_txid + n_tx)
        total_in = int(m.in_off[-1]) if n_tx else 0
        undo_txid = np.empty(total_in, dtype=np.int64)
        undo_mask = np.empty(total_in, dtype=np.int64)
        released = np.empty(total_in + n_tx, dtype=np.int64)
        st = VState()
        st.n_tx = n_tx
        st.first_txid = m.first_txid
        st.horizon_start = horizon_start
        st.parents = _iptr(m.parents)
        st.indexes = m.indexes.ctypes.data_as(_c_int32_p)
        st.in_off = _iptr(m.in_off)
        st.n_outputs = m.n_outputs.ctypes.data_as(_c_int32_p)
        st.masks = _iptr(masks.arr)
        st.undo_txid = _iptr(undo_txid)
        st.undo_mask = _iptr(undo_mask)
        st.released = _iptr(released)
        rc = self._lib.validate_batch(ctypes.byref(st))
        if rc == VALID_OK:
            masks._count += st.tracked_delta
            rel = released[: st.n_released].tolist()
            undo = undo_txid[: st.n_undo] if st.n_undo else None
            return rel, undo
        if rc == VALID_FALLBACK:
            return None
        txid = st.error_txid
        parent = st.error_parent
        if parent < 0:
            parent += 1 << 64  # recover the wire's u64 value
        if rc == VALID_FUTURE:
            raise EngineError(
                f"transaction {txid} references a non-earlier "
                f"transaction {parent}"
            )
        if rc == VALID_UNKNOWN:
            raise EngineError(
                f"transaction {txid} spends an unknown or fully-spent "
                f"transaction {parent}"
            )
        if rc == VALID_SPENT:
            index = st.error_index
            if index < 0:
                index += 1 << 32  # recover the wire's u32 value
            raise EngineError(
                f"transaction {txid} spends output {index} of "
                f"transaction {parent}, which does not exist or is "
                f"already spent"
            )
        raise RuntimeError(
            f"validation kernel failed with internal status {rc}"
        )


class _MarshalledBatch:
    """Raw-outpoint CSR of one batch (shape-compatible with
    :class:`repro.service.wire.WireBatch`)."""

    __slots__ = (
        "first_txid",
        "n_txs",
        "parents",
        "indexes",
        "in_off",
        "n_outputs",
    )

    def __init__(self, first_txid, n_txs, parents, indexes, in_off, n_outputs):
        self.first_txid = first_txid
        self.n_txs = n_txs
        self.parents = parents
        self.indexes = indexes
        self.in_off = in_off
        self.n_outputs = n_outputs

    def __len__(self) -> int:
        return self.n_txs


class NumpyTopKOptChainPlacer(TopKOptChainPlacer):
    """Bounded-support OptChain over the numpy backend.

    Fixed caps run the compiled kernel (truncation inlined); the
    adaptive ``auto:<rate>`` form uses the unfused adaptive scorer
    through the generic loop, with state still in typed arrays.
    """

    backend = "numpy"

    def __init__(
        self,
        n_shards: int,
        support_cap: "int | str" = DEFAULT_SUPPORT_CAP,
        alpha: float = 0.5,
        latency_weight: float = PAPER_LATENCY_WEIGHT,
        latency_provider=USE_LOAD_PROXY,
        l2s_mode: str = "shard_load",
        outdeg_mode: str = "spenders",
        support_initial_cap: "int | None" = None,
        support_window: "int | None" = None,
    ) -> None:
        OptChainPlacer.__init__(
            self,
            n_shards,
            alpha=alpha,
            latency_weight=latency_weight,
            latency_provider=latency_provider,
            l2s_mode=l2s_mode,
            outdeg_mode=outdeg_mode,
            scorer=_make_numpy_support_scorer(
                n_shards,
                support_cap,
                alpha=alpha,
                outdeg_mode=outdeg_mode,
                initial_cap=support_initial_cap,
                window=support_window,
            ),
        )
        self._assignment = IntVector()
        self._driver: _KernelDriver | None = None

    _kernel_ready = NumpyOptChainPlacer._kernel_ready
    place_batch = NumpyOptChainPlacer.place_batch
    place_batch_raw = NumpyOptChainPlacer.place_batch_raw
    validation_driver = NumpyOptChainPlacer.validation_driver


# Imported lazily by repro.core.spec (backend routing) and
# repro.service.state (snapshot restore).
__all__ = [
    "NumpyT2SScorer",
    "NumpyTopKT2SScorer",
    "NumpyAdaptiveTopKT2SScorer",
    "NumpyOptChainPlacer",
    "NumpyTopKOptChainPlacer",
]
