"""Shard committees: mempool queues and sequential block production.

Each shard keeps a FIFO mempool of *entries* - a same-shard transaction,
a cross-shard lock, or a cross-shard commit each occupy one block slot,
which is exactly why cross-shard transactions triple resource consumption
(§III-B). When the committee is idle and the mempool is non-empty it
immediately starts consensus on the next batch (up to ``block_capacity``
entries); block duration comes from the
:class:`~repro.simulator.consensus.ConsensusModel`. Queue size, the
paper's Fig. 6 metric, is the mempool length.

Block commits ride the typed event queue: the in-flight batch and its
duration live on the shard (production is strictly sequential per shard,
so one slot suffices) and the scheduled record reuses the bound handler
cached at construction - no closure per block, unlike the seed shard
(:class:`repro.simulator._seed_reference.SeedShard`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, NamedTuple

from repro.simulator.config import SimulationConfig
from repro.simulator.consensus import ConsensusModel
from repro.simulator.events import EventQueue

# Entry kinds - each occupies one block slot.
KIND_TX = "tx"  # same-shard transaction
KIND_LOCK = "lock"  # cross-shard input lock (proof-of-acceptance source)
KIND_COMMIT = "commit"  # cross-shard unlock-to-commit at the output shard


class Entry(NamedTuple):
    """One block-slot of work: (kind, transaction id).

    A named tuple rather than a dataclass so entries cost one tuple
    allocation; the protocol's hot path builds plain ``(kind, txid)``
    tuples with the same layout, and consumers unpack positionally, so
    both spellings interoperate.
    """

    kind: str
    txid: int


class Shard:
    """One shard committee: a mempool and a sequential block pipeline."""

    __slots__ = (
        "shard_id",
        "_config",
        "_consensus",
        "_events",
        "_on_committed",
        "_mempool",
        "_mempool_append",
        "_busy",
        "_block_capacity",
        "_inflight_batch",
        "_inflight_duration",
        "_commit_handler",
        "n_blocks",
        "n_entries_committed",
        "paused",
        "recent_block_duration",
    )

    def __init__(
        self,
        shard_id: int,
        config: SimulationConfig,
        consensus: ConsensusModel,
        events: EventQueue,
        on_committed: Callable[[int, Entry], None],
    ) -> None:
        self.shard_id = shard_id
        self._config = config
        self._consensus = consensus
        self._events = events
        self._on_committed = on_committed
        self._mempool: deque[Entry] = deque()
        self._mempool_append = self._mempool.append
        self._busy = False
        self._block_capacity = config.block_capacity
        # One in-flight block at a time (sequential pipeline), so its
        # batch and duration live here instead of in a per-event closure.
        self._inflight_batch: list[Entry] | None = None
        self._inflight_duration = 0.0
        self._commit_handler = self._commit_block
        # Stats / observer state.
        self.n_blocks = 0
        self.n_entries_committed = 0
        self.paused = False
        # EMA of completed block durations; seeded with the full-block
        # duration so the latency observer has a sane prior before the
        # first block lands.
        self.recent_block_duration = consensus.duration(
            config.block_capacity
        )

    @property
    def queue_size(self) -> int:
        """Entries waiting in the mempool (the Fig. 6 metric)."""
        return len(self._mempool)

    @property
    def busy(self) -> bool:
        """True while a block is in consensus."""
        return self._busy

    def set_on_committed(self, on_committed: Callable[[int, Entry], None]) -> None:
        """Rebind the commit callback (engine wiring after construction)."""
        self._on_committed = on_committed

    def enqueue(self, entry: Entry, _b: object = None) -> None:
        """Add an entry to the mempool and kick the pipeline."""
        self._mempool_append(entry)
        if not (self._busy or self.paused):
            self._start_block()

    def pause(self) -> None:
        """Failure injection: stop producing blocks (outage)."""
        self.paused = True

    def resume(self) -> None:
        """End an outage and restart the pipeline."""
        self.paused = False
        if self._mempool and not self._busy:
            self._start_block()

    def expected_verification_time(self) -> float:
        """What a wallet would estimate: queue drain time for a new entry.

        The paper estimates ``1/lambda_v`` "from observation of recent
        consensus time of shard i and its current queue size": the queue
        ahead of a newly arriving entry, in fractional blocks, times the
        recent block duration. Continuous (not block-quantized) so the
        L2S gradient responds to small load differences instead of
        ratcheting at block boundaries.
        """
        blocks_ahead = 1.0 + (
            len(self._mempool) / self._block_capacity
        )
        return blocks_ahead * self.recent_block_duration

    def _start_block(self) -> None:
        mempool = self._mempool
        self._busy = True
        if len(mempool) <= self._block_capacity:
            batch = list(mempool)
            mempool.clear()
        else:
            popleft = mempool.popleft
            batch = [popleft() for _ in range(self._block_capacity)]
        duration = self._consensus.duration(len(batch))
        self._inflight_batch = batch
        self._inflight_duration = duration
        self._events.schedule_event(duration, self._commit_handler)

    def _commit_block(self, _a: object = None, _b: object = None) -> None:
        batch = self._inflight_batch
        duration = self._inflight_duration
        self._inflight_batch = None
        self._busy = False
        self.n_blocks += 1
        self.n_entries_committed += len(batch)
        # EMA with weight 0.3: responsive to load changes, stable under
        # alternating fill levels.
        self.recent_block_duration = (
            0.7 * self.recent_block_duration + 0.3 * duration
        )
        on_committed = self._on_committed
        shard_id = self.shard_id
        for entry in batch:
            on_committed(shard_id, entry)
        if self._mempool and not (self._busy or self.paused):
            self._start_block()
