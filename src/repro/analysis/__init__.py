"""Post-processing shared by the experiments.

- :mod:`repro.analysis.timeseries` - time-binned commit counts (Fig. 5),
  per-shard queue extrema (Fig. 6) and max/min ratios (Fig. 7).
- :mod:`repro.analysis.distribution` - percentiles and CDFs (Fig. 10).
- :mod:`repro.analysis.tables` - plain-text table rendering used by every
  experiment runner to print paper-style rows.
"""

from repro.analysis.distribution import cdf_points, fraction_below, percentile
from repro.analysis.report import compare_results, summarize_result
from repro.analysis.tables import format_table
from repro.analysis.timeseries import (
    bin_counts,
    queue_extrema_series,
    queue_ratio_series,
)

__all__ = [
    "bin_counts",
    "cdf_points",
    "compare_results",
    "format_table",
    "fraction_below",
    "percentile",
    "queue_extrema_series",
    "queue_ratio_series",
    "summarize_result",
]
