"""Experiment runners: one per paper table/figure.

Each module exposes a ``run(scale=...)`` function returning structured
results and a ``main()`` that prints them paper-style. The shared sweep
machinery and the in-process result cache live in
:mod:`repro.experiments.runner`; scale presets (tiny / default / paper)
in :mod:`repro.experiments.configs`.

| Paper artifact | Module |
|----------------|--------|
| Table I        | :mod:`repro.experiments.table1` |
| Table II       | :mod:`repro.experiments.table2` |
| Fig. 2a-2c     | :mod:`repro.experiments.fig2` |
| Fig. 3         | :mod:`repro.experiments.fig3` |
| Fig. 4a-4b     | :mod:`repro.experiments.fig4` |
| Fig. 5         | :mod:`repro.experiments.fig5` |
| Fig. 6         | :mod:`repro.experiments.fig6` |
| Fig. 7         | :mod:`repro.experiments.fig7` |
| Fig. 8a-8b     | :mod:`repro.experiments.fig8` |
| Fig. 9a-9b     | :mod:`repro.experiments.fig9` |
| Fig. 10        | :mod:`repro.experiments.fig10` |
| Fig. 11        | :mod:`repro.experiments.fig11` |
"""

from repro.experiments.configs import SCALES, ExperimentScale, get_scale

__all__ = ["SCALES", "ExperimentScale", "get_scale"]
