"""Simulator event-loop throughput benchmark - fast loop vs seed loop.

Measures events/second of the typed-event simulator
(:func:`repro.simulator.engine.run_simulation`) against the preserved
seed loop (:func:`repro.simulator._seed_reference.run_simulation_seed`)
on Fig. 3-scale configurations, and asserts both produce *bit-identical*
:class:`~repro.simulator.engine.SimulationResult` series in the same
run. Results land in ``BENCH_simulator.json``.

Lanes are end-to-end compositions of what the simulator-overhaul PR
changed:

- ``fast``: typed-event loop + the optimized issue path (cached-digest
  random placement, loop-built input shards);
- ``seed``: the seed loop + the seed issue path
  (:class:`repro.core._seed_reference.SeedOmniLedgerRandomPlacer`:
  per-field streaming digest, dict+tuple input-shard derivation).

Both lanes replay the same cached workload stream - exactly how the
experiment grid uses the simulator (Figs. 3-10 share one stream across
~140 runs), so repeated-run timings are the representative ones; the
cold first run is recorded separately in the meta block.

Methodology: lanes alternate, a full warmup round precedes timing,
``gc.collect()`` runs between repetitions, and the recorded time is the
best of ``--repeats`` both in wall-clock and CPU (process) time. The
speedup gate uses CPU time, which is robust against shared-runner
scheduling noise.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py
    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py \
        --txs 8000 --repeats 2 --check --min-speedup 1.5   # CI smoke

``--check`` enforces the acceptance gates:

- every fast/seed result pair is bit-identical (latencies, commit
  times, queue samples, counters, bandwidth);
- the fast loop clears ``--min-speedup`` x events/s over the seed loop
  at the headline configuration (the first entry of ``--configs``).
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core._seed_reference import SeedOmniLedgerRandomPlacer
from repro.core.baselines import OmniLedgerRandomPlacer
from repro.core.optchain import OptChainPlacer
from repro.experiments.configs import get_scale
from repro.experiments.runner import stream_for
from repro.simulator._seed_reference import run_simulation_seed
from repro.simulator.engine import run_simulation

#: SimulationResult fields compared for golden equivalence.
SERIES_FIELDS = (
    "n_issued",
    "n_committed",
    "n_aborted",
    "n_cross",
    "n_same_shard",
    "n_parked",
    "duration",
    "throughput",
    "latencies",
    "commit_times",
    "queue_sample_times",
    "queue_samples",
    "blocks_per_shard",
    "entries_per_shard",
    "bytes_same_shard",
    "bytes_cross",
    "bandwidth_ratio",
    "drained",
)

#: method -> (fast-lane placer factory, seed-lane placer factory)
METHOD_PLACERS = {
    "omniledger": (OmniLedgerRandomPlacer, SeedOmniLedgerRandomPlacer),
    # OptChain's internals were optimized in PR 1 (bench_placement
    # covers them); both lanes run the same placer so this row isolates
    # the event loop under latency-coupled placement.
    "optchain": (OptChainPlacer, OptChainPlacer),
}


def parse_configs(spec: str):
    """``"16:500,4:500"`` -> [(16, 500.0), (4, 500.0)]."""
    configs = []
    for part in spec.split(","):
        shards, rate = part.split(":")
        configs.append((int(shards), float(rate)))
    return configs


def measure_lanes(lanes: dict, repeats: int) -> dict:
    """Best wall / best CPU seconds per lane, lanes interleaved.

    Interleaving matters: running one lane's repeats back to back lets
    CPU frequency drift between the blocks skew the ratio; alternating
    exposes both lanes to the same conditions within each round.
    """
    best = {name: [float("inf"), float("inf")] for name in lanes}
    for _ in range(repeats):
        for name, fn in lanes.items():
            gc.collect()
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            fn()
            cpu = time.process_time() - cpu0
            wall = time.perf_counter() - wall0
            best[name][0] = min(best[name][0], wall)
            best[name][1] = min(best[name][1], cpu)
    return {name: tuple(pair) for name, pair in best.items()}


def run(args) -> int:
    scale = get_scale(args.scale)
    t0 = time.perf_counter()
    stream = stream_for(scale, args.seed)
    if args.txs and args.txs < len(stream):
        stream = stream[: args.txs]
    gen_seconds = time.perf_counter() - t0
    n_tx = len(stream)

    fast_placer, seed_placer = METHOD_PLACERS[args.method]
    results = []
    equivalences = []
    cold_runs = {}
    for n_shards, tx_rate in args.configs:
        cfg = scale.simulation(n_shards, tx_rate)
        lanes = {
            "fast": lambda: run_simulation(
                stream, fast_placer(n_shards), cfg
            ),
            "seed": lambda: run_simulation_seed(
                stream, seed_placer(n_shards), cfg
            ),
        }
        # Cold run doubles as golden-equivalence check and event count.
        wall0 = time.perf_counter()
        fast_result = lanes["fast"]()
        cold_runs[f"k{n_shards}_r{int(tx_rate)}_fast"] = round(
            time.perf_counter() - wall0, 4
        )
        seed_result = lanes["seed"]()
        identical = all(
            getattr(fast_result, field) == getattr(seed_result, field)
            for field in SERIES_FIELDS
        )
        equivalences.append(
            {
                "method": args.method,
                "n_shards": n_shards,
                "tx_rate": tx_rate,
                "n_tx": n_tx,
                "identical_series": identical,
            }
        )
        if not identical:
            diverged = [
                field
                for field in SERIES_FIELDS
                if getattr(fast_result, field)
                != getattr(seed_result, field)
            ]
            print(
                f"  !! fast != seed at k={n_shards} rate={tx_rate}: "
                f"{diverged}",
                file=sys.stderr,
            )
        # n_issued.. events: both lanes processed the same event count;
        # derive it from a dedicated counting run on the fast lane.
        events = probe_event_count(stream, fast_placer(n_shards), cfg)
        # One more warmup round each, then interleaved timed repeats.
        for fn in lanes.values():
            fn()
        measured = measure_lanes(lanes, args.repeats)
        for lane_name, (wall, cpu) in measured.items():
            results.append(
                {
                    "lane": lane_name,
                    "method": args.method,
                    "n_shards": n_shards,
                    "tx_rate": tx_rate,
                    "n_tx": n_tx,
                    "events": events,
                    "wall_seconds": round(wall, 4),
                    "cpu_seconds": round(cpu, 4),
                    "events_per_s_wall": round(events / wall, 1),
                    "events_per_s_cpu": round(events / cpu, 1),
                }
            )
        fast_cpu = measured["fast"][1]
        seed_cpu = measured["seed"][1]
        speedup = seed_cpu / fast_cpu
        for row in results:
            if (
                row["lane"] == "fast"
                and row["n_shards"] == n_shards
                and row["tx_rate"] == tx_rate
            ):
                row["speedup_vs_seed"] = round(speedup, 2)
        print(
            f"  {args.method} k={n_shards:<3} rate={tx_rate:<6} "
            f"fast {events / fast_cpu:>12,.0f} ev/s "
            f"seed {events / seed_cpu:>12,.0f} ev/s "
            f"speedup {speedup:.2f}x "
            f"{'(identical)' if identical else '(DIVERGED)'}",
            flush=True,
        )

    payload = {
        "meta": {
            "scale": scale.name,
            "method": args.method,
            "n_tx": n_tx,
            "repeats": args.repeats,
            "seed": args.seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "stream_generation_seconds": round(gen_seconds, 2),
            "cold_first_run_seconds": cold_runs,
            "timing": (
                "best-of-repeats, lanes alternated, gc.collect between "
                "reps; speedup gate uses cpu_seconds. Warm stream: the "
                "experiment grid replays one cached stream through many "
                "runs, so warm-digest timings are the representative "
                "ones; cold_first_run_seconds records the uncached run."
            ),
        },
        "results": results,
        "golden_equivalence": equivalences,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if args.check:
        failures = check(payload, args)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("all checks passed")
    return 0


def probe_event_count(stream, placer, cfg) -> int:
    """Count processed events for one configuration (one extra run)."""
    import repro.simulator.engine as engine_module

    counts = []
    original = engine_module.EventQueue

    class CountingQueue(original):
        def __init__(self):
            super().__init__()
            counts.append(self)

    engine_module.EventQueue = CountingQueue
    try:
        run_simulation(stream, placer, cfg)
    finally:
        engine_module.EventQueue = original
    return counts[0].n_processed


def check(payload, args):
    """The acceptance gates; returns a list of failure messages."""
    failures = []
    for eq in payload["golden_equivalence"]:
        if not eq["identical_series"]:
            failures.append(
                f"fast loop diverges from seed loop at "
                f"k={eq['n_shards']} rate={eq['tx_rate']}"
            )
    headline_shards, headline_rate = args.configs[0]
    fast = seed = None
    for row in payload["results"]:
        if (
            row["n_shards"] == headline_shards
            and row["tx_rate"] == headline_rate
        ):
            if row["lane"] == "fast":
                fast = row
            else:
                seed = row
    if fast and seed:
        speedup = seed["cpu_seconds"] / fast["cpu_seconds"]
        if speedup < args.min_speedup:
            failures.append(
                f"event-loop speedup at k={headline_shards} "
                f"rate={headline_rate} is {speedup:.2f}x "
                f"< {args.min_speedup}x"
            )
    else:
        failures.append("headline configuration missing from results")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--txs",
        type=int,
        default=20_000,
        help="stream prefix length (0 = the scale's full workload)",
    )
    parser.add_argument("--scale", default="default")
    parser.add_argument("--method", default="omniledger",
                        choices=sorted(METHOD_PLACERS))
    parser.add_argument(
        "--configs",
        type=parse_configs,
        default=((16, 500.0), (4, 500.0)),
        help="comma-separated shard:rate pairs; first is the headline "
        "gate (default '16:500,4:500')",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
        ),
    )
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
