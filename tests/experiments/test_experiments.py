"""Integration tests for the experiment runners at tiny scale.

These verify mechanics (runners produce well-formed results, tables
render, caches work) - shape assertions against the paper live in the
benchmarks, which run the same code on the same scale.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import get_scale
from repro.experiments.configs import SCALES
from repro.experiments import (
    fig2,
    fig4,
    fig5,
    fig7,
    fig10,
    table1,
    table2,
)
from repro.experiments.runner import (
    build_placer,
    clear_caches,
    metis_assignment,
    simulate,
    stream_for,
    tan_for,
)


@pytest.fixture(scope="module")
def tiny():
    return get_scale("tiny")


class TestConfigs:
    def test_scales_registered(self):
        assert set(SCALES) == {"tiny", "default", "paper"}

    def test_get_scale_unknown(self):
        with pytest.raises(ConfigurationError):
            get_scale("huge")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert get_scale().name == "tiny"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert get_scale("default").name == "default"

    def test_simulation_factory(self, tiny):
        config = tiny.simulation(4, 100.0)
        assert config.n_shards == 4
        assert config.tx_rate == 100.0
        assert config.block_capacity == tiny.block_capacity

    def test_scales_internally_consistent(self):
        for scale in SCALES.values():
            assert scale.warm_prefix + 1 <= scale.n_transactions
            assert scale.tx_rates == tuple(sorted(scale.tx_rates))
            assert scale.shard_counts == tuple(sorted(scale.shard_counts))
            scale.generator.validate()
            scale.simulation(
                max(scale.shard_counts), max(scale.tx_rates)
            ).validate()


class TestRunnerCaches:
    def test_stream_cached(self, tiny):
        a = stream_for(tiny)
        b = stream_for(tiny)
        assert a is b
        assert len(a) == tiny.n_transactions

    def test_tan_cached(self, tiny):
        assert tan_for(tiny) is tan_for(tiny)

    def test_metis_cached(self, tiny):
        assert metis_assignment(tiny, 4) is metis_assignment(tiny, 4)

    def test_simulate_cached(self, tiny):
        a = simulate(tiny, "omniledger", 4, min(tiny.tx_rates))
        b = simulate(tiny, "omniledger", 4, min(tiny.tx_rates))
        assert a is b

    def test_clear_caches(self, tiny):
        a = stream_for(tiny)
        clear_caches()
        b = stream_for(tiny)
        assert a is not b
        assert a == b  # deterministic regeneration

    def test_build_placer_unknown(self, tiny):
        with pytest.raises(ConfigurationError):
            build_placer("bogus", 4, tiny)


class TestStaticExperiments:
    def test_table1_structure(self, tiny):
        results = table1.run(tiny)
        assert set(results) == set(tiny.table_shard_counts)
        for row in results.values():
            assert set(row) == {"metis", "greedy", "omniledger", "t2s"}
            assert all(0.0 <= v <= 1.0 for v in row.values())
        text = table1.as_table(results)
        assert "Table I" in text

    def test_table2_structure(self, tiny):
        results = table2.run(tiny)
        window = min(
            tiny.warm_window, tiny.n_transactions - tiny.warm_prefix
        )
        for row in results.values():
            assert all(0 <= v <= window for v in row.values())
        text = table2.as_table(results, window)
        assert "Table II" in text

    def test_fig2_structure(self, tiny):
        result = fig2.run(tiny)
        assert result.summary.n_nodes == tiny.n_transactions
        assert result.degree_timeline
        assert result.windowed_degree
        assert "Fig. 2" in fig2.as_table(result)

    def test_table3_structure(self, tiny):
        from repro.experiments import table3

        rows = table3.run(tiny)
        assert rows["Transactions per block"] == "100"
        text = table3.as_table(rows, "tiny")
        assert "Table III" in text
        assert "paper" in text


class TestSimulationExperiments:
    def test_fig4_series(self, tiny):
        cells = fig4.run(tiny)
        series = fig4.throughput_at_max_shards(cells)
        assert set(series) == {"optchain", "omniledger", "greedy", "metis"}
        for points in series.values():
            assert len(points) == len(tiny.tx_rates)
        best = fig4.max_throughput(cells)
        assert all(v > 0 for v in best.values())

    def test_fig5_conservation(self, tiny):
        histograms = fig5.run(tiny)
        for histogram in histograms.values():
            assert sum(c for _, c in histogram) == tiny.n_transactions

    def test_fig7_summaries(self, tiny):
        series = fig7.run(tiny)
        for points in series.values():
            stats = fig7.summarize(points)
            assert stats["median_ratio"] >= 1.0
            assert 0.0 <= stats["fraction_idle_shard"] <= 1.0

    def test_fig10_thresholds(self, tiny):
        samples = fig10.run(tiny)
        fractions = fig10.within(samples, 1e9)
        assert all(f == 1.0 for f in fractions.values())
        fractions = fig10.within(samples, 0.0)
        assert all(f == 0.0 for f in fractions.values())
