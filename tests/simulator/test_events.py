"""Unit tests for the event queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue


class TestScheduling:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda: order.append("b"))
        queue.schedule(1.0, lambda: order.append("a"))
        queue.schedule(3.0, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        queue = EventQueue()
        order = []
        for tag in range(5):
            queue.schedule(1.0, lambda tag=tag: order.append(tag))
        queue.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        queue = EventQueue()
        times = []
        queue.schedule(1.5, lambda: times.append(queue.now))
        queue.schedule(4.0, lambda: times.append(queue.now))
        queue.run()
        assert times == [1.5, 4.0]
        assert queue.now == 4.0

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule_at(2.0, lambda: None)

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        seen = []

        def chain(n):
            seen.append(queue.now)
            if n > 0:
                queue.schedule(1.0, lambda: chain(n - 1))

        queue.schedule(0.0, lambda: chain(3))
        queue.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]


class TestRunBounds:
    def test_until_leaves_later_events(self):
        queue = EventQueue()
        ran = []
        queue.schedule(1.0, lambda: ran.append(1))
        queue.schedule(10.0, lambda: ran.append(10))
        queue.run(until=5.0)
        assert ran == [1]
        assert queue.now == 5.0
        assert queue.n_pending == 1

    def test_max_events(self):
        queue = EventQueue()
        ran = []
        for i in range(10):
            queue.schedule(float(i), lambda i=i: ran.append(i))
        queue.run(max_events=3)
        assert ran == [0, 1, 2]

    def test_counters(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.n_pending == 2
        queue.run()
        assert queue.n_processed == 2
        assert queue.n_pending == 0

    def test_step_on_empty(self):
        assert EventQueue().step() is False
