"""Latency distribution helpers (percentiles and CDFs)."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Share of values strictly below ``threshold``.

    This is how the paper reads Fig. 10 ("70% of transactions are
    processed within 10 seconds with OptChain").
    """
    if not values:
        return 0.0
    return sum(1 for value in values if value < threshold) / len(values)


def cdf_points(
    values: Sequence[float], n_points: int = 100
) -> list[tuple[float, float]]:
    """Empirical CDF sampled at ``n_points`` evenly spaced quantiles.

    Returns ``(value, cumulative_fraction)`` pairs suitable for plotting
    Fig. 10 without carrying the full raw sample.
    """
    if n_points <= 0:
        raise ConfigurationError(f"n_points must be > 0, got {n_points}")
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points = []
    for i in range(1, n_points + 1):
        fraction = i / n_points
        index = min(n - 1, max(0, int(fraction * n) - 1))
        points.append((ordered[index], fraction))
    return points
