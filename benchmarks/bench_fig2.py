"""Regenerates Fig. 2: TaN network statistics.

Shape asserted against the paper's §IV-A: power-law-ish degree tails
(most nodes with in-degree < 3, out-degree < 10) and a visible
average-degree bump across the flooding window.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig2


def test_fig2(benchmark, scale):
    result = run_once(benchmark, lambda: fig2.run(scale))
    print()
    print(fig2.as_table(result))
    summary = result.summary
    assert summary.fraction_in_degree_below_3 > 0.80
    assert summary.fraction_out_degree_below_10 > 0.90
    assert summary.n_coinbase > 0
    # Degree histograms are heavy at the head, thin at the tail.
    head = sum(
        count
        for degree, count in result.in_degree_histogram.items()
        if degree <= 2
    )
    assert head / summary.n_nodes > 0.8
    # Cumulative curves are monotone and end at 1.
    for series in (result.in_cumulative, result.out_cumulative):
        fractions = [f for _, f in series]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert abs(fractions[-1] - 1.0) < 1e-9
