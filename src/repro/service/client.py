"""Clients for the placement service: blocking and asyncio.

:class:`PlacementClient` is the simple blocking client - one socket,
one request in flight, good for scripts, ops, and tests.

:class:`AsyncPlacementClient` pipelines: requests are written as they
are made and a background reader task resolves responses by ``id``, so
an open-loop load generator can keep the wire full without waiting for
each response (see :mod:`repro.service.loadgen`).

Both speak the NDJSON protocol of :mod:`repro.service.wire` and raise
:class:`~repro.errors.ServiceError` subclasses on failure responses:
``code: "protocol"`` maps to :class:`~repro.errors.ProtocolError`,
everything else to :class:`~repro.errors.EngineError`.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Sequence

from repro.errors import EngineError, ProtocolError, ServiceError
from repro.service.wire import encode_batch
from repro.utxo.transaction import Transaction


def _raise_for(response: dict) -> dict:
    if not isinstance(response, dict):
        raise ServiceError(f"malformed server response: {response!r}")
    if response.get("ok"):
        return response
    error = response.get("error", "unknown server error")
    if response.get("code") == "protocol":
        raise ProtocolError(error)
    raise EngineError(error)


class PlacementClient:
    """Blocking client; usable as a context manager."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 9171, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing ----------------------------------------------------------

    def request(self, message: dict[str, Any]) -> dict:
        """Send one request and wait for its response (raises on error)."""
        self._next_id += 1
        message = dict(message, id=self._next_id)
        self._file.write(
            json.dumps(message, separators=(",", ":")).encode() + b"\n"
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        response = json.loads(line)
        if response.get("id") != self._next_id:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        return _raise_for(response)

    # -- operations --------------------------------------------------------

    def place(
        self, txs: Sequence[Transaction], full_outputs: bool = False
    ) -> list[int]:
        """Place a contiguous batch; returns its shard assignment."""
        response = self.request(
            {"op": "place", "txs": encode_batch(txs, full_outputs)}
        )
        return response["shards"]

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def checkpoint(self, path: "str | None" = None) -> dict:
        message: dict[str, Any] = {"op": "checkpoint"}
        if path is not None:
            message["path"] = str(path)
        return self.request(message)

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "PlacementClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncPlacementClient:
    """Pipelining asyncio client.

    Create with :meth:`connect`; every public operation may be issued
    concurrently from many tasks over one connection.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._inflight: dict[int, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 9171,
        limit: int = 8 * 1024 * 1024,
    ) -> "AsyncPlacementClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=limit
        )
        return cls(reader, writer)

    # -- plumbing ----------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._inflight.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError, ValueError):
            pass
        finally:
            # Mark closed *before* failing in-flight futures, so a
            # submit() racing this shutdown cannot register a future
            # that would never resolve.
            self._closed = True
            for future in self._inflight.values():
                if not future.done():
                    future.set_exception(
                        ServiceError("connection closed before response")
                    )
            self._inflight.clear()

    def submit(self, message: dict[str, Any]) -> "asyncio.Future[dict]":
        """Write a request now; returns a future for its raw response.

        The open-loop load generator uses this directly to decouple the
        send schedule from response arrival.
        """
        self._next_id += 1
        request_id = self._next_id
        message = dict(message, id=request_id)
        future: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )
        if self._closed:
            # The reader already drained _inflight; writing to a dead
            # transport would not raise, so the future would hang
            # forever if we registered it.
            future.set_exception(
                ServiceError("connection closed before response")
            )
            return future
        self._inflight[request_id] = future
        self._writer.write(
            json.dumps(message, separators=(",", ":")).encode() + b"\n"
        )
        return future

    async def request(self, message: dict[str, Any]) -> dict:
        future = self.submit(message)
        await self._writer.drain()
        return _raise_for(await future)

    # -- operations --------------------------------------------------------

    async def place(
        self, txs: Sequence[Transaction], full_outputs: bool = False
    ) -> list[int]:
        response = await self.request(
            {"op": "place", "txs": encode_batch(txs, full_outputs)}
        )
        return response["shards"]

    def place_nowait(
        self, txs: Sequence[Transaction], full_outputs: bool = False
    ) -> "asyncio.Future[dict]":
        """Pipelined place: returns the raw-response future."""
        return self.submit(
            {"op": "place", "txs": encode_batch(txs, full_outputs)}
        )

    async def stats(self) -> dict:
        return (await self.request({"op": "stats"}))["stats"]

    async def checkpoint(self, path: "str | None" = None) -> dict:
        message: dict[str, Any] = {"op": "checkpoint"}
        if path is not None:
            message["path"] = str(path)
        return await self.request(message)

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def shutdown(self) -> None:
        await self.request({"op": "shutdown"})

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass
