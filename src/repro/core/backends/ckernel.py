"""On-demand compilation and ctypes binding of the fused C kernel.

The kernel ships as C source (``_kernel.c``) and is compiled with the
host ``cc`` the first time a numpy-backed placer needs it, cached under
``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro-kernels``) keyed by
the SHA-256 of the source plus the compile flags, so upgrades rebuild
and concurrent worker processes race benignly (build to a temp file,
``os.replace`` into place). Any failure - no compiler, sandboxed cache
dir, missing libm - is recorded and surfaced through
:func:`kernel_unavailable_reason`; the numpy backend then refuses (or
the ``auto`` backend falls back to pure python) instead of crashing at
import time.

Floating-point contract: the kernel must execute the exact double
operations the pure-python fused loop performs, so fused
multiply-adds and fast-math reassociation are disabled explicitly.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

_SOURCE = Path(__file__).with_name("_kernel.c")

# -O2 without -ffast-math never reassociates floating point, but FMA
# contraction is a default on some targets; forbid it outright.
_CFLAGS = (
    "-O2",
    "-fPIC",
    "-shared",
    "-ffp-contract=off",
    "-fno-fast-math",
)

KERN_OK = 0
KERN_INVALID_INPUT = 1
KERN_CAPACITY = 2
KERN_INTERNAL = 3

# validate_batch return codes (VALID_* in _kernel.c)
VALID_OK = 0
VALID_UNKNOWN = 1
VALID_SPENT = 2
VALID_FUTURE = 3
VALID_FALLBACK = 4

_c_double_p = ctypes.POINTER(ctypes.c_double)
_c_int64_p = ctypes.POINTER(ctypes.c_int64)
_c_int32_p = ctypes.POINTER(ctypes.c_int32)
_c_uint8_p = ctypes.POINTER(ctypes.c_uint8)


class KState(ctypes.Structure):
    """Mirror of the ``KState`` struct in ``_kernel.c`` (same order)."""

    _fields_ = [
        # configuration
        ("n_shards", ctypes.c_int64),
        ("alpha", ctypes.c_double),
        ("one_minus_alpha", ctypes.c_double),
        ("epsilon", ctypes.c_double),
        ("weight", ctypes.c_double),
        ("support_cap", ctypes.c_int64),
        ("has_scale", ctypes.c_int32),
        ("has_eps", ctypes.c_int32),
        ("decay", ctypes.c_double),
        ("base_verify", ctypes.c_double),
        ("base_total", ctypes.c_double),
        ("comm_expected", ctypes.c_double),
        ("block", ctypes.c_double),
        ("renorm_span", ctypes.c_int64),
        ("compact_limit", ctypes.c_int64),
        # proxy state
        ("scaled", _c_double_p),
        ("heap_vals", _c_double_p),
        ("heap_idx", _c_int64_p),
        ("heap_len", ctypes.c_int64),
        ("heap_cap", ctypes.c_int64),
        ("zero_heap", _c_int64_p),
        ("zero_len", ctypes.c_int64),
        ("zero_cap", ctypes.c_int64),
        ("step", ctypes.c_int64),
        ("offset", ctypes.c_int64),
        ("pscale", ctypes.c_double),
        # strategy state
        ("strat_sizes", _c_int64_p),
        ("min_size_val", ctypes.c_int64),
        ("min_size_count", ctypes.c_int64),
        ("max_size_val", ctypes.c_int64),
        ("scorer_sizes", _c_int64_p),
        # scorer per-txid state
        ("pmat", _c_double_p),
        ("live", _c_uint8_p),
        ("min_mass", _c_double_p),
        ("spender_count", _c_int64_p),
        ("assignment", _c_int64_p),
        ("n_placed", ctypes.c_int64),
        ("rows_cap", ctypes.c_int64),
        ("dropped_mass", ctypes.c_double),
        ("truncated_vectors", ctypes.c_int64),
        # batch input
        ("n_tx", ctypes.c_int64),
        ("parents", _c_int64_p),
        ("par_off", _c_int64_p),
        ("n_outpoints", _c_int32_p),
        # scratch
        ("raw", _c_double_p),
        ("touched", _c_int64_p),
        ("shard_mark", _c_int64_p),
        ("excl_mark", _c_int64_p),
        ("sort_mass", _c_double_p),
        ("sort_shard", _c_int64_p),
        ("pb_ids", _c_int64_p),
        ("pb_vals", _c_double_p),
        ("pb_idx", _c_int64_p),
        # results
        ("n_done", ctypes.c_int64),
        ("error_txid", ctypes.c_int64),
        ("error_parent", ctypes.c_int64),
        # raw-parents mode
        ("raw_parents", ctypes.c_int32),
        ("_pad0", ctypes.c_int32),
        ("dedup", _c_int64_p),
        ("dedup_cap", ctypes.c_int64),
    ]


class VState(ctypes.Structure):
    """Mirror of the ``VState`` struct in ``_kernel.c`` (same order)."""

    _fields_ = [
        # batch
        ("n_tx", ctypes.c_int64),
        ("first_txid", ctypes.c_int64),
        ("horizon_start", ctypes.c_int64),
        ("parents", _c_int64_p),
        ("indexes", _c_int32_p),
        ("in_off", _c_int64_p),
        ("n_outputs", _c_int32_p),
        # mask store
        ("masks", _c_int64_p),
        # result buffers
        ("undo_txid", _c_int64_p),
        ("undo_mask", _c_int64_p),
        ("released", _c_int64_p),
        # results
        ("n_undo", ctypes.c_int64),
        ("n_released", ctypes.c_int64),
        ("tracked_delta", ctypes.c_int64),
        ("error_txid", ctypes.c_int64),
        ("error_parent", ctypes.c_int64),
        ("error_index", ctypes.c_int64),
    ]


_lib: ctypes.CDLL | None = None
_load_attempted = False
_unavailable_reason: str | None = None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def _find_compiler() -> str | None:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _build(source: Path, cc: str, out_path: Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=out_path.parent, prefix=out_path.stem, suffix=".tmp.so"
    )
    os.close(fd)
    try:
        subprocess.run(
            [cc, *_CFLAGS, "-o", tmp_name, str(source), "-lm"],
            check=True,
            capture_output=True,
            text=True,
            timeout=120,
        )
        os.replace(tmp_name, out_path)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)


def _load() -> ctypes.CDLL:
    if os.environ.get("REPRO_KERNEL_DISABLE"):
        raise RuntimeError("kernel disabled via REPRO_KERNEL_DISABLE")
    source_bytes = _SOURCE.read_bytes()
    digest = hashlib.sha256(
        source_bytes + "\x00".join(_CFLAGS).encode()
    ).hexdigest()[:24]
    out_path = _cache_dir() / f"placement-{digest}.so"
    if not out_path.exists():
        cc = _find_compiler()
        if cc is None:
            raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
        try:
            _build(_SOURCE, cc, out_path)
        except subprocess.CalledProcessError as exc:
            raise RuntimeError(
                f"kernel compilation failed: {exc.stderr.strip()[:500]}"
            ) from exc
    lib = ctypes.CDLL(str(out_path))
    lib.place_batch.argtypes = [ctypes.POINTER(KState)]
    lib.place_batch.restype = ctypes.c_int
    lib.validate_batch.argtypes = [ctypes.POINTER(VState)]
    lib.validate_batch.restype = ctypes.c_int
    return lib


def load_kernel() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` with a recorded reason."""
    global _lib, _load_attempted, _unavailable_reason
    if not _load_attempted:
        _load_attempted = True
        try:
            _lib = _load()
        except Exception as exc:  # noqa: BLE001 - reason is surfaced
            _unavailable_reason = str(exc)
            _lib = None
    return _lib


def kernel_unavailable_reason() -> str | None:
    """Why :func:`load_kernel` returned ``None`` (``None`` if loaded)."""
    load_kernel()
    return _unavailable_reason
