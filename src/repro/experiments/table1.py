"""Table I - percentage of cross-TXs when running from scratch.

Paper (Bitcoin, first 10M txs)::

    k   Metis   Greedy  Omniledger  T2S-based
    4   1.66%   24.62%  80.82%      9.28%
    8   3.09%   27.02%  90.33%      12.52%
    16  4.70%   28.14%  94.87%      15.73%
    32  6.91%   28.69%  97.09%      18.94%
    64  9.91%   28.97%  98.18%      21.65%

Expected shape: Metis lowest, then T2S, then Greedy, with random
(OmniLedger) placement near the theoretical ``1 - 1/k`` upper region;
all growing with k.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import build_placer, metis_assignment, stream_for
from repro.partition.quality import cross_shard_fraction


def run(scale: ExperimentScale, seed: int = 1) -> dict[int, dict[str, float]]:
    """Cross-TX fraction per (shard count, method), empty-shards start."""
    stream = stream_for(scale, seed)
    n = len(stream)
    results: dict[int, dict[str, float]] = {}
    for n_shards in scale.table_shard_counts:
        row: dict[str, float] = {}
        row["metis"] = cross_shard_fraction(
            stream, metis_assignment(scale, n_shards, seed)
        )
        for method in ("greedy", "omniledger", "t2s"):
            placer = build_placer(
                method, n_shards, scale, expected_total=n, seed=seed
            )
            assignment = placer.place_stream(stream)
            row[method] = cross_shard_fraction(stream, assignment)
        results[n_shards] = row
    return results


def as_table(results: dict[int, dict[str, float]]) -> str:
    """Render the paper-style table."""
    rows = [
        [
            k,
            f"{row['metis']:.2%}",
            f"{row['greedy']:.2%}",
            f"{row['omniledger']:.2%}",
            f"{row['t2s']:.2%}",
        ]
        for k, row in sorted(results.items())
    ]
    return format_table(
        ["k", "Metis", "Greedy", "Omniledger", "T2S-based"],
        rows,
        title="Table I: percentage of cross-TXs when running from scratch",
    )


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
