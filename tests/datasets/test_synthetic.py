"""Unit tests for the synthetic Bitcoin-like generator."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import (
    BitcoinLikeGenerator,
    GeneratorConfig,
    synthetic_stream,
)
from repro.errors import ConfigurationError
from repro.txgraph.topo import is_topological_stream
from repro.utxo.utxoset import UTXOSet


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_wallets": 1},
            {"coinbase_interval": 0},
            {"bootstrap_coinbase": 0},
            {"max_inputs": 0},
            {"batch_payment_prob": 1.5},
            {"consolidation_prob": -0.1},
            {"tx_rate": 0},
            {"flood_start": -1},
            {"fee": -1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(**kwargs).validate()

    def test_default_config_valid(self):
        GeneratorConfig().validate()


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = synthetic_stream(500, seed=42)
        b = synthetic_stream(500, seed=42)
        assert a == b

    def test_different_seed_different_stream(self):
        a = synthetic_stream(500, seed=1)
        b = synthetic_stream(500, seed=2)
        assert a != b

    def test_streaming_matches_batch(self, generator):
        first = generator.generate(300)
        second = generator.generate(200)
        combined = BitcoinLikeGenerator(
            config=generator.config, seed=11
        ).generate(500)
        assert first + second == combined


class TestValidity:
    def test_ids_dense_and_ordered(self, small_stream):
        assert [tx.txid for tx in small_stream] == list(
            range(len(small_stream))
        )

    def test_stream_topological(self, small_stream):
        assert is_topological_stream(small_stream)

    def test_no_double_spends(self, small_stream):
        utxos = UTXOSet()
        utxos.apply_all(small_stream)  # raises on any violation
        assert utxos.n_applied == len(small_stream)

    def test_timestamps_monotone(self, small_stream):
        times = [tx.timestamp for tx in small_stream]
        assert times == sorted(times)

    def test_value_conservation(self, small_stream):
        """Outputs + fee == inputs for every non-coinbase transaction."""
        output_values: dict[tuple[int, int], int] = {}
        for tx in small_stream:
            for index, output in enumerate(tx.outputs):
                output_values[(tx.txid, index)] = output.value
        for tx in small_stream:
            if tx.is_coinbase:
                continue
            total_in = sum(
                output_values[(o.txid, o.index)] for o in tx.inputs
            )
            assert total_in == tx.total_output_value + tx.fee
            assert tx.fee >= 0


class TestShape:
    def test_bootstrap_is_coinbase(self, small_stream):
        bootstrap = 20  # SMALL_CONFIG.bootstrap_coinbase
        assert all(tx.is_coinbase for tx in small_stream[:bootstrap])

    def test_coinbase_cadence(self, small_stream):
        interval = 100  # SMALL_CONFIG.coinbase_interval
        for txid in range(0, len(small_stream), interval):
            assert small_stream[txid].is_coinbase

    def test_most_transactions_not_coinbase(self, small_stream):
        coinbase = sum(1 for tx in small_stream if tx.is_coinbase)
        assert coinbase < 0.05 * len(small_stream)

    def test_flood_window_has_high_fanin(self):
        config = GeneratorConfig(
            n_wallets=500,
            coinbase_interval=100,
            bootstrap_coinbase=50,
            flood_start=3_000,
            flood_length=200,
            flood_inputs=15,
        )
        stream = BitcoinLikeGenerator(config=config, seed=5).generate(4_000)
        window = [
            tx
            for tx in stream[3_000:3_200]
            if not tx.is_coinbase and tx.inputs
        ]
        normal = [
            tx
            for tx in stream[1_000:2_000]
            if not tx.is_coinbase and tx.inputs
        ]
        avg_window = sum(len(t.inputs) for t in window) / len(window)
        avg_normal = sum(len(t.inputs) for t in normal) / len(normal)
        assert avg_window > 2 * avg_normal

    def test_batch_payments_present(self, medium_stream):
        assert any(len(tx.outputs) >= 5 for tx in medium_stream)

    def test_wallet_locality_creates_edges(self, medium_stream):
        """Non-coinbase transactions usually have at least one input from
        a recent ancestor - the locality property placement exploits."""
        spends = [tx for tx in medium_stream if not tx.is_coinbase]
        recent = sum(
            1
            for tx in spends
            if any(tx.txid - p.txid < 5_000 for p in tx.inputs)
        )
        assert recent / len(spends) > 0.5

    def test_negative_count_rejected(self, generator):
        with pytest.raises(ConfigurationError):
            list(generator.stream(-1))
