"""OptChain - Algorithm 1 of the paper.

For each arriving transaction ``u``:

1. compute the T2S scores ``p(u)`` incrementally (§IV-B);
2. compute the L2S scores ``E(j)`` from the current per-shard latency
   models (§IV-C);
3. place ``u`` into ``argmax_j p(u)[j] - 0.01 * E(j)`` (Temporal Fitness);
4. update ``p'(u)[chosen] += alpha``.

The latency models come from whoever can observe the shards. Inside the
simulator that is a live :class:`~repro.simulator.metrics.LatencyObserver`
fed by real queue lengths and consensus times. Outside a simulation
(static placement runs like Tables I/II) there are no shards to observe,
so :class:`LoadProxyLatencyProvider` models each shard's load from the
placer's own recent placements - an exponentially decayed arrival window
standing in for the queue a wallet would observe. With no provider at
all, OptChain degrades to pure T2S placement exactly as the paper's
"T2S-based" method (the L2S term is constant across shards).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.core.fitness import PAPER_LATENCY_WEIGHT, TemporalFitness
from repro.core.l2s import L2SEstimator, ShardLatencyModel
from repro.core.placement import PlacementStrategy
from repro.core.t2s import T2SScorer
from repro.errors import ConfigurationError
from repro.utxo.transaction import Transaction

#: Returns one latency model per shard; called once per placement.
LatencyProvider = Callable[[], Sequence[ShardLatencyModel]]


class LoadProxyLatencyProvider:
    """Latency models derived from the placer's own placement history.

    Each shard's *pending load* is an exponentially decayed count of the
    transactions recently placed there: after each placement the load of
    the chosen shard grows by one and every load decays by
    ``exp(-1/window)``. The verification rate then scales inversely with
    the load (a queue of ``q`` transactions takes about
    ``(1 + q/block) * consensus_time``), matching how the paper estimates
    ``1/lambda_v`` "from observation of recent consensus time of shard i
    and its current queue size".
    """

    def __init__(
        self,
        n_shards: int,
        window: float = 2_000.0,
        base_verify_time: float = 5.0,
        base_comm_time: float = 0.1,
        block_capacity: int = 2_000,
    ) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        if window <= 0 or base_verify_time <= 0 or base_comm_time <= 0:
            raise ConfigurationError(
                "window, base_verify_time, base_comm_time must be > 0"
            )
        if block_capacity <= 0:
            raise ConfigurationError(
                f"block_capacity must be > 0, got {block_capacity}"
            )
        self._loads = [0.0] * n_shards
        self._decay = math.exp(-1.0 / window)
        self._base_verify = base_verify_time
        self._base_comm = base_comm_time
        self._block = block_capacity

    @property
    def loads(self) -> list[float]:
        """Copy of the decayed per-shard loads."""
        return list(self._loads)

    def record(self, shard: int) -> None:
        """Account one placement into ``shard`` (and decay everything)."""
        for index in range(len(self._loads)):
            self._loads[index] *= self._decay
        self._loads[shard] += 1.0

    def __call__(self) -> list[ShardLatencyModel]:
        models = []
        for load in self._loads:
            verify_time = self._base_verify * (1.0 + load / self._block)
            models.append(
                ShardLatencyModel(
                    lambda_c=1.0 / self._base_comm,
                    lambda_v=1.0 / verify_time,
                )
            )
        return models


class OptChainPlacer(PlacementStrategy):
    """Algorithm 1: Temporal-Fitness placement (T2S - 0.01 * L2S)."""

    name = "optchain"

    def __init__(
        self,
        n_shards: int,
        alpha: float = 0.5,
        latency_weight: float = PAPER_LATENCY_WEIGHT,
        latency_provider: LatencyProvider | None = "proxy",  # type: ignore[assignment]
        l2s_mode: str = "shard_load",
        outdeg_mode: str = "spenders",
    ) -> None:
        super().__init__(n_shards)
        self.scorer = T2SScorer(n_shards, alpha=alpha, outdeg_mode=outdeg_mode)
        self.fitness = TemporalFitness(latency_weight=latency_weight)
        self.l2s_mode = l2s_mode
        self._proxy: LoadProxyLatencyProvider | None = None
        if latency_provider == "proxy":
            self._proxy = LoadProxyLatencyProvider(n_shards)
            self.latency_provider: LatencyProvider | None = self._proxy
        else:
            self.latency_provider = latency_provider

    def use_latency_provider(self, provider: LatencyProvider) -> None:
        """Swap in a live latency source (e.g. the simulator's observer).

        Disables the offline load proxy: with real queues observable the
        proxy's synthetic loads would double-count placements.
        """
        self._proxy = None
        self.latency_provider = provider

    def _choose(self, tx: Transaction) -> int:
        t2s_scores = self.scorer.add_transaction(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        if self.latency_provider is None:
            # No observable shards: fitness reduces to T2S with
            # lightest-shard tie-breaking.
            l2s_scores = [0.0] * self.n_shards
            shard = self._t2s_argmax(t2s_scores)
        else:
            models = self.latency_provider()
            if len(models) != self.n_shards:
                raise ConfigurationError(
                    f"latency provider returned {len(models)} models for "
                    f"{self.n_shards} shards"
                )
            estimator = L2SEstimator(models, mode=self.l2s_mode)
            l2s_scores = estimator.scores_all(self.input_shards(tx))
            shard = self.fitness.best_shard(t2s_scores, l2s_scores)
        self.scorer.place(tx.txid, shard)
        if self._proxy is not None:
            self._proxy.record(shard)
        return shard

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        self.scorer.add_transaction(tx.txid, tx.input_txids, len(tx.outputs))
        self.scorer.place(tx.txid, shard)
        if self._proxy is not None:
            self._proxy.record(shard)

    def _t2s_argmax(self, sparse: dict[int, float]) -> int:
        sizes = self.scorer.shard_sizes
        best = min(range(self.n_shards), key=sizes.__getitem__)
        best_score = sparse.get(best, 0.0)
        for shard in range(self.n_shards):
            score = sparse.get(shard, 0.0)
            if score > best_score:
                best = shard
                best_score = score
        return best
