"""Unit tests for transactions, outpoints, and the builder."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.utxo.transaction import (
    OutPoint,
    Transaction,
    TransactionBuilder,
    TxOutput,
)


def make_tx(txid=5, inputs=((1, 0), (2, 1)), outputs=((100, 7), (50, 8))):
    return Transaction(
        txid=txid,
        inputs=tuple(OutPoint(t, i) for t, i in inputs),
        outputs=tuple(TxOutput(v, a) for v, a in outputs),
    )


class TestOutPoint:
    def test_fields(self):
        op = OutPoint(3, 1)
        assert op.txid == 3
        assert op.index == 1

    def test_negative_txid_rejected(self):
        with pytest.raises(ValidationError):
            OutPoint(-1, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValidationError):
            OutPoint(0, -1)

    def test_hashable_and_equal(self):
        assert OutPoint(1, 2) == OutPoint(1, 2)
        assert len({OutPoint(1, 2), OutPoint(1, 2), OutPoint(1, 3)}) == 2


class TestTxOutput:
    def test_negative_value_rejected(self):
        with pytest.raises(ValidationError):
            TxOutput(-5)

    def test_zero_value_allowed(self):
        assert TxOutput(0).value == 0


class TestTransaction:
    def test_is_coinbase(self):
        coinbase = Transaction(txid=0, inputs=(), outputs=(TxOutput(10),))
        assert coinbase.is_coinbase
        assert not make_tx().is_coinbase

    def test_input_txids_distinct_ordered(self):
        tx = make_tx(inputs=((2, 0), (1, 0), (2, 1)))
        assert tx.input_txids == (2, 1)

    def test_total_output_value(self):
        assert make_tx().total_output_value == 150

    def test_negative_txid_rejected(self):
        with pytest.raises(ValidationError):
            make_tx(txid=-1)

    def test_bad_size_rejected(self):
        with pytest.raises(ValidationError):
            Transaction(txid=1, inputs=(), outputs=(), size_bytes=0)

    def test_negative_fee_rejected(self):
        with pytest.raises(ValidationError):
            Transaction(txid=1, inputs=(), outputs=(), fee=-1)

    def test_digest_deterministic(self):
        assert make_tx().digest() == make_tx().digest()

    def test_digest_sensitive_to_content(self):
        assert make_tx().digest() != make_tx(txid=6).digest()
        assert (
            make_tx().digest()
            != make_tx(outputs=((100, 7), (51, 8))).digest()
        )

    def test_shard_hash_in_range(self):
        for k in (1, 2, 4, 16, 64):
            assert 0 <= make_tx().shard_hash(k) < k

    def test_shard_hash_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            make_tx().shard_hash(0)

    def test_immutability(self):
        tx = make_tx()
        with pytest.raises(AttributeError):
            tx.txid = 99  # type: ignore[misc]


class TestTransactionBuilder:
    def test_builds_equivalent_transaction(self):
        built = (
            TransactionBuilder(txid=5)
            .spend(1, 0)
            .spend(2, 1)
            .pay(100, 7)
            .pay(50, 8)
            .build()
        )
        assert built == make_tx()

    def test_chaining_returns_builder(self):
        builder = TransactionBuilder(txid=1)
        assert builder.spend(0, 0) is builder
        assert builder.pay(1) is builder
