"""Exception hierarchy for the OptChain reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class. Subclasses are grouped by the
subsystem that raises them; none of them carry behaviour beyond a message,
which keeps the hierarchy boring and predictable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A user-supplied parameter is invalid or inconsistent."""


class UTXOError(ReproError):
    """Base class for UTXO-model violations."""


class UnknownOutputError(UTXOError):
    """A transaction references an output that was never created."""


class DoubleSpendError(UTXOError):
    """A transaction spends an output that is already spent."""


class ValidationError(UTXOError):
    """A transaction violates a structural validation rule."""


class GraphError(ReproError):
    """Base class for TaN / partition graph violations."""


class DuplicateNodeError(GraphError):
    """A node id was inserted into a graph twice."""


class MissingNodeError(GraphError):
    """An operation referenced a node that is not in the graph."""


class CycleError(GraphError):
    """An operation would introduce a cycle into a DAG."""


class PartitionError(ReproError):
    """A partition is malformed (not a disjoint cover, bad shard id...)."""


class PlacementError(ReproError):
    """A placement strategy produced or received invalid state."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DatasetError(ReproError):
    """A dataset file or stream is malformed."""


class ServiceError(ReproError):
    """Base class for placement-service (repro.service) failures."""


class EngineError(ServiceError):
    """A batch violates the serving contract (order, unknown/spent input)."""


class SnapshotError(ServiceError):
    """A snapshot file is missing, corrupt, or incompatible."""


class CorruptCheckpointError(SnapshotError):
    """A snapshot/delta file is torn or fails its CRC/length checks."""


class ProtocolError(ServiceError):
    """A wire request is malformed or exceeds server limits."""


class RetryLaterError(ServiceError):
    """The request targets a partition that is temporarily unavailable
    (worker recovering); the identical request may be resubmitted."""


class OverloadError(RetryLaterError):
    """The server shed the request under admission control; back off
    and resubmit."""


class ConnectionLostError(ServiceError):
    """The transport dropped before a response arrived; the request may
    or may not have been applied (resubmission is exact either way)."""
