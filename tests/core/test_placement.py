"""Tests for placement strategies: interface, baselines, OptChain."""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    GreedyPlacer,
    MetisOfflinePlacer,
    OmniLedgerRandomPlacer,
    T2SOnlyPlacer,
)
from repro.core.fitness import TemporalFitness
from repro.core.optchain import LoadProxyLatencyProvider, OptChainPlacer
from repro.core.placement import PlacementStrategy, make_placer
from repro.errors import ConfigurationError, PlacementError
from repro.partition.quality import (
    balance_ratio,
    cross_shard_fraction,
    validate_partition,
)
from repro.utxo.transaction import OutPoint, Transaction, TxOutput


def tx(txid, parents=()):
    return Transaction(
        txid=txid,
        inputs=tuple(OutPoint(p, 0) for p in parents),
        outputs=(TxOutput(1),),
    )


class TestInterface:
    def test_factory_known_names(self):
        for name in ("omniledger", "greedy", "t2s", "optchain"):
            placer = make_placer(name, 4)
            assert isinstance(placer, PlacementStrategy)
            assert placer.n_shards == 4

    def test_factory_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            make_placer("nope", 4)

    def test_factory_metis_needs_precomputed(self):
        with pytest.raises(ConfigurationError, match="precomputed"):
            make_placer("metis", 4)

    def test_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            OmniLedgerRandomPlacer(0)

    def test_out_of_order_placement_rejected(self):
        placer = OmniLedgerRandomPlacer(4)
        with pytest.raises(PlacementError):
            placer.place(tx(5))

    def test_place_records_assignment(self):
        placer = OmniLedgerRandomPlacer(4)
        shard = placer.place(tx(0))
        assert placer.shard_of(0) == shard
        assert placer.n_placed == 1
        assert placer.assignment() == [shard]

    def test_shard_sizes(self, small_stream):
        placer = OmniLedgerRandomPlacer(4)
        placer.place_stream(small_stream[:100])
        assert sum(placer.shard_sizes()) == 100


class TestOmniLedgerRandom:
    def test_deterministic_by_content(self):
        a = OmniLedgerRandomPlacer(16).place(tx(0))
        b = OmniLedgerRandomPlacer(16).place(tx(0))
        assert a == b

    def test_roughly_uniform(self, small_stream):
        placer = OmniLedgerRandomPlacer(4)
        placer.place_stream(small_stream)
        sizes = placer.shard_sizes()
        n = len(small_stream)
        assert all(abs(s - n / 4) < 0.1 * n for s in sizes)

    def test_mostly_cross_shard(self, small_stream):
        """The paper's headline: random placement makes nearly all
        multi-input transactions cross-shard (about 94% at 16 shards)."""
        placer = OmniLedgerRandomPlacer(16)
        assignment = placer.place_stream(small_stream)
        assert cross_shard_fraction(small_stream, assignment) > 0.80


class TestGreedy:
    def test_follows_single_parent(self):
        placer = GreedyPlacer(4, tie_break="first")
        placer.place(tx(0))
        parent_shard = placer.shard_of(0)
        assert placer.place(tx(1, [0])) == parent_shard

    def test_cap_respected(self, small_stream):
        placer = GreedyPlacer(4, expected_total=len(small_stream))
        placer.place_stream(small_stream)
        cap = 1.1 * (len(small_stream) // 4)
        assert max(placer.shard_sizes()) <= cap

    def test_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            GreedyPlacer(4, epsilon=-0.5)

    def test_bad_tie_break(self):
        with pytest.raises(ConfigurationError):
            GreedyPlacer(4, tie_break="bogus")

    def test_bad_expected_total(self):
        with pytest.raises(ConfigurationError):
            GreedyPlacer(4, expected_total=0)


class TestT2SOnly:
    def test_beats_omniledger(self, small_stream):
        t2s = T2SOnlyPlacer(8, expected_total=len(small_stream))
        random_placer = OmniLedgerRandomPlacer(8)
        t2s_frac = cross_shard_fraction(
            small_stream, t2s.place_stream(small_stream)
        )
        random_frac = cross_shard_fraction(
            small_stream, random_placer.place_stream(small_stream)
        )
        assert t2s_frac < 0.5 * random_frac

    def test_cap_respected(self, small_stream):
        placer = T2SOnlyPlacer(8, expected_total=len(small_stream))
        placer.place_stream(small_stream)
        assert max(placer.shard_sizes()) <= 1.1 * (len(small_stream) // 8)


class TestMetisOffline:
    def test_replays_assignment(self, small_stream):
        precomputed = [tx.txid % 4 for tx in small_stream]
        placer = MetisOfflinePlacer(4, precomputed=precomputed)
        assert placer.place_stream(small_stream) == precomputed

    def test_rejects_bad_precomputed(self):
        with pytest.raises(ConfigurationError):
            MetisOfflinePlacer(2, precomputed=[0, 5])

    def test_rejects_overflow(self):
        placer = MetisOfflinePlacer(2, precomputed=[0])
        placer.place(tx(0))
        with pytest.raises(PlacementError):
            placer.place(tx(1))


class TestOptChain:
    def test_valid_assignment(self, small_stream):
        placer = OptChainPlacer(8)
        assignment = placer.place_stream(small_stream)
        validate_partition(assignment, 8)

    def test_beats_omniledger_on_cross(self, small_stream):
        opt = OptChainPlacer(8)
        random_placer = OmniLedgerRandomPlacer(8)
        opt_frac = cross_shard_fraction(
            small_stream, opt.place_stream(small_stream)
        )
        random_frac = cross_shard_fraction(
            small_stream, random_placer.place_stream(small_stream)
        )
        assert opt_frac < 0.5 * random_frac

    def test_balances_load(self, small_stream):
        """Offline (proxy-driven) balance: the 2k-tx stream covers only
        one activity-burst window, so the bound is loose; live-queue
        balance is asserted in the simulator tests."""
        placer = OptChainPlacer(8)
        placer.place_stream(small_stream)
        assert balance_ratio(placer.assignment(), 8) < 2.2

    def test_pure_t2s_without_provider(self, small_stream):
        placer = OptChainPlacer(8, latency_provider=None)
        assignment = placer.place_stream(small_stream[:500])
        validate_partition(assignment, 8)

    def test_provider_count_mismatch_rejected(self):
        from repro.core.l2s import ShardLatencyModel

        bad_provider = lambda: [ShardLatencyModel(1.0, 1.0)]  # noqa: E731
        placer = OptChainPlacer(4, latency_provider=bad_provider)
        with pytest.raises(ConfigurationError):
            placer.place(tx(0))

    def test_load_proxy_decays(self):
        proxy = LoadProxyLatencyProvider(2, window=10.0)
        for _ in range(50):
            proxy.record(0)
        loaded = proxy()
        assert loaded[0].lambda_v < loaded[1].lambda_v
        # Shard 0 is slower (higher expected verification time).
        assert loaded[0].expected_total > loaded[1].expected_total

    def test_load_proxy_validation(self):
        with pytest.raises(ConfigurationError):
            LoadProxyLatencyProvider(0)
        with pytest.raises(ConfigurationError):
            LoadProxyLatencyProvider(2, window=0)
        with pytest.raises(ConfigurationError):
            LoadProxyLatencyProvider(2, block_capacity=0)


class TestForcePlace:
    def test_out_of_order_rejected(self):
        placer = GreedyPlacer(4)
        with pytest.raises(PlacementError):
            placer.force_place(tx(3), 0)

    def test_bad_shard_rejected(self):
        placer = GreedyPlacer(4)
        with pytest.raises(PlacementError):
            placer.force_place(tx(0), 7)

    def test_warm_start_equivalent_to_self_placement(self, small_stream):
        """Force-placing a strategy's own decisions reproduces its
        internal state: continuing the stream gives identical output.

        Uses the deterministic tie-break - with random tie-breaking the
        RNG stream position differs between the two runs by design.
        """
        kwargs = dict(
            expected_total=len(small_stream), tie_break="lightest"
        )
        reference = T2SOnlyPlacer(4, **kwargs)
        full = reference.place_stream(small_stream)

        warm = T2SOnlyPlacer(4, **kwargs)
        half = len(small_stream) // 2
        for tx_obj, shard in zip(small_stream[:half], full[:half]):
            warm.force_place(tx_obj, shard)
        for tx_obj in small_stream[half:]:
            warm.place(tx_obj)
        assert warm.assignment() == full

    def test_optchain_warm_start(self, small_stream):
        placer = OptChainPlacer(4)
        for tx_obj in small_stream[:50]:
            placer.force_place(tx_obj, tx_obj.txid % 4)
        for tx_obj in small_stream[50:100]:
            placer.place(tx_obj)
        assert placer.n_placed == 100


class TestOutdegModes:
    def test_optchain_outputs_mode_valid(self, small_stream):
        placer = OptChainPlacer(4, outdeg_mode="outputs")
        assignment = placer.place_stream(small_stream[:500])
        validate_partition(assignment, 4)

    def test_modes_can_differ(self, small_stream):
        spenders = OptChainPlacer(4, outdeg_mode="spenders").place_stream(
            small_stream
        )
        outputs = OptChainPlacer(4, outdeg_mode="outputs").place_stream(
            small_stream
        )
        # Both valid; typically they diverge somewhere on a real stream.
        assert len(spenders) == len(outputs)


class TestTemporalFitness:
    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            TemporalFitness(latency_weight=-1)

    def test_combines(self):
        fitness = TemporalFitness(latency_weight=0.01)
        combined = fitness.combine({0: 0.5}, [1.0, 2.0])
        assert combined == pytest.approx([0.49, -0.02])

    def test_best_shard_prefers_t2s(self):
        fitness = TemporalFitness(latency_weight=0.01)
        assert fitness.best_shard({1: 0.9}, [1.0, 1.0, 1.0]) == 1

    def test_latency_breaks_ties(self):
        fitness = TemporalFitness(latency_weight=0.01)
        assert fitness.best_shard({}, [3.0, 1.0, 2.0]) == 1

    def test_large_weight_flips_decision(self):
        fitness = TemporalFitness(latency_weight=1.0)
        # Shard 1 has the T2S mass but a terrible queue.
        assert fitness.best_shard({1: 0.5}, [0.1, 10.0]) == 0


class TestTieBreakAblation:
    def test_first_tie_break_unbalances_time(self, small_stream):
        """The paper-faithful argmax creates wave-filling: the first
        quarter of the stream lands almost entirely in one shard."""
        placer = GreedyPlacer(
            4, expected_total=len(small_stream), tie_break="first"
        )
        assignment = placer.place_stream(small_stream)
        quarter = assignment[: len(assignment) // 4]
        dominant = max(set(quarter), key=quarter.count)
        assert quarter.count(dominant) / len(quarter) > 0.9

    def test_lightest_tie_break_balances(self, small_stream):
        placer = GreedyPlacer(
            4, expected_total=len(small_stream), tie_break="lightest"
        )
        assignment = placer.place_stream(small_stream)
        assert balance_ratio(assignment, 4) <= 1.1 + 1e-9


class TestProviderSentinel:
    def test_default_builds_proxy(self):
        placer = OptChainPlacer(4)
        assert placer.latency_provider is placer._proxy
        assert placer._proxy is not None

    def test_sentinel_explicit(self):
        from repro.core.optchain import USE_LOAD_PROXY

        placer = OptChainPlacer(4, latency_provider=USE_LOAD_PROXY)
        assert placer._proxy is not None

    def test_proxy_string_still_accepted(self):
        placer = OptChainPlacer(4, latency_provider="proxy")
        assert placer._proxy is not None

    def test_none_means_pure_t2s(self):
        placer = OptChainPlacer(4, latency_provider=None)
        assert placer._proxy is None
        assert placer.latency_provider is None


class TestIncrementalSizes:
    def test_min_shard_size_tracks_exactly(self, small_stream):
        placer = OmniLedgerRandomPlacer(5)
        for tx_obj in small_stream[:500]:
            placer.place(tx_obj)
            assert placer.min_shard_size == min(placer.shard_sizes())

    def test_shard_sizes_match_assignment(self, small_stream):
        placer = OptChainPlacer(8)
        placer.place_stream(small_stream[:800])
        recount = [0] * 8
        for shard in placer.assignment():
            recount[shard] += 1
        assert placer.shard_sizes() == recount
