"""Unit tests for the static partitioning graph."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, MissingNodeError
from repro.partition.graph import StaticGraph


class TestConstruction:
    def test_empty(self):
        graph = StaticGraph(0)
        assert graph.n_nodes == 0
        assert graph.n_edges == 0

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            StaticGraph(-1)

    def test_add_edge_symmetric(self):
        graph = StaticGraph(3)
        graph.add_edge(0, 1, 2)
        assert graph.neighbors(0) == [(1, 2)]
        assert graph.neighbors(1) == [(0, 2)]
        assert graph.n_edges == 1

    def test_parallel_edges_merge(self):
        graph = StaticGraph(2)
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 0, 3)
        assert graph.neighbors(0) == [(1, 5)]
        assert graph.n_edges == 1

    def test_self_loop_ignored(self):
        graph = StaticGraph(2)
        graph.add_edge(1, 1)
        assert graph.n_edges == 0

    def test_zero_weight_rejected(self):
        graph = StaticGraph(2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, 0)

    def test_bad_node_rejected(self):
        graph = StaticGraph(2)
        with pytest.raises(MissingNodeError):
            graph.add_edge(0, 5)

    def test_node_weights(self):
        graph = StaticGraph(3, node_weights=[2, 3, 4])
        assert graph.node_weight(1) == 3
        assert graph.total_node_weight == 9

    def test_mismatched_weights_rejected(self):
        with pytest.raises(GraphError):
            StaticGraph(3, node_weights=[1, 2])


class TestQueries:
    def test_degrees(self):
        graph = StaticGraph(4)
        graph.add_edge(0, 1, 2)
        graph.add_edge(0, 2, 3)
        assert graph.degree(0) == 2
        assert graph.weighted_degree(0) == 5
        assert graph.degree(3) == 0

    def test_edges_iterated_once(self):
        graph = StaticGraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2, 4)
        assert sorted(graph.edges()) == [(0, 1, 1), (1, 2, 4)]

    def test_from_tan(self, small_graph):
        static = StaticGraph.from_tan(small_graph)
        assert static.n_nodes == small_graph.n_nodes
        # A TaN edge (u spends v) becomes one undirected edge; different
        # spender pairs never merge, so counts match exactly unless two
        # TaN edges connect the same pair (impossible: inputs are
        # distinct per node).
        assert static.n_edges == small_graph.n_edges

    def test_from_edges(self):
        graph = StaticGraph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.n_edges == 2
