"""Unit tests for transaction validation rules."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.utxo.transaction import OutPoint, Transaction, TxOutput
from repro.utxo.utxoset import UTXOSet
from repro.utxo.validation import (
    MAX_TX_SIZE_BYTES,
    MAX_VALUE,
    validate_balance,
    validate_structure,
    validate_transaction,
)


def coinbase(txid=0, value=100):
    return Transaction(txid=txid, inputs=(), outputs=(TxOutput(value),))


class TestStructure:
    def test_valid_passes(self):
        validate_structure(coinbase())

    def test_oversize_rejected(self):
        tx = Transaction(
            txid=0,
            inputs=(),
            outputs=(TxOutput(1),),
            size_bytes=MAX_TX_SIZE_BYTES + 1,
        )
        with pytest.raises(ValidationError, match="size"):
            validate_structure(tx)

    def test_empty_transaction_rejected(self):
        tx = Transaction(txid=0, inputs=(), outputs=())
        with pytest.raises(ValidationError, match="neither"):
            validate_structure(tx)

    def test_output_exceeding_supply_rejected(self):
        tx = Transaction(
            txid=0, inputs=(), outputs=(TxOutput(MAX_VALUE + 1),)
        )
        with pytest.raises(ValidationError, match="supply"):
            validate_structure(tx)

    def test_total_exceeding_supply_rejected(self):
        tx = Transaction(
            txid=0,
            inputs=(),
            outputs=(TxOutput(MAX_VALUE), TxOutput(1)),
        )
        with pytest.raises(ValidationError, match="total"):
            validate_structure(tx)

    def test_forward_spend_rejected(self):
        tx = Transaction(
            txid=1, inputs=(OutPoint(1, 0),), outputs=(TxOutput(1),)
        )
        with pytest.raises(ValidationError, match="topological"):
            validate_structure(tx)


class TestBalance:
    def test_coinbase_exempt(self):
        validate_balance(coinbase(value=10**9), UTXOSet())

    def test_sufficient_inputs_pass(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0, value=100))
        tx = Transaction(
            txid=1,
            inputs=(OutPoint(0, 0),),
            outputs=(TxOutput(90),),
            fee=10,
        )
        validate_balance(tx, utxos)

    def test_overdraft_rejected(self):
        utxos = UTXOSet()
        utxos.apply(coinbase(0, value=100))
        tx = Transaction(
            txid=1,
            inputs=(OutPoint(0, 0),),
            outputs=(TxOutput(95),),
            fee=10,
        )
        with pytest.raises(ValidationError, match="spends"):
            validate_balance(tx, utxos)


class TestFullValidation:
    def test_chain_of_valid_transactions(self):
        utxos = UTXOSet()
        cb = coinbase(0, value=100)
        validate_transaction(cb, utxos)
        utxos.apply(cb)
        tx = Transaction(
            txid=1,
            inputs=(OutPoint(0, 0),),
            outputs=(TxOutput(40), TxOutput(55)),
            fee=5,
        )
        validate_transaction(tx, utxos)
        utxos.apply(tx)
        assert utxos.n_applied == 2

    def test_generated_stream_fully_valid(self, small_stream):
        """Every synthetic transaction passes full validation in order."""
        utxos = UTXOSet()
        for tx in small_stream:
            validate_transaction(tx, utxos)
            utxos.apply(tx)
