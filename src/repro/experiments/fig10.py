"""Figure 10 - cumulative distribution of transaction latency.

Paper (16 shards, 6000 tps): within 10 seconds OptChain completes 70% of
transactions versus 41.2% (Greedy), 7.9% (OmniLedger) and 2.4% (Metis).
"""

from __future__ import annotations

from repro.analysis.distribution import cdf_points, fraction_below
from repro.analysis.tables import format_table
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import METHODS, simulate


def run(
    scale: ExperimentScale, seed: int = 1
) -> dict[str, list[float]]:
    """Raw latency samples per method at the top configuration."""
    n_shards = max(scale.shard_counts)
    tx_rate = max(scale.tx_rates)
    samples: dict[str, list[float]] = {}
    for method in METHODS:
        result = simulate(scale, method, n_shards, tx_rate, seed)
        samples[method] = result.latencies
    return samples


def cdf(samples: dict[str, list[float]], n_points: int = 40):
    """CDF curves per method."""
    return {
        method: cdf_points(latencies, n_points)
        for method, latencies in samples.items()
    }


def within(samples: dict[str, list[float]], threshold: float):
    """Fraction of transactions confirmed within ``threshold`` seconds."""
    return {
        method: fraction_below(latencies, threshold)
        for method, latencies in samples.items()
    }


def as_table(samples: dict[str, list[float]], threshold: float) -> str:
    fractions = within(samples, threshold)
    rows = [
        [method, f"{fraction:.1%}"]
        for method, fraction in sorted(fractions.items())
    ]
    table = format_table(
        ["method", f"confirmed within {threshold:.0f}s"],
        rows,
        title=(
            "Fig. 10: latency CDF headline "
            "(paper at 10s: OptChain 70%, Greedy 41.2%, OmniLedger 7.9%, "
            "Metis 2.4%)"
        ),
    )
    curves = cdf(samples, n_points=10)
    methods = sorted(curves)
    rows = []
    for i in range(10):
        row: list[object] = [f"{(i + 1) * 10}%"]
        for method in methods:
            value, _ = curves[method][i]
            row.append(f"{value:.1f}s")
        rows.append(row)
    detail = format_table(
        ["quantile"] + methods, rows, title="latency quantiles"
    )
    return table + "\n\n" + detail


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    scale = scale_by_name(scale_name)
    samples = run(scale)
    # The paper reads the CDF at 10 s; at reduced scale the equivalent
    # threshold is the same because consensus timing is unscaled.
    output = as_table(samples, threshold=10.0)
    print(output)
    return output


if __name__ == "__main__":
    main()
