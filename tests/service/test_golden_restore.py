"""The golden restore test (ISSUE 3 satellite).

Place 50k synthetic transactions; snapshot at 25k; restore the snapshot
in a **fresh process**; continue to 50k. The shard assignments and the
load proxy's decayed per-shard loads must be bit-identical to the
uninterrupted run - not close, identical - which is what makes
checkpoint/restart an invisible operational event rather than a
behavioral one.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.service.engine import PlacementEngine

N_TX = 50_000
SPLIT = 25_000
SEED = 2024
N_SHARDS = 16

_CHILD_SCRIPT = """
import json, sys
from repro.datasets.synthetic import synthetic_stream
from repro.service.engine import PlacementEngine

snapshot_path, n_tx, split, seed = sys.argv[1:5]
stream = synthetic_stream(int(n_tx), seed=int(seed))
engine = PlacementEngine.restore(snapshot_path)
assert engine.n_placed == int(split), engine.n_placed
tail = engine.place_batch(stream[int(split):])
loads = [value.hex() for value in engine.placer._proxy.loads]
json.dump({"tail": tail, "loads": loads}, sys.stdout)
"""


def test_snapshot_restore_fresh_process_bit_identical(tmp_path):
    stream = synthetic_stream(N_TX, seed=SEED)

    # The uninterrupted reference run.
    reference = make_placer("optchain", N_SHARDS)
    expected = reference.place_stream(stream)
    expected_loads = [value.hex() for value in reference._proxy.loads]

    # Interrupted run: place half, checkpoint, abandon the process
    # state entirely.
    engine = PlacementEngine(
        make_placer("optchain", N_SHARDS), epoch_length=5_000
    )
    head = engine.place_batch(stream[:SPLIT])
    assert head == expected[:SPLIT]
    snapshot = tmp_path / "golden.snap"
    engine.checkpoint(snapshot)

    # Fresh interpreter: restore and continue.
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src)
    )
    result = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD_SCRIPT,
            str(snapshot),
            str(N_TX),
            str(SPLIT),
            str(SEED),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    payload = json.loads(result.stdout)

    assert head + payload["tail"] == expected
    assert payload["loads"] == expected_loads
