"""Temporal Fitness - the combination rule of Algorithm 1.

OptChain places a transaction into the shard maximizing::

    fitness(j) = p(u)[j] - latency_weight * E(j)

where ``p(u)`` is the normalized T2S score and ``E(j)`` the L2S expected
latency. The paper fixes ``latency_weight = 0.01`` (Alg. 1 line 9); it is
a parameter here so the ablation bench can sweep it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

PAPER_LATENCY_WEIGHT = 0.01


class TemporalFitness:
    """Combines T2S and L2S scores and picks the best shard."""

    def __init__(self, latency_weight: float = PAPER_LATENCY_WEIGHT) -> None:
        if latency_weight < 0:
            raise ConfigurationError(
                f"latency_weight must be >= 0, got {latency_weight}"
            )
        self.latency_weight = latency_weight

    def combine(
        self,
        t2s_scores: Mapping[int, float],
        l2s_scores: Sequence[float],
    ) -> list[float]:
        """Fitness per shard. ``t2s_scores`` is sparse; missing = 0."""
        return [
            t2s_scores.get(shard, 0.0) - self.latency_weight * l2s
            for shard, l2s in enumerate(l2s_scores)
        ]

    def best_shard(
        self,
        t2s_scores: Mapping[int, float],
        l2s_scores: Sequence[float],
    ) -> int:
        """Argmax of the fitness; ties go to the lower expected latency,
        then to the lower shard id (deterministic)."""
        fitness = self.combine(t2s_scores, l2s_scores)
        best = 0
        for shard in range(1, len(fitness)):
            if fitness[shard] > fitness[best] or (
                fitness[shard] == fitness[best]
                and l2s_scores[shard] < l2s_scores[best]
            ):
                best = shard
        return best

    def best_shard_sparse(
        self,
        t2s_scores: Mapping[int, float],
        l2s_scores: Sequence[float],
    ) -> int:
        """:meth:`best_shard` without materializing the fitness list.

        Identical decisions (same arithmetic, same tie-breaking) computed
        in one pass; the placement hot path calls this once per
        transaction, so the ``combine`` list would be pure allocation
        churn.
        """
        weight = self.latency_weight
        get = t2s_scores.get
        best = 0
        best_l2s = l2s_scores[0]
        best_fitness = get(0, 0.0) - weight * best_l2s
        for shard in range(1, len(l2s_scores)):
            l2s = l2s_scores[shard]
            fitness = get(shard, 0.0) - weight * l2s
            if fitness > best_fitness or (
                fitness == best_fitness and l2s < best_l2s
            ):
                best = shard
                best_fitness = fitness
                best_l2s = l2s
        return best
