"""The long-lived placement engine: validation + epoch-bounded memory.

:class:`PlacementEngine` wraps a :class:`~repro.core.placement.
PlacementStrategy` for serving. It adds exactly what a one-shot
experiment script never needed:

**The serving contract.** Batches are validated *atomically* before any
state advances: transactions must arrive in dense stream order, and
every input must reference a known, not-fully-spent output. A rejected
batch leaves the engine byte-identical to before the call, so a server
can return an error to one client and keep serving the rest.

**The epoch/truncation policy.** The T2S store keeps one sparse vector
per transaction, read only when a later transaction spends one of its
outputs. Two observations bound that memory:

1. A *fully-spent* transaction can never be read again on a valid
   stream - its spender count has frozen - so its vector is released
   (dropped) at the next epoch boundary. This is **exact**: placements
   are bit-identical to an untruncated run (the golden truncation test
   pins this).
2. With ``horizon_epochs`` set, vectors older than the horizon are
   released even if outputs remain unspent, which caps live vectors at
   roughly ``(horizon_epochs + 1) * epoch_length`` regardless of stream
   length. Spends that reach behind the horizon are still *accepted* -
   a released slot scores as zero ancestry mass, so the walk degrades
   gracefully instead of failing - but they can no longer be validated
   or contribute T2S signal. The random-walk mass of an ancestor
   ``d`` generations back carries a ``(1 - alpha)^d`` factor, so for
   the paper's ``alpha = 0.5`` the signal lost with a generous horizon
   is far below ``prune_epsilon`` in almost all cases; the measured
   placement-quality drift is recorded in BENCH_service.json.

Both releases are batched at epoch boundaries (every ``epoch_length``
placements), amortizing the sweep to O(1) per transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.placement import PlacementStrategy
from repro.core.scorer import PlacementScorer
from repro.errors import ConfigurationError, EngineError
from repro.utxo.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    import pathlib


@dataclass(frozen=True, slots=True)
class EngineStats:
    """A consistent point-in-time view of the engine's counters."""

    strategy: str
    n_shards: int
    n_placed: int
    #: Sparse T2S vectors currently held in memory (None for strategies
    #: without a T2S scorer, e.g. ``omniledger``).
    live_vectors: int | None
    #: Vectors dropped so far by the truncation policy.
    released_vectors: int | None
    #: Largest live-vector count ever observed at an epoch boundary.
    peak_live_vectors: int | None
    #: First txid still inside the spend horizon (0 = no horizon drop yet).
    horizon_start: int
    #: Completed epochs (``n_placed // epoch_length``).
    epoch: int
    #: Transactions with unspent outputs currently tracked for
    #: validation (the engine-side analogue of the UTXO set size).
    tracked_unspent: int
    epoch_length: int
    horizon_epochs: int | None
    #: Support/saturation observability from the scorer (None for
    #: strategies without one): live-vector count, mean/max vector nnz,
    #: dropped-mass totals, and the support cap when bounded. This is
    #: how T2S saturation - the thing that erodes throughput at 64+
    #: shards - shows up in production instead of only in benchmarks.
    support: dict[str, Any] | None = None
    #: Canonical strategy-spec string (method, cap, backend -
    #: :class:`repro.core.spec.StrategySpec`); feeding it back to
    #: ``make_placer`` reproduces this engine's placer configuration.
    spec: str = ""

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly dump (the server's ``stats`` op)."""
        return {
            "strategy": self.strategy,
            "spec": self.spec,
            "n_shards": self.n_shards,
            "n_placed": self.n_placed,
            "live_vectors": self.live_vectors,
            "released_vectors": self.released_vectors,
            "peak_live_vectors": self.peak_live_vectors,
            "horizon_start": self.horizon_start,
            "epoch": self.epoch,
            "tracked_unspent": self.tracked_unspent,
            "epoch_length": self.epoch_length,
            "horizon_epochs": self.horizon_epochs,
            "support": self.support,
        }


class PlacementEngine:
    """Long-lived, checkpointable wrapper around a placement strategy.

    Parameters:

    - ``placer``: a fresh strategy (no placements yet); restored engines
      come from :meth:`restore` instead.
    - ``epoch_length``: placements per epoch; truncation sweeps run at
      epoch boundaries.
    - ``horizon_epochs``: if set, vectors older than this many epochs
      are dropped even when not fully spent (bounded memory, graceful
      signal loss - see the module docstring). ``None`` keeps the exact
      fully-spent-only policy, whose memory bound is the stream's
      unspent frontier.
    - ``truncate_spent``: release fully-spent vectors (exact). Disable
      only to measure the untruncated baseline.
    """

    def __init__(
        self,
        placer: PlacementStrategy,
        *,
        epoch_length: int = 25_000,
        horizon_epochs: int | None = None,
        truncate_spent: bool = True,
        _preplaced_ok: bool = False,
    ) -> None:
        if epoch_length < 1:
            raise ConfigurationError(
                f"epoch_length must be >= 1, got {epoch_length}"
            )
        if horizon_epochs is not None and horizon_epochs < 1:
            raise ConfigurationError(
                f"horizon_epochs must be >= 1 (or None), got "
                f"{horizon_epochs}"
            )
        if placer.n_placed and not _preplaced_ok:
            raise ConfigurationError(
                "PlacementEngine needs a fresh placer: it must observe "
                "every placement to track spendable outputs (restore a "
                "snapshot with PlacementEngine.restore instead)"
            )
        self._placer = placer
        self._epoch_length = epoch_length
        self._horizon_epochs = horizon_epochs
        self._truncate_spent = truncate_spent
        # Any scorer implementing the interface gets the serving
        # features (truncation sweeps, support stats) - including
        # custom injections via OptChainPlacer(scorer=...), not just
        # the built-in kinds.
        scorer = getattr(placer, "scorer", None)
        self._scorer: PlacementScorer | None = (
            scorer if isinstance(scorer, PlacementScorer) else None
        )
        self._collect_spent = self._scorer is not None and truncate_spent
        # txid -> bitmask of still-unspent output indexes, for every
        # in-horizon transaction that has any (bit i set = output i
        # spendable), so validation is per-outpoint: double-spending
        # output 0 while output 1 is unspent is caught, and so is a
        # fabricated output index. Entries are dropped the moment the
        # mask hits zero (which is also what flags the vector for
        # release) or when the horizon passes them.
        #
        # Placers whose compiled kernel is active provide a validation
        # driver; the store is then a MaskMap (dense int64 array the
        # kernel validates batches against directly) instead of a dict.
        # Both behave identically through the Mapping protocol, so
        # snapshots, deltas, and partition handoff never care which.
        factory = getattr(placer, "validation_driver", None)
        self._validator = factory() if factory is not None else None
        if self._validator is not None:
            from repro.core.backends.arrays import MaskMap

            self._remaining: "dict[int, int] | Any" = MaskMap()
        else:
            self._remaining = {}
        # A placer failure mid-batch (after validation committed) would
        # leave bookkeeping and placements out of step; the engine
        # poisons itself rather than serve from inconsistent state.
        self._poisoned = False
        # Fully-spent txids awaiting the next epoch-boundary release.
        self._pending_release: list[int] = []
        # Transiently-installed foreign txids the sweeps must not touch
        # (set by the partition layer around place_batch).
        self._sweep_exclude: "frozenset[int] | set[int] | None" = None
        # Delta-checkpoint bookkeeping (see service.state, format v3):
        # the last full snapshot this engine wrote, and the pre-base
        # parents touched since. None until a full checkpoint with
        # delta tracking enables it; cost is one set.update of the
        # spend journal's keys per batch.
        self._delta_base: "dict[str, Any] | None" = None
        self._dirty_parents: "set[int] | None" = None
        # Nonce of the on-disk full snapshot this engine's state is
        # anchored to (set on save and on restore). The per-partition
        # write-ahead journal (service.journal) binds to it so a WAL
        # tail is only ever replayed on top of the exact checkpoint it
        # was written against. None/"" means "fresh engine, no base".
        self.last_snapshot_nonce: "str | None" = None
        self._horizon_start = 0
        self._epoch = 0
        self._peak_live = 0
        # Optional placement-quality shadow (repro.obs.drift), attached
        # by the serving layer. Observes committed batches and mirrors
        # the truncation sweeps so its memory stays bounded by the same
        # policy as the production scorer. Purely observational: a
        # monitor failure detaches it instead of poisoning the engine.
        self.drift_monitor: "Any | None" = None

    # -- queries -----------------------------------------------------------

    @property
    def placer(self) -> PlacementStrategy:
        """The wrapped strategy (read-only use: assignments, sizes)."""
        return self._placer

    @property
    def n_placed(self) -> int:
        """Transactions placed so far."""
        return self._placer.n_placed

    @property
    def n_shards(self) -> int:
        """Number of shards served."""
        return self._placer.n_shards

    @property
    def horizon_start(self) -> int:
        """First txid whose vector the horizon policy still retains."""
        return self._horizon_start

    @property
    def kernel_validation(self) -> bool:
        """True when batch validation runs in the compiled kernel."""
        return self._validator is not None

    def stats(self) -> EngineStats:
        from repro.core.spec import StrategySpec

        scorer = self._scorer
        live = scorer.live_vector_count if scorer is not None else None
        if live is not None and live > self._peak_live:
            self._peak_live = live
        return EngineStats(
            strategy=type(self._placer).name or type(self._placer).__name__,
            spec=str(StrategySpec.of_placer(self._placer)),
            n_shards=self._placer.n_shards,
            n_placed=self._placer.n_placed,
            live_vectors=live,
            released_vectors=(
                scorer.released_count if scorer is not None else None
            ),
            peak_live_vectors=(
                self._peak_live if scorer is not None else None
            ),
            horizon_start=self._horizon_start,
            epoch=self._epoch,
            tracked_unspent=len(self._remaining),
            epoch_length=self._epoch_length,
            horizon_epochs=self._horizon_epochs,
            support=(
                scorer.support_stats() if scorer is not None else None
            ),
        )

    # -- the serving hot path ----------------------------------------------

    def place_batch(
        self,
        txs: Iterable[Transaction],
        *,
        _exclude_release: "frozenset[int] | set[int] | None" = None,
    ) -> list[int]:
        """Validate and place one batch; returns its shard assignment.

        Validation is atomic: on :class:`~repro.errors.EngineError`
        nothing has changed and the engine keeps serving. After a batch
        commits, any epoch boundaries it crossed run the truncation
        sweeps.

        ``_exclude_release`` is the partition layer's hook
        (:mod:`repro.service.partition`): txids whose vectors this
        engine must *not* release even when the batch fully spends them
        - remotely-owned parents are released by their owning partition
        on writeback, and the local copies are transient installs.
        """
        if self._poisoned:
            raise EngineError(
                "engine is poisoned: a placement failure after batch "
                "validation left bookkeeping and placements out of "
                "step; restore the last checkpoint"
            )
        batch = txs if isinstance(txs, list) else list(txs)
        marshalled = None
        if self._validator is not None:
            marshalled = self._validator.marshal(
                batch, self._placer.n_placed
            )
        return self._place_validated(batch, marshalled, _exclude_release)

    def place_wire_batch(
        self,
        wire_batch: Any,
        *,
        _exclude_release: "frozenset[int] | set[int] | None" = None,
    ) -> list[int]:
        """Place one decoded binary ``place`` payload
        (:class:`repro.service.wire.WireBatch`) without materializing
        :class:`Transaction` objects - the frame's C-contiguous arrays
        feed the validation and placement kernels directly.

        Falls back to the object path (byte-identical replies, same
        errors) when kernel validation is off or a drift monitor needs
        the objects.
        """
        if self._validator is None or self.drift_monitor is not None:
            return self.place_batch(
                self._materialize(wire_batch),
                _exclude_release=_exclude_release,
            )
        if self._poisoned:
            raise EngineError(
                "engine is poisoned: a placement failure after batch "
                "validation left bookkeeping and placements out of "
                "step; restore the last checkpoint"
            )
        first = wire_batch.first_txid
        if first != self._placer.n_placed:
            raise EngineError(
                f"transactions must arrive in dense stream order: "
                f"got {first}, expected {self._placer.n_placed}"
            )
        return self._place_validated(None, wire_batch, _exclude_release)

    @staticmethod
    def _materialize(wire_batch: Any) -> list[Transaction]:
        from repro.service.wire import decode_place_payload

        batch: list[Transaction] = []
        for payload in wire_batch.payloads:
            batch.extend(decode_place_payload(payload))
        return batch

    def _place_validated(
        self,
        batch: "list[Transaction] | None",
        marshalled: Any,
        _exclude_release: "frozenset[int] | set[int] | None",
    ) -> list[int]:
        """Common tail of the two entry points: validate (kernel or
        python journal), filter the pending releases, place, sweep.
        ``batch`` is None only on the wire path, where Transactions are
        materialized lazily if the kernel punts the batch back."""
        if marshalled is not None:
            if not self._validate_kernel(marshalled):
                # The kernel rolled everything back: the batch touches
                # arbitrary-precision masks or >62-output transactions.
                # The python journal handles it exactly (rare, cold).
                if batch is None:
                    batch = self._materialize(marshalled)
                self._apply_inputs(batch)
        else:
            self._apply_inputs(batch)
        pending = self._pending_release
        if (
            _exclude_release
            and pending
            and not _exclude_release.isdisjoint(pending)
        ):
            pending[:] = [
                txid for txid in pending if txid not in _exclude_release
            ]
        try:
            if marshalled is not None:
                shards = self._placer.place_batch_raw(
                    marshalled.parents, marshalled.in_off, marshalled.n_txs
                )
            else:
                shards = self._placer.place_batch(batch)
        except Exception:
            # Validation passed, so this is a placer bug (or a placer
            # violating the snapshotable contract); the spent-output
            # journal was already committed and partial placements
            # cannot be unwound, so refuse further service instead of
            # serving from a desynced state.
            self._poisoned = True
            raise
        if self.drift_monitor is not None:
            self._observe_drift(batch, shards)
        if (
            self._placer.n_placed // self._epoch_length != self._epoch
        ):
            self._sweep_exclude = _exclude_release or None
            try:
                self._advance_epochs()
            finally:
                self._sweep_exclude = None
        return shards

    def _validate_kernel(self, marshalled: Any) -> bool:
        """Kernel-side :meth:`_apply_inputs`; True when it committed."""
        result = self._validator.validate(
            self._remaining, marshalled, horizon_start=self._horizon_start
        )
        if result is None:
            return False
        released, undo_txids = result
        if self._collect_spent and released:
            self._pending_release.extend(released)
        dirty = self._dirty_parents
        if dirty is not None and undo_txids is not None:
            dirty.update(undo_txids.tolist())
        return True

    # -- checkpointing -----------------------------------------------------

    def checkpoint(
        self,
        path: "str | pathlib.Path",
        compress: bool = False,
        delta: bool = False,
        track_delta: "bool | None" = None,
    ) -> int:
        """Write a snapshot to ``path``; returns the byte size written.

        The engine must be quiescent (between batches) - always true
        from the single-threaded server loop and from straight-line
        client code. ``compress`` writes the array payload as one zlib
        stream (see :func:`repro.service.state.save_engine_snapshot`);
        restore auto-detects either form.

        ``delta`` writes ``<path>.delta`` instead: only the arrays
        appended and the pre-base parents touched since the last *full*
        snapshot at ``path`` (format v3) - O(activity since base), not
        O(n_placed). Requires that full snapshot to have been written
        by this engine **with** ``track_delta=True`` (the dirty-parent
        journal is opt-in: a set update per batch plus memory for the
        touched-parent ids between full saves, pointless overhead for
        engines that only ever snapshot fully); once enabled, tracking
        stays on across later full saves unless explicitly turned off.
        :meth:`restore` applies the delta automatically. Each delta
        save replaces the previous one (cumulative since base); a full
        save compacts and invalidates it.
        """
        from repro.service.state import (
            save_engine_delta,
            save_engine_snapshot,
        )

        if delta:
            return save_engine_delta(self, path, compress=compress)
        if track_delta is None:
            track_delta = self._dirty_parents is not None
        return save_engine_snapshot(
            self, path, compress=compress, track_delta=track_delta
        )

    @classmethod
    def restore(cls, path: "str | pathlib.Path") -> "PlacementEngine":
        """Rebuild an engine from a snapshot; continuing the stream is
        bit-identical to never having stopped (the golden restore test
        pins this across processes)."""
        from repro.service.state import load_engine_snapshot

        return load_engine_snapshot(path)

    # -- snapshot plumbing (plain-data state, serialized by state.py) ------

    def export_config(self) -> dict[str, Any]:
        """Constructor arguments (placer excluded)."""
        return {
            "epoch_length": self._epoch_length,
            "horizon_epochs": self._horizon_epochs,
            "truncate_spent": self._truncate_spent,
        }

    def export_state(self) -> dict[str, Any]:
        """Mutable engine bookkeeping as plain data."""
        return {
            "remaining": dict(self._remaining.items()),
            "pending_release": list(self._pending_release),
            "horizon_start": self._horizon_start,
            "epoch": self._epoch,
            "peak_live": self._peak_live,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Load a dump produced by :meth:`export_state` (same config)."""
        if self._validator is not None:
            from repro.core.backends.arrays import MaskMap

            self._remaining = MaskMap(state["remaining"])
        else:
            self._remaining = dict(state["remaining"])
        self._pending_release = list(state["pending_release"])
        self._horizon_start = state["horizon_start"]
        self._epoch = state["epoch"]
        self._peak_live = state["peak_live"]

    # -- internals ---------------------------------------------------------

    def _apply_inputs(self, batch: Sequence[Transaction]) -> None:
        """Validate and advance the unspent-output bookkeeping.

        One journaled pass (this brackets the fused placement loop on
        the serving hot path, so it is written like one): mutations are
        applied eagerly while an undo log records each entry's previous
        value, and an :class:`~repro.errors.EngineError` rolls the log
        back before propagating - the caller observes atomic
        all-or-nothing batches either way.
        """
        first_txid = self._placer.n_placed
        next_txid = first_txid
        horizon_start = self._horizon_start
        remaining = self._remaining
        remaining_get = remaining.get
        collect = self._collect_spent
        pending = self._pending_release
        pending_mark = len(pending)
        # (txid, previous_mask) pairs for *spent* entries only. Entries
        # the batch itself created need no journal: their keys are
        # exactly [first_txid, failure point), so rollback pops that
        # range after restoring the spend journal (which may include
        # batch-created parents - restore order handles it).
        undo: list[tuple[int, int]] = []
        record = undo.append
        try:
            for tx in batch:
                txid = tx.txid
                if txid != next_txid:
                    raise EngineError(
                        f"transactions must arrive in dense stream "
                        f"order: got {txid}, expected {next_txid}"
                    )
                next_txid += 1
                for outpoint in tx.inputs:
                    parent = outpoint.txid
                    if parent >= txid:
                        raise EngineError(
                            f"transaction {txid} references a "
                            f"non-earlier transaction {parent}"
                        )
                    if parent < horizon_start:
                        # Beyond the spend horizon: accepted (zero
                        # ancestry mass), but no longer validatable -
                        # the horizon traded that bookkeeping away for
                        # bounded memory.
                        continue
                    mask = remaining_get(parent)
                    if mask is None:
                        raise EngineError(
                            f"transaction {txid} spends an unknown or "
                            f"fully-spent transaction {parent}"
                        )
                    bit = 1 << outpoint.index
                    if not mask & bit:
                        raise EngineError(
                            f"transaction {txid} spends output "
                            f"{outpoint.index} of transaction {parent}, "
                            f"which does not exist or is already spent"
                        )
                    record((parent, mask))
                    mask ^= bit
                    if mask:
                        remaining[parent] = mask
                    else:
                        del remaining[parent]
                        if collect:
                            pending.append(parent)
                n_outputs = len(tx.outputs)
                if n_outputs:
                    remaining[txid] = (1 << n_outputs) - 1
                elif collect:
                    # Zero outputs: nothing to spend, the vector can
                    # never be read - release at the next boundary like
                    # any fully-spent transaction.
                    pending.append(txid)
        except EngineError:
            del pending[pending_mark:]
            for key, previous in reversed(undo):
                remaining[key] = previous
            for key in range(first_txid, next_txid):
                remaining.pop(key, None)
            raise
        dirty = self._dirty_parents
        if dirty is not None and undo:
            # The spend journal's keys are exactly the parents this
            # batch mutated - free dirty tracking for delta
            # checkpoints (keys at or above the delta base are part of
            # the serialized tail anyway and filtered out at save).
            dirty.update(key for key, _ in undo)

    def _advance_epochs(self) -> None:
        """Run the truncation sweeps for every boundary just crossed."""
        self._epoch = epoch = self._placer.n_placed // self._epoch_length
        scorer = self._scorer
        if scorer is None:
            if self._horizon_epochs is not None:
                self._drop_horizon(epoch)
            return
        if self._collect_spent and self._pending_release:
            scorer.release_vectors(self._pending_release)
            if self.drift_monitor is not None:
                self._observe_release(self._pending_release)
            self._pending_release.clear()
        if self._horizon_epochs is not None:
            self._drop_horizon(epoch)
        live = scorer.live_vector_count
        if live > self._peak_live:
            self._peak_live = live

    def _drop_horizon(self, epoch: int) -> None:
        new_start = (epoch - self._horizon_epochs) * self._epoch_length
        if new_start <= self._horizon_start:
            return
        remaining = self._remaining
        scorer = self._scorer
        exclude = self._sweep_exclude
        span = range(self._horizon_start, new_start)
        if exclude:
            # Installed foreign slots are the owner's to release; here
            # they are transient copies the partition layer unwinds.
            span = [txid for txid in span if txid not in exclude]
        if scorer is not None:
            scorer.release_vectors(span)
            if self.drift_monitor is not None:
                self._observe_release(span)
        clear_range = getattr(remaining, "clear_range", None)
        if clear_range is not None:
            # MaskMap: one vectorized pass instead of a pop per txid.
            clear_range(self._horizon_start, new_start, exclude or ())
        else:
            for txid in span:
                remaining.pop(txid, None)
        self._horizon_start = new_start

    # -- drift shadow (observational; never poisons the engine) ------------

    def _observe_drift(self, batch, shards) -> None:
        monitor = self.drift_monitor
        try:
            monitor.observe_batch(batch, shards)
        except Exception as exc:  # pragma: no cover - defensive detach
            monitor.failed = repr(exc)
            self.drift_monitor = None

    def _observe_release(self, txids) -> None:
        monitor = self.drift_monitor
        try:
            monitor.release_vectors(txids)
        except Exception as exc:  # pragma: no cover - defensive detach
            monitor.failed = repr(exc)
            self.drift_monitor = None
