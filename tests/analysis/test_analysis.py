"""Unit tests for the analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis.distribution import cdf_points, fraction_below, percentile
from repro.analysis.tables import format_table
from repro.analysis.timeseries import (
    bin_counts,
    queue_extrema_series,
    queue_ratio_series,
)
from repro.errors import ConfigurationError


class TestBinCounts:
    def test_counts_per_bin(self):
        counts = bin_counts([0.1, 0.2, 1.5, 2.9], bin_width=1.0)
        assert counts == [(0.0, 2), (1.0, 1), (2.0, 1)]

    def test_empty_bins_included(self):
        counts = bin_counts([0.5, 3.5], bin_width=1.0)
        assert counts == [(0.0, 1), (1.0, 0), (2.0, 0), (3.0, 1)]

    def test_explicit_end(self):
        counts = bin_counts([0.5], bin_width=1.0, end=3.0)
        assert len(counts) == 4

    def test_empty_input(self):
        assert bin_counts([], 1.0) == []

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            bin_counts([1.0], 0.0)

    def test_unsorted_input(self):
        assert bin_counts([2.5, 0.5], 1.0) == [
            (0.0, 1),
            (1.0, 0),
            (2.0, 1),
        ]


class TestQueueSeries:
    TIMES = [0.0, 1.0, 2.0]
    SAMPLES = [[5, 1, 3], [0, 0, 0], [8, 0, 2]]

    def test_extrema(self):
        series = queue_extrema_series(self.TIMES, self.SAMPLES)
        assert series == [(0.0, 5, 1), (1.0, 0, 0), (2.0, 8, 0)]

    def test_ratio_semantics(self):
        series = queue_ratio_series(self.TIMES, self.SAMPLES)
        assert series[0] == (0.0, 5.0)
        assert series[1] == (1.0, 1.0)  # all empty: balanced
        assert series[2] == (2.0, float("inf"))  # idle shard: imbalance

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            queue_extrema_series([0.0], [[1], [2]])

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            queue_extrema_series([0.0], [[]])


class TestDistribution:
    def test_percentile_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 50) == pytest.approx(5.0)
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 10.0

    def test_percentile_single(self):
        assert percentile([3.0], 75) == 3.0

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 150)

    def test_fraction_below(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert fraction_below(values, 2.5) == 0.5
        assert fraction_below(values, 0.5) == 0.0
        assert fraction_below([], 1.0) == 0.0

    def test_cdf_points_monotone(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        points = cdf_points(values, n_points=5)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys[-1] == pytest.approx(1.0)

    def test_cdf_points_validation(self):
        with pytest.raises(ConfigurationError):
            cdf_points([1.0], 0)
        assert cdf_points([], 5) == []


class TestFormatTable:
    def test_basic(self):
        text = format_table(["a", "bb"], [[1, 2.345], [10, 0.5]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.35" in text  # float formatting
        assert "0.50" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="Title")
        assert text.splitlines()[0] == "Title"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_no_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_special_floats(self):
        text = format_table(["v"], [[float("inf")], [float("nan")]])
        assert "inf" in text
        assert "-" in text
