"""PlacementEngine: serving contract + epoch/truncation policy."""

from __future__ import annotations

import pytest

from repro.core.placement import make_placer
from repro.errors import ConfigurationError, EngineError
from repro.service.engine import PlacementEngine
from repro.utxo.transaction import OutPoint, Transaction, TxOutput


def _tx(txid, inputs=(), n_outputs=1):
    return Transaction(
        txid=txid,
        inputs=tuple(OutPoint(t, i) for t, i in inputs),
        outputs=tuple(TxOutput(1) for _ in range(n_outputs)),
    )


def _engine(**kwargs):
    return PlacementEngine(make_placer("optchain", 4), **kwargs)


class TestServingContract:
    def test_out_of_order_batch_rejected_atomically(self):
        engine = _engine()
        engine.place_batch([_tx(0), _tx(1)])
        with pytest.raises(EngineError, match="dense stream order"):
            engine.place_batch([_tx(3)])
        # Nothing advanced: the correct continuation still works.
        assert engine.place_batch([_tx(2, [(0, 0)])]) is not None
        assert engine.n_placed == 3

    def test_unknown_parent_rejected(self):
        engine = _engine()
        # A zero-output transaction creates nothing spendable.
        engine.place_batch([_tx(0), _tx(1, n_outputs=0)])
        with pytest.raises(EngineError, match="unknown or fully-spent"):
            engine.place_batch([_tx(2, [(1, 0)])])
        assert engine.n_placed == 2

    def test_forward_reference_rejected(self):
        engine = _engine()
        engine.place_batch([_tx(0)])
        with pytest.raises(EngineError, match="non-earlier"):
            engine.place_batch([_tx(1, [(2, 0)])])

    def test_over_spend_within_batch_rejected(self):
        engine = _engine()
        engine.place_batch([_tx(0, n_outputs=1)])
        batch = [_tx(1, [(0, 0)]), _tx(2, [(0, 0)])]
        with pytest.raises(EngineError, match="unknown or fully-spent"):
            engine.place_batch(batch)
        # Atomic: not even the valid first transaction was placed, and
        # the rollback restored the spent-output bookkeeping.
        assert engine.n_placed == 1
        assert engine._remaining == {0: 1}
        assert engine._pending_release == []

    def test_double_spend_across_batches_rejected(self):
        engine = _engine()
        engine.place_batch([_tx(0, n_outputs=1), _tx(1, [(0, 0)])])
        with pytest.raises(EngineError, match="unknown or fully-spent"):
            engine.place_batch([_tx(2, [(0, 0)])])

    def test_same_outpoint_double_spend_rejected(self):
        """Per-outpoint validation: re-spending output 0 is caught even
        while the sibling output 1 is still unspent."""
        engine = _engine()
        engine.place_batch([_tx(0, n_outputs=2), _tx(1, [(0, 0)])])
        with pytest.raises(
            EngineError, match="does not exist or is already spent"
        ):
            engine.place_batch([_tx(2, [(0, 0)])])
        # The untouched sibling output still spends fine.
        engine.place_batch([_tx(2, [(0, 1)])])
        assert engine.n_placed == 3

    def test_nonexistent_output_index_rejected(self):
        engine = _engine()
        engine.place_batch([_tx(0, n_outputs=1)])
        with pytest.raises(
            EngineError, match="does not exist or is already spent"
        ):
            engine.place_batch([_tx(1, [(0, 5)])])

    def test_placer_failure_poisons_engine(self):
        engine = _engine()
        engine.place_batch([_tx(0)])

        def explode(batch):
            raise RuntimeError("placer bug")

        original = engine._placer.place_batch
        engine._placer.place_batch = explode
        with pytest.raises(RuntimeError):
            engine.place_batch([_tx(1)])
        engine._placer.place_batch = original
        # Bookkeeping committed but placements did not: the engine
        # refuses to keep serving from desynced state.
        with pytest.raises(EngineError, match="poisoned"):
            engine.place_batch([_tx(1)])

    def test_multi_output_parent_supports_multiple_spenders(self):
        engine = _engine()
        engine.place_batch([_tx(0, n_outputs=3)])
        engine.place_batch(
            [_tx(1, [(0, 0)]), _tx(2, [(0, 1)]), _tx(3, [(0, 2)])]
        )
        assert engine.n_placed == 4

    def test_same_batch_parent_spendable(self):
        engine = _engine()
        shards = engine.place_batch(
            [_tx(0, n_outputs=2), _tx(1, [(0, 0)]), _tx(2, [(0, 1)])]
        )
        assert len(shards) == 3

    def test_preplaced_placer_rejected(self):
        placer = make_placer("optchain", 4)
        placer.place(_tx(0))
        with pytest.raises(ConfigurationError, match="fresh placer"):
            PlacementEngine(placer)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            _engine(epoch_length=0)
        with pytest.raises(ConfigurationError):
            _engine(horizon_epochs=0)


class TestTruncation:
    def test_exact_policy_releases_only_fully_spent(self, small_stream):
        engine = _engine(epoch_length=500)
        reference = make_placer("optchain", 4)
        assert (
            engine.place_batch(small_stream)
            == reference.place_stream(small_stream)
        )
        stats = engine.stats()
        scorer = engine.placer.scorer
        assert stats.released_vectors > 0
        assert stats.live_vectors + stats.released_vectors == len(
            small_stream
        )
        # Exactly the fully-spent transactions are released (modulo the
        # final partial epoch, whose pending releases have not swept).
        for txid in range(len(small_stream)):
            if scorer._p_prime[txid] is None:
                assert txid not in engine._remaining

    def test_horizon_bounds_live_vectors(self, small_stream):
        engine = _engine(epoch_length=200, horizon_epochs=2)
        engine.place_batch(small_stream)
        stats = engine.stats()
        # Window: at most (horizon_epochs + 1) epochs of vectors, plus
        # the current partial epoch.
        bound = (2 + 2) * 200
        assert stats.live_vectors <= bound
        assert stats.peak_live_vectors <= bound
        assert stats.horizon_start == (2_000 // 200 - 2) * 200
        assert stats.tracked_unspent <= bound

    def test_horizon_spend_behind_horizon_accepted(self):
        engine = _engine(epoch_length=10, horizon_epochs=1)
        engine.place_batch([_tx(0, n_outputs=2)])
        engine.place_batch([_tx(i, [(0, 0)] if i == 1 else ()) for i in range(1, 40)])
        assert engine.horizon_start > 0
        # txid 0 has an unspent output but fell behind the horizon: a
        # spend is accepted (zero ancestry), not an error.
        shards = engine.place_batch([_tx(40, [(0, 1)])])
        assert len(shards) == 1

    def test_truncation_disabled_keeps_everything(self, small_stream):
        engine = _engine(epoch_length=100, truncate_spent=False)
        engine.place_batch(small_stream)
        stats = engine.stats()
        assert stats.released_vectors == 0
        assert stats.live_vectors == len(small_stream)

    def test_scorerless_strategy_tolerated(self, small_stream):
        engine = PlacementEngine(
            make_placer("omniledger", 4),
            epoch_length=100,
            horizon_epochs=2,
        )
        engine.place_batch(small_stream)
        stats = engine.stats()
        assert stats.live_vectors is None
        assert stats.released_vectors is None
        assert stats.horizon_start > 0

    def test_stats_roundtrip_dict(self, small_stream):
        engine = _engine(epoch_length=500)
        engine.place_batch(small_stream[:600])
        payload = engine.stats().as_dict()
        assert payload["n_placed"] == 600
        assert payload["strategy"] == "optchain"
        assert payload["epoch"] == 1
