"""The sharded service end to end: coordinator + real worker processes.

Everything here runs over real sockets with real ``multiprocessing``
workers (spawn context), exactly as ``repro serve --workers N`` does.
Slowish per test (each spawns worker processes); scales are kept small.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.service.client import (
    AsyncBinaryPlacementClient,
    AsyncPlacementClient,
    PlacementClient,
)
from repro.service.coordinator import ShardedPlacementServer
from repro.service.loadgen import run_loadgen_async

N_SHARDS = 4
LEASE = 600
SPEC = {"method": "optchain", "n_shards": N_SHARDS, "epoch_length": 500}


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(4_000, seed=7)


@pytest.fixture(scope="module")
def expected(stream):
    return make_placer("optchain", N_SHARDS).place_stream(stream)


def run_sharded(test_coro, n_workers=2, **kwargs):
    async def main():
        server = ShardedPlacementServer(
            dict(SPEC), n_workers, port=0, lease_length=LEASE, **kwargs
        )
        await server.start()
        try:
            await test_coro(server)
        finally:
            await server.stop()

    asyncio.run(main())


class TestGolden:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_sharded_placements_bit_identical(
        self, stream, expected, n_workers
    ):
        """The acceptance gate: --workers 1 (and 2) must reproduce the
        monolithic engine's placements exactly."""
        served = []

        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            for offset in range(0, len(stream), 250):
                served.extend(
                    await client.place(stream[offset : offset + 250])
                )
            await client.close()

        run_sharded(scenario, n_workers=n_workers)
        assert served == expected

    def test_json_clients_and_boundary_splits(self, stream, expected):
        """JSON codec through the coordinator, including a client batch
        that crosses a lease boundary (coordinator-side split+merge)."""
        served = []

        async def scenario(server):
            client = await AsyncPlacementClient.connect(port=server.port)
            # 450-tx chunks guarantee several lease-crossing requests
            # at LEASE=600.
            for offset in range(0, len(stream), 450):
                served.extend(
                    await client.place(stream[offset : offset + 450])
                )
            await client.close()

        run_sharded(scenario, n_workers=2)
        assert served == expected

    def test_loadgen_through_sharded_service(self, stream):
        async def scenario(server):
            report = await run_loadgen_async(
                port=server.port,
                stream=stream[:2_000],
                n_users=4,
                chunk_size=100,
            )
            assert report.errors == 0
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            stats = await client.stats()
            assert stats["n_placed"] == 2_000
            await client.close()

        run_sharded(scenario, n_workers=3)

    def test_merged_stats_and_ping(self, stream):
        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            for offset in range(0, 2_000, 250):
                await client.place(stream[offset : offset + 250])
            stats = await client.stats()
            assert stats["n_placed"] == 2_000
            assert stats["live_vectors"] is not None
            assert len(stats["partitions"]) == 2
            assert stats["support"]["live_vectors"] == stats[
                "live_vectors"
            ]
            ping = await client.ping()
            assert ping["workers"] == 2
            assert ping["degraded"] is None
            await client.close()

        run_sharded(scenario, n_workers=2)


class TestManifest:
    def test_spec_override_warned_and_stored_spec_wins(
        self, tmp_path, capsys
    ):
        """Restarting a checkpoint set with a different spec warns and
        adopts the stored configuration (the snapshots are what
        actually restore) - mirroring the single-process serve path."""
        base = str(tmp_path / "spec.snap")
        server = ShardedPlacementServer(
            dict(SPEC), 2, port=0, lease_length=LEASE,
            checkpoint_path=base,
        )
        server._cursor = 0
        server._write_manifest(0)

        requested = dict(SPEC, n_shards=8, method="optchain-topk")
        restarted = ShardedPlacementServer(
            requested, 2, port=0, lease_length=LEASE,
            checkpoint_path=base,
        )
        restarted._load_manifest()
        err = capsys.readouterr().err
        assert "n_shards=8" in err and "ignored" in err
        assert "method='optchain-topk'" in err
        # The stored spec is what the workers will be built from.
        assert restarted._spec["n_shards"] == SPEC["n_shards"]
        assert restarted._spec["method"] == "optchain"


class TestCheckpointRestart:
    def test_checkpoint_restart_continue(
        self, stream, expected, tmp_path
    ):
        base = str(tmp_path / "sharded.snap")
        served = []

        async def first_run(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            for offset in range(0, 2_000, 250):
                served.extend(
                    await client.place(stream[offset : offset + 250])
                )
            report = await client.checkpoint()
            assert report["bytes"] > 0
            assert report["n_placed"] == 2_000
            await client.close()

        run_sharded(first_run, n_workers=2, checkpoint_path=base)
        assert os.path.exists(base + ".manifest.json")
        assert os.path.exists(base + ".p0")
        assert os.path.exists(base + ".p1")

        async def second_run(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            ping = await client.ping()
            assert ping["n_placed"] == 2_000
            for offset in range(2_000, len(stream), 250):
                served.extend(
                    await client.place(stream[offset : offset + 250])
                )
            await client.close()

        run_sharded(second_run, n_workers=2, checkpoint_path=base)
        assert served == expected


class TestWorkerFailure:
    def test_idle_worker_killed_respawns_from_checkpoint(
        self, stream, expected, tmp_path
    ):
        base = str(tmp_path / "respawn.snap")
        served = []

        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            for offset in range(0, 2_000, 250):
                served.extend(
                    await client.place(stream[offset : offset + 250])
                )
            await client.checkpoint()
            # Kill an *idle* worker (not the lease holder) with
            # SIGKILL - no goodbye, no flush.
            granted = (await client.ping())["granted"]
            victim = server._workers[1 - granted]
            old_pid = victim.process.pid
            victim.process.kill()
            # The coordinator respawns it from its checkpoint; the
            # stream continues bit-identically through both the
            # survivor and the respawned worker. Wait for the *new*
            # process to have said hello (the kill itself is only
            # noticed asynchronously).
            for _ in range(300):
                if (
                    victim.alive
                    and victim.process.pid != old_pid
                    and (await client.ping())["degraded"] is None
                ):
                    break
                await asyncio.sleep(0.1)
            else:
                raise AssertionError("worker never respawned")
            for offset in range(2_000, len(stream), 250):
                served.extend(
                    await client.place(stream[offset : offset + 250])
                )
            assert (await client.ping())["degraded"] is None
            await client.close()

        run_sharded(scenario, n_workers=2, checkpoint_path=base)
        assert served == expected

    def test_worker_killed_mid_batch_fails_request_not_service(
        self, stream, tmp_path
    ):
        base = str(tmp_path / "midbatch.snap")

        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            await client.place(stream[:500])
            await client.checkpoint()
            # Kill the partition that owns the *next* range, then send
            # it a batch: the request must fail with an error (not
            # hang), and the coordinator must stay up.
            owner = server._owner_of(500)
            server._workers[owner].process.kill()
            result = await asyncio.wait_for(
                client.place_nowait(stream[500 : 500 + 100]), timeout=30
            )
            assert result["ok"] is False
            assert (await client.ping())["ok"]
            await client.close()

        run_sharded(scenario, n_workers=2, checkpoint_path=base)

    def test_dead_worker_without_checkpoint_degrades(self, stream):
        # Without a checkpoint path there is no snapshot *and* no
        # journal. A worker that dies holding only unreconstructible
        # placed state (a full past lease, here [600, 1200) with
        # lease_length 600) must degrade the service, not silently
        # respawn empty. (A worker with nothing placed - expected
        # cursor 0 - is recoverable by a fresh respawn instead.)
        async def scenario(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            await client.place(stream[:1500])
            granted = (await client.ping())["granted"]
            assert granted == 0  # owner of txid 1500 (lease 2)
            server._workers[1].process.kill()
            for _ in range(100):
                ping = await client.ping()
                if ping["degraded"]:
                    break
                await asyncio.sleep(0.1)
            assert ping["degraded"]
            assert "no checkpoint or journal" in ping["degraded"]
            result = await asyncio.wait_for(
                client.place_nowait(stream[1500:1600]), timeout=30
            )
            assert result["ok"] is False
            assert "degraded" in result["error"]
            await client.close()

        run_sharded(scenario, n_workers=2)


class TestSigtermCli:
    def test_sigterm_drain_with_multiple_workers(self, tmp_path):
        """`repro serve --workers 3` under SIGTERM: drain, checkpoint
        every partition, write the manifest, exit 0."""
        base = tmp_path / "cli.snap"
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(src)
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--shards",
                "4",
                "--workers",
                "3",
                "--lease-length",
                "200",
                "--checkpoint",
                str(base),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "3 workers" in banner, banner
            port = int(banner.split(":")[-1].split()[0])
            batch = synthetic_stream(1_000, seed=5)
            deadline = time.time() + 60
            while True:
                try:
                    client = PlacementClient(port=port)
                    break
                except OSError:
                    assert time.time() < deadline
                    time.sleep(0.2)
            with client:
                shards = []
                for offset in range(0, 1_000, 150):
                    shards.extend(
                        client.place(batch[offset : offset + 150])
                    )
                assert len(shards) == 1_000
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert process.returncode == 0, process.stderr.read()
        assert (tmp_path / "cli.snap.manifest.json").exists()
        for index in range(3):
            assert (tmp_path / f"cli.snap.p{index}").exists()
        # The checkpoints restore into a service that continues the
        # stream with the placements a monolithic engine would make.
        expected = make_placer("optchain", 4).place_stream(
            synthetic_stream(1_400, seed=5)
        )
        tail = synthetic_stream(1_400, seed=5)[1_000:]
        served = []

        async def resume(server):
            client = await AsyncBinaryPlacementClient.connect(
                port=server.port
            )
            assert (await client.ping())["n_placed"] == 1_000
            served.extend(await client.place(tail))
            await client.close()

        async def main():
            server = ShardedPlacementServer(
                {"method": "optchain", "n_shards": 4},
                3,
                port=0,
                lease_length=200,
                checkpoint_path=str(base),
            )
            await server.start()
            try:
                await resume(server)
            finally:
                await server.stop()

        asyncio.run(main())
        assert served == expected[1_000:]
