"""Figure 3 - latency and throughput across (rate, #shards) per method.

The paper shows four panels (OptChain, OmniLedger, Metis k-way, Greedy),
each a pair of surfaces: average latency and throughput as functions of
the transaction rate and shard count. Expected shape: every method's
latency falls as shards grow; OptChain reaches rate-matching throughput
with fewer shards than anyone else; OmniLedger saturates earliest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import METHODS, simulate_grid


@dataclass(frozen=True, slots=True)
class GridCell:
    """One (method, shards, rate) measurement."""

    method: str
    n_shards: int
    tx_rate: float
    throughput: float
    average_latency: float
    max_latency: float
    cross_fraction: float
    drained: bool


def run(scale: ExperimentScale, seed: int = 1) -> list[GridCell]:
    """The full grid of Fig. 3 (shared with Figs. 4, 8, 9)."""
    grid = simulate_grid(scale, METHODS, seed)
    cells = []
    for (method, n_shards, tx_rate), result in grid.items():
        cells.append(
            GridCell(
                method=method,
                n_shards=n_shards,
                tx_rate=tx_rate,
                throughput=result.throughput,
                average_latency=result.average_latency,
                max_latency=result.max_latency,
                cross_fraction=result.cross_fraction,
                drained=result.drained,
            )
        )
    return cells


def as_table(cells: list[GridCell]) -> str:
    """One panel per method: rows = rates, columns = shard counts."""
    methods = sorted({cell.method for cell in cells})
    shard_counts = sorted({cell.n_shards for cell in cells})
    rates = sorted({cell.tx_rate for cell in cells})
    by_key = {
        (cell.method, cell.n_shards, cell.tx_rate): cell for cell in cells
    }
    sections = []
    for method in methods:
        rows = []
        for rate in rates:
            row: list[object] = [int(rate)]
            for k in shard_counts:
                cell = by_key[(method, k, rate)]
                row.append(
                    f"{cell.average_latency:.1f}s/{cell.throughput:.0f}"
                )
            rows.append(row)
        sections.append(
            format_table(
                ["rate"] + [f"k={k}" for k in shard_counts],
                rows,
                title=(
                    f"Fig. 3 ({method}): avg latency / throughput per "
                    f"(rate, #shards)"
                ),
            )
        )
    return "\n\n".join(sections)


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
