"""Tests for the strategy-spec language (repro.core.spec).

The spec is the single configuration surface every entry point shares
(CLI, experiments runner, snapshot headers, worker specs), so the
grammar, the canonical rendering, and the factory routing are pinned
here independently of any one consumer.
"""

from __future__ import annotations

import pytest

from repro.core.optchain import OptChainPlacer, TopKOptChainPlacer
from repro.core.placement import PlacementStrategy, make_placer
from repro.core.spec import (
    NUMPY_METHODS,
    TOPK_METHODS,
    StrategySpec,
    make_placer_from_spec,
)
from repro.errors import ConfigurationError


class TestParse:
    def test_plain_method(self):
        spec = StrategySpec.parse("optchain")
        assert spec.method == "optchain"
        assert spec.cap is None
        assert spec.backend == "auto"

    def test_cap_int(self):
        spec = StrategySpec.parse("optchain-topk:cap=4")
        assert spec.cap == 4

    def test_cap_auto_rate(self):
        spec = StrategySpec.parse("optchain-topk:cap=auto:0.01")
        assert spec.cap == "auto:0.01"

    def test_backend_and_cap(self):
        spec = StrategySpec.parse(
            "optchain-topk:cap=auto:0.01,backend=numpy"
        )
        assert spec.cap == "auto:0.01"
        assert spec.backend == "numpy"

    def test_whitespace_tolerated(self):
        spec = StrategySpec.parse("  optchain-topk:cap=4 ")
        assert spec.method == "optchain-topk"
        assert spec.cap == 4

    @pytest.mark.parametrize(
        "text",
        ["", "   ", ":cap=4"],
    )
    def test_empty_rejected(self, text):
        with pytest.raises(ConfigurationError):
            StrategySpec.parse(text)

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown spec option"):
            StrategySpec.parse("optchain:bogus=1")

    def test_malformed_option_rejected(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            StrategySpec.parse("optchain:cap")
        with pytest.raises(ConfigurationError, match="key=value"):
            StrategySpec.parse("optchain-topk:cap=")

    def test_bad_cap_rejected(self):
        with pytest.raises(ConfigurationError, match="support cap"):
            StrategySpec.parse("optchain-topk:cap=x")
        with pytest.raises(ConfigurationError):
            StrategySpec.parse("optchain-topk:cap=0")
        with pytest.raises(ConfigurationError):
            StrategySpec.parse("optchain-topk:cap=auto:nope")

    def test_cap_on_uncapped_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="does not take"):
            StrategySpec.parse("optchain:cap=4")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            StrategySpec.parse("optchain:backend=rust")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "optchain",
            "optchain-topk:cap=4",
            "optchain-topk:cap=auto:0.01",
            "optchain:backend=python",
            "optchain:backend=numpy",
            "optchain-topk:cap=16,backend=python",
            "t2s-topk:cap=8",
            "omniledger",
        ],
    )
    def test_str_parse_round_trip(self, text):
        spec = StrategySpec.parse(text)
        assert str(spec) == text
        assert StrategySpec.parse(str(spec)) == spec

    def test_auto_backend_omitted_from_canonical_form(self):
        assert str(StrategySpec.parse("optchain:backend=auto")) == "optchain"

    def test_with_cap_with_backend(self):
        spec = StrategySpec.parse("optchain-topk")
        assert spec.with_cap(4).cap == 4
        assert spec.with_backend("python").backend == "python"
        with pytest.raises(ConfigurationError):
            StrategySpec.parse("optchain").with_cap(4)
        with pytest.raises(ConfigurationError):
            spec.with_backend("rust")


class TestFactoryRouting:
    def test_plain_name_keeps_registry_path(self):
        placer = make_placer("optchain", 8)
        assert type(placer) is OptChainPlacer
        assert placer.backend == "python"

    def test_plain_name_with_kwargs(self):
        placer = make_placer("optchain-topk", 8, support_cap=3)
        assert type(placer) is TopKOptChainPlacer
        assert placer.support_cap == 3

    def test_spec_string_routes_through_spec(self):
        placer = make_placer("optchain-topk:cap=3,backend=python", 8)
        assert type(placer) is TopKOptChainPlacer
        assert placer.support_cap == 3

    def test_spec_instance_accepted(self):
        spec = StrategySpec.parse("optchain:backend=python")
        placer = make_placer(spec, 8)
        assert type(placer) is OptChainPlacer

    def test_backend_kwarg_desugars(self):
        placer = make_placer("optchain", 8, backend="python")
        assert type(placer) is OptChainPlacer

    def test_make_placer_from_spec(self):
        placer = make_placer_from_spec("optchain-topk:cap=2", 8)
        assert placer.support_cap == 2

    def test_cap_conflict_rejected(self):
        with pytest.raises(ConfigurationError, match="both"):
            make_placer("optchain-topk:cap=2", 8, support_cap=3)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown placement"):
            make_placer("nope:backend=python", 8)

    def test_numpy_backend_on_unsupported_method_rejected(self):
        with pytest.raises(ConfigurationError, match="no numpy backend"):
            StrategySpec.parse("greedy:backend=numpy").resolve_backend()

    def test_backend_subclasses_never_displace_registry(self):
        # The registry must keep pointing at the canonical python
        # classes even after the numpy module (whose subclasses inherit
        # the registered names) has been imported.
        pytest.importorskip("numpy")
        import repro.core.backends.numpy_backend  # noqa: F401

        assert PlacementStrategy.registry["optchain"] is OptChainPlacer
        assert (
            PlacementStrategy.registry["optchain-topk"]
            is TopKOptChainPlacer
        )


class TestOfPlacer:
    def test_python_exact(self):
        spec = StrategySpec.of_placer(OptChainPlacer(8))
        assert spec.method == "optchain"
        assert spec.cap is None
        assert spec.backend == "python"

    def test_fixed_cap(self):
        spec = StrategySpec.of_placer(TopKOptChainPlacer(8, support_cap=5))
        assert spec == StrategySpec("optchain-topk", 5, "python")

    def test_adaptive_cap_reads_back_as_configured(self):
        placer = make_placer(
            "optchain-topk", 8, support_cap="auto:0.01"
        )
        spec = StrategySpec.of_placer(placer)
        assert spec.cap == "auto:0.01"

    def test_numpy_placer(self):
        pytest.importorskip("numpy")
        placer = make_placer("optchain", 8, backend="numpy")
        spec = StrategySpec.of_placer(placer)
        assert spec == StrategySpec("optchain", None, "numpy")

    def test_resolution_consistency(self):
        # auto resolves to a concrete backend that of_placer reports.
        spec = StrategySpec.parse("optchain")
        resolved = spec.resolve_backend()
        placer = spec.build(8)
        assert placer.backend == resolved


class TestConstants:
    def test_method_sets(self):
        assert "optchain-topk" in TOPK_METHODS
        assert "t2s-topk" in TOPK_METHODS
        assert NUMPY_METHODS == frozenset({"optchain", "optchain-topk"})
