"""UTXO transaction model.

The unspent-transaction-output model from Bitcoin, which OptChain (and the
sharding protocols it improves: OmniLedger, RapidChain) is built on. A
transaction consumes previously created outputs and creates new ones;
outputs are spendable exactly once.

Public API:

- :class:`~repro.utxo.transaction.Transaction` with
  :class:`~repro.utxo.transaction.OutPoint` and
  :class:`~repro.utxo.transaction.TxOutput`.
- :class:`~repro.utxo.utxoset.UTXOSet` - the authoritative spent/unspent
  ledger state with double-spend detection.
- :func:`~repro.utxo.validation.validate_transaction` plus the individual
  rules in :mod:`repro.utxo.validation`.
"""

from repro.utxo.transaction import OutPoint, Transaction, TxOutput
from repro.utxo.utxoset import UTXOSet
from repro.utxo.validation import validate_structure, validate_transaction

__all__ = [
    "OutPoint",
    "Transaction",
    "TxOutput",
    "UTXOSet",
    "validate_structure",
    "validate_transaction",
]
