"""Account-model workloads (Ethereum-style transfers).

§II of the paper notes that Ethereum 2.0 shards an *account* model where
"each transaction has only one input and one output". In TaN terms an
account-model stream is a set of interleaved chains: each account's
transactions form a path (every transfer spends the account's single
running state output), and a transfer also creates/feeds the receiver's
state.

This module generates such workloads so placement strategies can be
evaluated beyond UTXO - the TaN machinery applies unchanged, and the
ablation bench compares how much of OptChain's advantage survives when
fan-in collapses to at most two parents (sender state + receiver state).

Mechanics: each account's latest state is one UTXO. A transfer from
``a`` to ``b`` spends ``a``'s state (and ``b``'s state when it exists,
merging the receipt) and outputs the two new states. That is the closest
UTXO encoding of an account-model transfer and keeps streams valid
against :class:`~repro.utxo.utxoset.UTXOSet`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.wallets import WalletModel
from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.utxo.transaction import OutPoint, Transaction, TxOutput

INITIAL_BALANCE = 1_000_000


@dataclass(frozen=True, slots=True)
class AccountModelConfig:
    """Parameters of the account-model generator.

    Accounts come from the same community/activity machinery as the
    UTXO generator (via :class:`WalletModel`) so the two workloads have
    comparable locality.
    """

    n_accounts: int = 2_000
    n_communities: int = 64
    intra_community_prob: float = 0.92
    community_exponent: float = 1.3
    activity_exponent: float = 0.8
    tx_rate: float = 1_000.0
    #: probability a transfer merges the receiver's state (2 inputs)
    #: instead of only spending the sender's (1 input).
    merge_receiver_prob: float = 0.8

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on bad parameters."""
        if self.n_accounts < 2:
            raise ConfigurationError("n_accounts must be >= 2")
        if not 0.0 <= self.merge_receiver_prob <= 1.0:
            raise ConfigurationError(
                "merge_receiver_prob must be in [0, 1]"
            )
        if self.tx_rate <= 0:
            raise ConfigurationError("tx_rate must be > 0")


class AccountModelGenerator:
    """Generates account-model transfer streams."""

    def __init__(
        self, config: AccountModelConfig | None = None, seed: int = 0
    ) -> None:
        self.config = config or AccountModelConfig()
        self.config.validate()
        self._rng = make_rng(seed)
        self._wallets = WalletModel(
            n_wallets=self.config.n_accounts,
            rng=self._rng,
            activity_exponent=self.config.activity_exponent,
            n_communities=self.config.n_communities,
            intra_community_prob=self.config.intra_community_prob,
            community_exponent=self.config.community_exponent,
        )
        # account -> outpoint of its current state (None before genesis).
        self._state: list[OutPoint | None] = [None] * self.config.n_accounts
        self._balance = [0] * self.config.n_accounts
        self._existing: list[int] = []  # accounts with a state output
        self._next_fresh = 0  # next never-funded account id
        self._next_txid = 0

    def generate(self, n_transactions: int) -> list[Transaction]:
        """Materialize ``n_transactions`` transfers (plus genesis txs)."""
        if n_transactions < 0:
            raise ConfigurationError("n_transactions must be >= 0")
        return [self._next_transaction() for _ in range(n_transactions)]

    def _next_transaction(self) -> Transaction:
        txid = self._next_txid
        self._next_txid += 1
        sender = self._pick_sender()
        if (
            sender is None
            or self._state[sender] is None
            or self._balance[sender] < 2
        ):
            # No population yet, or the drawn account is drained: mint.
            return self._genesis(txid)
        receiver = self._wallets.pick_payee(sender)
        if receiver == sender:
            receiver = (receiver + 1) % self.config.n_accounts
        amount = max(1, self._balance[sender] // 4)

        inputs = [self._state[sender]]
        merged = (
            self._state[receiver] is not None
            and self._rng.random() < self.config.merge_receiver_prob
        )
        if merged:
            inputs.append(self._state[receiver])
        sender_balance = self._balance[sender] - amount
        receiver_balance = self._balance[receiver] + amount if merged else amount

        outputs = [
            TxOutput(value=sender_balance, address=sender),
            TxOutput(value=receiver_balance, address=receiver),
        ]
        tx = Transaction(
            txid=txid,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            timestamp=txid / self.config.tx_rate,
            size_bytes=250,
        )
        self._state[sender] = OutPoint(txid, 0)
        self._balance[sender] = sender_balance
        if self._state[receiver] is None:
            self._existing.append(receiver)
        # The receipt output always becomes the receiver's live state;
        # when unmerged, the receiver's previous state output is simply
        # orphaned as unspent (merging it later would double-spend).
        self._state[receiver] = OutPoint(txid, 1)
        self._balance[receiver] = receiver_balance
        return tx

    def _pick_sender(self) -> int | None:
        # Bootstrap until a minimal population exists, then transfer.
        if len(self._existing) < max(2, self.config.n_accounts // 50):
            return None
        return self._existing[self._rng.randrange(len(self._existing))]

    def _genesis(self, txid: int) -> Transaction:
        """Fund a new account (the account model's implicit minting)."""
        if self._next_fresh < self.config.n_accounts:
            account = self._next_fresh
            self._next_fresh += 1
        else:
            account = 0
        tx = Transaction(
            txid=txid,
            inputs=(),
            outputs=(TxOutput(value=INITIAL_BALANCE, address=account),),
            timestamp=txid / self.config.tx_rate,
            size_bytes=150,
        )
        if self._state[account] is None:
            self._state[account] = OutPoint(txid, 0)
            self._balance[account] = INITIAL_BALANCE
            self._existing.append(account)
        return tx


def account_model_stream(
    n_transactions: int,
    seed: int = 0,
    config: AccountModelConfig | None = None,
) -> list[Transaction]:
    """One-call helper mirroring :func:`synthetic_stream`."""
    return AccountModelGenerator(config=config, seed=seed).generate(
        n_transactions
    )
