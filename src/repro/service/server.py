"""Asyncio placement server: dual-codec protocol, micro-batched dispatch.

Architecture (single process, single event loop):

- **Connection handlers** sniff the first byte to pick the codec -
  binary frames (:data:`~repro.service.wire.BIN_MAGIC`) or NDJSON - and
  spawn a task per request, so one slow ``place`` does not stall a
  pipelining client's later lines (responses carry the request ``id``).
- **The sequencer** keys every ``place`` request by its first txid in a
  reorder buffer. Clients replay disjoint chunks of one global stream
  (see :mod:`repro.datasets.replay`); whichever order their requests
  arrive in, only the contiguous run starting at the engine's
  ``n_placed`` cursor is dispatchable.
- **The dispatcher** (one task) pops that contiguous run, *coalesces*
  consecutive requests into a single micro-batch (up to
  ``max_batch_txs``), and feeds it to
  :meth:`~repro.service.engine.PlacementEngine.place_batch` - one entry
  into the fused allocation-free hot path for many small requests. If a
  merged batch is rejected, it is replayed request-by-request so only
  the offending request fails (engine validation is atomic, so the
  retry is exact).
- **Shutdown** (``shutdown`` op, SIGTERM, or SIGINT via the CLI) stops
  accepting work, drains every dispatchable request, answers the rest
  with a ``shutdown`` error, writes a checkpoint when a path is
  configured, and only then closes - a restarted server resumes from
  the checkpoint bit-identically.

Placement is CPU-bound Python, so it intentionally runs *on* the event
loop: a worker thread would serialize on the GIL anyway and add
handoff latency. Micro-batches keep each blocking stretch short.
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter
from typing import Any

from repro.errors import EngineError, ProtocolError
from repro.obs.metrics import ServiceMetrics, rss_kb, service_families
from repro.obs.prom import MetricsServer, render_families
from repro.service.engine import PlacementEngine
from repro.service.wire import (
    BIN_MAGIC,
    KIND_PLACE,
    OPS,
    PROTOCOL_VERSION,
    decode_batch,
    decode_place_payload,
    encode_error_response,
    encode_response_for,
    op_of_kind,
    read_frame,
)
from repro.utxo.transaction import Transaction

DEFAULT_PORT = 9171


class _Pending:
    """One enqueued ``place`` request waiting for dispatch."""

    __slots__ = ("txs", "future")

    def __init__(
        self, txs: list[Transaction], future: "asyncio.Future[dict]"
    ) -> None:
        self.txs = txs
        self.future = future

    def resolve(self, shards: list[int]) -> None:
        if not self.future.done():
            self.future.set_result({"ok": True, "shards": shards})

    def fail(self, code: str, error: str) -> None:
        if not self.future.done():
            self.future.set_result(
                {"ok": False, "code": code, "error": error}
            )


class PlacementServer:
    """A long-lived placement service over one :class:`PlacementEngine`."""

    def __init__(
        self,
        engine: PlacementEngine,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        max_batch_txs: int = 8192,
        max_reorder_requests: int = 1024,
        max_line_bytes: int = 8 * 1024 * 1024,
        checkpoint_path: "str | None" = None,
        checkpoint_compress: bool = False,
        checkpoint_delta_every: "int | None" = None,
        metrics_port: "int | None" = None,
        metrics_host: "str | None" = None,
    ) -> None:
        self._engine = engine
        self._host = host
        self._port = port
        self._max_batch_txs = max_batch_txs
        self._max_reorder = max_reorder_requests
        self._max_line_bytes = max_line_bytes
        self._checkpoint_path = checkpoint_path
        self._checkpoint_compress = checkpoint_compress
        # Delta cadence: with N, checkpoints 1..N-1 after each full
        # write ``<path>.delta`` (O(activity since base)); every Nth is
        # a full compaction. None = always full.
        self._checkpoint_delta_every = checkpoint_delta_every
        self._checkpoints_since_full = 0
        self._pending: dict[int, _Pending] = {}
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._dispatch_event = asyncio.Event()
        self._stopping = False
        self._stopped = asyncio.Event()
        self._line_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        #: Live serving metrics (always on: one histogram record and
        #: two integer bumps per dispatched micro-batch, bench-gated
        #: under 5% of engine throughput).
        self.metrics = ServiceMetrics()
        self._metrics_server: "MetricsServer | None" = (
            MetricsServer(
                self._render_metrics,
                host=metrics_host if metrics_host is not None else host,
                port=metrics_port,
            )
            if metrics_port is not None
            else None
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def engine(self) -> PlacementEngine:
        return self._engine

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return self._port

    @property
    def metrics_port(self) -> "int | None":
        """Bound ``/metrics`` port, None when the endpoint is off."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection,
            self._host,
            self._port,
            limit=self._max_line_bytes,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        if self._metrics_server is not None:
            await self._metrics_server.start()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Drain, checkpoint (if configured), close. Idempotent."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self._dispatch_event.set()
        if self._dispatcher is not None:
            try:
                await self._dispatcher
            except Exception:  # noqa: BLE001 - a dead dispatcher must
                # not block the drain/checkpoint sequence below.
                pass
        for key in sorted(self._pending):
            self._pending.pop(key).fail(
                "shutdown",
                "server shut down before the txid gap before this "
                "request was filled",
            )
        if self._checkpoint_path is not None:
            self._do_checkpoint(self._checkpoint_path)
        if self._metrics_server is not None:
            await self._metrics_server.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._line_tasks:
            await asyncio.gather(
                *list(self._line_tasks), return_exceptions=True
            )
        for writer in list(self._writers):
            writer.close()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- connection handling -----------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        try:
            # Protocol sniff: binary frames open with BIN_MAGIC (0xF5),
            # NDJSON with a printable byte. One connection speaks one
            # protocol; both coexist on the port.
            try:
                first = await reader.readexactly(1)
            except (EOFError, ConnectionError):
                return
            if first[0] == BIN_MAGIC:
                await self._binary_loop(first, reader, writer, write_lock)
            else:
                await self._json_loop(first, reader, writer, write_lock)
        finally:
            self._writers.discard(writer)
            # In-flight requests from this connection stay in the
            # sequencer: their txids are part of the global order, so
            # they are placed (or failed) normally - only the response
            # write is skipped once the peer is gone.
            if not writer.is_closing():
                writer.close()

    async def _json_loop(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        prefix = first
        while True:
            try:
                line = prefix + await reader.readline()
                prefix = b""
            except (ValueError, asyncio.LimitOverrunError):
                # Line overran the stream limit; the framing is now
                # unrecoverable on this connection.
                await self._write(
                    writer,
                    write_lock,
                    {
                        "id": None,
                        "ok": False,
                        "code": "protocol",
                        "error": (
                            "request line exceeds "
                            f"{self._max_line_bytes} bytes"
                        ),
                    },
                )
                return
            except ConnectionError:
                return
            if not line:
                return
            data = line.strip()
            if not data:
                continue
            task = asyncio.create_task(
                self._serve_line(data, writer, write_lock)
            )
            self._line_tasks.add(task)
            task.add_done_callback(self._line_tasks.discard)

    async def _binary_loop(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        while True:
            try:
                frame = await read_frame(reader, first_byte=first)
            except ProtocolError as exc:
                # Framing is unrecoverable (bad magic mid-stream,
                # oversized payload, EOF inside a frame): report once
                # and close, mirroring the NDJSON overrun path.
                await self._write_frame(
                    writer,
                    write_lock,
                    encode_error_response(0, "protocol", str(exc)),
                )
                return
            except ConnectionError:
                return
            first = b""
            if frame is None:
                return
            kind, request_id, payload = frame
            task = asyncio.create_task(
                self._serve_frame(
                    kind, request_id, payload, writer, write_lock
                )
            )
            self._line_tasks.add(task)
            task.add_done_callback(self._line_tasks.discard)

    async def _serve_frame(
        self,
        kind: int,
        request_id: int,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            if kind == KIND_PLACE:
                response = await self._place_frame(payload)
            else:
                op = op_of_kind(kind)
                message: dict[str, Any] = {"op": op}
                if payload:
                    try:
                        body = json.loads(payload)
                    except (
                        json.JSONDecodeError,
                        UnicodeDecodeError,
                    ) as exc:
                        raise ProtocolError(
                            f"request payload is not valid JSON: {exc}"
                        )
                    if not isinstance(body, dict):
                        raise ProtocolError(
                            "request payload must be a JSON object"
                        )
                    message.update(body)
                response = await self._handle(message)
        except ProtocolError as exc:
            response = {"ok": False, "code": "protocol", "error": str(exc)}
        except EngineError as exc:
            response = {"ok": False, "code": "engine", "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - one bad frame must not
            # take the server down; report and keep serving.
            response = {
                "ok": False,
                "code": "protocol",
                "error": f"internal error handling request: {exc!r}",
            }
        await self._write_frame(
            writer, write_lock, encode_response_for(request_id, response)
        )

    async def _write_frame(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame: bytes,
    ) -> None:
        try:
            async with write_lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, RuntimeError):
            # Peer vanished mid-response; state already advanced and
            # the stream stays consistent for everyone else.
            pass

    async def _serve_line(
        self,
        data: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id: Any = None
        try:
            try:
                message = json.loads(data)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"request is not valid JSON: {exc}")
            if isinstance(message, dict):
                request_id = message.get("id")
            response = await self._handle(message)
        except ProtocolError as exc:
            response = {"ok": False, "code": "protocol", "error": str(exc)}
        except EngineError as exc:
            response = {"ok": False, "code": "engine", "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - one bad line must not
            # take the server down; report and keep serving.
            response = {
                "ok": False,
                "code": "protocol",
                "error": f"internal error handling request: {exc!r}",
            }
        response["id"] = request_id
        await self._write(writer, write_lock, response)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: dict,
    ) -> None:
        payload = json.dumps(response, separators=(",", ":")).encode()
        try:
            async with write_lock:
                writer.write(payload + b"\n")
                await writer.drain()
        except (ConnectionError, RuntimeError):
            # Peer vanished mid-response; nothing to do - state already
            # advanced and the stream stays consistent for everyone else.
            pass

    # -- request handling --------------------------------------------------

    async def _handle(self, message: Any) -> dict:
        if not isinstance(message, dict):
            raise ProtocolError("request must be a JSON object")
        op = message.get("op")
        if op not in OPS:
            raise ProtocolError(
                f"unknown op {op!r}; expected one of {', '.join(OPS)}"
            )
        if op == "place":
            return await self._handle_place(message)
        if op == "stats":
            return {
                "ok": True,
                "stats": self._engine.stats().as_dict(),
                "obs": self._obs_dict(),
            }
        if op == "checkpoint":
            path = message.get("path") or self._checkpoint_path
            if not path:
                raise ProtocolError(
                    "no checkpoint path: pass \"path\" or start the "
                    "server with one"
                )
            size = self._do_checkpoint(path)
            return {"ok": True, "path": str(path), "bytes": size}
        if op == "ping":
            return {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "n_placed": self._engine.n_placed,
            }
        # shutdown: ack first, then stop out-of-band so this handler
        # (a line task stop() would otherwise wait on) can finish.
        asyncio.get_running_loop().create_task(self.stop())
        return {"ok": True}

    def _obs_dict(self) -> dict[str, Any]:
        """Observability sidecar of the ``stats`` reply."""
        monitor = self._engine.drift_monitor
        return {
            "metrics": self.metrics.as_dict(),
            "wal": None,
            "rss_kb": rss_kb(),
            "drift": monitor.as_dict() if monitor is not None else None,
        }

    async def _render_metrics(self) -> str:
        """Scrape body for the single-process server (overridden by the
        sharded coordinator, which aggregates worker stats)."""
        engine_stats = self._engine.stats().as_dict()
        monitor = self._engine.drift_monitor
        families = service_families(
            {
                "spec": engine_stats.get("spec", ""),
                "mode": "single",
                "workers": 0,
            },
            [
                {
                    "partition": "0",
                    "engine": engine_stats,
                    "metrics": self.metrics.as_dict(),
                    "drift": (
                        monitor.as_dict() if monitor is not None else None
                    ),
                    "rss_kb": rss_kb(),
                }
            ],
        )
        return render_families(families)

    def _do_checkpoint(self, path: "str | pathlib.Path") -> int:
        """One checkpoint at the configured full/delta cadence.

        An explicit non-configured ``path`` always gets a full
        snapshot (deltas only make sense against a stable base file).
        """
        every = self._checkpoint_delta_every
        base = self._engine._delta_base
        tracking = self._engine._dirty_parents is not None
        delta = (
            every is not None
            and every > 1
            and str(path) == str(self._checkpoint_path)
            and base is not None
            and tracking
            and base["path"] == str(path)
            and self._checkpoints_since_full % every != 0
        )
        size = self._engine.checkpoint(
            path,
            compress=self._checkpoint_compress,
            delta=delta,
            # Full saves start (or continue) the dirty journal only
            # when the delta cadence is configured.
            track_delta=(
                None if delta else every is not None and every > 1
            ),
        )
        if delta:
            self._checkpoints_since_full += 1
        else:
            self._checkpoints_since_full = 1
        return size

    async def _handle_place(self, message: dict) -> dict:
        return await self._place_request(decode_batch(message.get("txs")))

    async def _place_frame(self, payload: bytes) -> dict:
        """Binary ``place``: decode here, place locally. The sharded
        coordinator overrides this to route the *raw payload* to the
        owning worker without decoding it."""
        return await self._place_request(decode_place_payload(payload))

    async def _place_request(self, txs: list[Transaction]) -> dict:
        """Sequence one decoded ``place`` batch (both codecs land here)."""
        if self._stopping:
            return {
                "ok": False,
                "code": "shutdown",
                "error": "server is shutting down",
            }
        if len(txs) > self._max_batch_txs:
            raise ProtocolError(
                f"batch of {len(txs)} exceeds max_batch_txs="
                f"{self._max_batch_txs}"
            )
        first = txs[0].txid
        if first < self._engine.n_placed:
            # A range placed *in full* is answered from the recorded
            # assignments: a client resubmitting after a lost response
            # (timeout, connection reset) gets the identical shards
            # back instead of an error. Partial overlap stays an error
            # - it is a txid-accounting bug, not a retry.
            if first + len(txs) <= self._engine.n_placed:
                return {
                    "ok": True,
                    "shards": list(
                        self._engine.placer._assignment[
                            first : first + len(txs)
                        ]
                    ),
                }
            raise EngineError(
                f"transactions from {first} were already placed "
                f"(next expected: {self._engine.n_placed})"
            )
        if first in self._pending:
            # Likely the same client retrying while its original
            # request still waits for a txid gap: retryable, the
            # original will answer (or fail) soon.
            self.metrics.retry_replies += 1
            return {
                "ok": False,
                "code": "retry",
                "error": (
                    f"a request starting at txid {first} is already "
                    "queued; retry later"
                ),
            }
        if len(self._pending) >= self._max_reorder:
            self.metrics.overload_replies += 1
            return {
                "ok": False,
                "code": "overload",
                "error": (
                    f"reorder buffer full ({self._max_reorder} "
                    "requests waiting for earlier txids); retry later"
                ),
            }
        future: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[first] = _Pending(txs, future)
        self._dispatch_event.set()
        return await future

    # -- the dispatcher ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._dispatch_event.wait()
            self._dispatch_event.clear()
            await self._dispatch_ready()
            if self._stopping:
                return

    async def _dispatch_ready(self) -> None:
        """Place every currently dispatchable request.

        Yields to the event loop between coalesced micro-batches so a
        large dispatchable backlog cannot starve pings, new lines, or
        the blocking client's socket timeout; the engine is quiescent
        at every yield point, which is what keeps mid-backlog
        checkpoints consistent.
        """
        engine = self._engine
        pending = self._pending
        while pending:
            next_txid = engine.n_placed
            entry = pending.pop(next_txid, None)
            if entry is None:
                # Requests the cursor has passed (their range overlaps
                # something already placed) can never dispatch: fail
                # them now instead of leaking reorder slots + hanging
                # their clients until shutdown.
                stale = [key for key in pending if key < next_txid]
                for key in stale:
                    stale_entry = pending.pop(key)
                    if key + len(stale_entry.txs) <= next_txid:
                        # A duplicate the cursor passed while it sat in
                        # the queue: answer it from the recorded
                        # assignments, same as an up-front resubmission.
                        stale_entry.resolve(
                            list(
                                engine.placer._assignment[
                                    key : key + len(stale_entry.txs)
                                ]
                            )
                        )
                        continue
                    stale_entry.fail(
                        "engine",
                        f"transactions from {key} were already placed "
                        f"(next expected: {next_txid})",
                    )
                if not stale:
                    return
                continue
            group = [entry]
            batch = list(entry.txs)
            run_next = next_txid + len(batch)
            while len(batch) < self._max_batch_txs:
                follower = pending.pop(run_next, None)
                if follower is None:
                    break
                group.append(follower)
                batch.extend(follower.txs)
                run_next += len(follower.txs)
            try:
                started = perf_counter()
                shards = engine.place_batch(batch)
                self.metrics.record_batch(
                    len(batch), perf_counter() - started
                )
            except EngineError as exc:
                self.metrics.error_replies += 1
                if len(group) == 1:
                    entry.fail("engine", str(exc))
                    continue
                # Atomic validation means nothing was placed; replay
                # one request at a time so only the offender fails
                # (later requests then fail on the txid gap it left,
                # which is the honest outcome).
                for member in group:
                    try:
                        started = perf_counter()
                        shards = engine.place_batch(member.txs)
                        self.metrics.record_batch(
                            len(member.txs), perf_counter() - started
                        )
                        member.resolve(shards)
                    except EngineError as member_exc:
                        self.metrics.error_replies += 1
                        member.fail("engine", str(member_exc))
                continue
            except Exception as exc:  # noqa: BLE001 - a placer bug must
                # fail these requests, not kill the dispatcher: every
                # later request (and the shutdown drain) still needs it.
                for member in group:
                    member.fail(
                        "engine",
                        f"internal error placing batch: {exc!r}",
                    )
                continue
            offset = 0
            for member in group:
                count = len(member.txs)
                member.resolve(shards[offset : offset + count])
                offset += count
            await asyncio.sleep(0)


async def start_server(
    engine: PlacementEngine,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    **kwargs: Any,
) -> PlacementServer:
    """Construct and start a :class:`PlacementServer`."""
    server = PlacementServer(engine, host, port, **kwargs)
    await server.start()
    return server
