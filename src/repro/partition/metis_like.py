"""Multilevel k-way graph partitioning (METIS-style), from scratch.

The paper uses METIS k-way as its offline, cross-TX-optimal baseline.
This module reimplements the same multilevel scheme:

1. **Coarsen** with heavy-edge matching until the graph is small
   (:mod:`repro.partition.coarsen`).
2. **Initial partition** on the coarsest graph by greedy region growing:
   k BFS regions grown from high-degree seeds under the balance cap.
3. **Uncoarsen** level by level, projecting the partition down and running
   boundary FM refinement (:mod:`repro.partition.refine`) at every level.

The result reproduces the qualitative behaviour the paper leans on:
minimal edge cut / cross-TX fraction, but poor *temporal* balance because
graph-adjacent (therefore time-adjacent) transactions concentrate in the
same part - exactly the congestion pathology of Figs. 5-7.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import PartitionError
from repro.partition.coarsen import build_hierarchy
from repro.partition.graph import StaticGraph
from repro.partition.refine import rebalance, refine_kway
from repro.rng import make_rng


@dataclass(frozen=True, slots=True)
class MultilevelConfig:
    """Knobs of the multilevel partitioner.

    ``epsilon`` is the allowed imbalance: no part may exceed
    ``(1 + epsilon) * total_weight / n_parts``. METIS defaults to 0.03;
    the paper runs its Greedy/T2S baselines with 0.1.
    """

    epsilon: float = 0.03
    coarsest_factor: int = 30
    min_coarsest: int = 200
    max_levels: int = 40
    refine_passes: int = 8
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`PartitionError` on nonsensical parameters."""
        if self.epsilon < 0:
            raise PartitionError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.coarsest_factor < 1 or self.min_coarsest < 1:
            raise PartitionError("coarsest sizing must be >= 1")
        if self.max_levels < 0 or self.refine_passes < 0:
            raise PartitionError("levels/passes must be >= 0")


def metis_kway(
    graph: StaticGraph,
    n_parts: int,
    config: MultilevelConfig | None = None,
) -> list[int]:
    """Partition ``graph`` into ``n_parts`` balanced parts, minimizing cut.

    Returns ``assignment[u] = part`` for every node. Deterministic for a
    given config seed.
    """
    config = config or MultilevelConfig()
    config.validate()
    if n_parts <= 0:
        raise PartitionError(f"n_parts must be > 0, got {n_parts}")
    if graph.n_nodes == 0:
        return []
    if n_parts == 1:
        return [0] * graph.n_nodes
    if n_parts > graph.n_nodes:
        raise PartitionError(
            f"cannot split {graph.n_nodes} nodes into {n_parts} parts"
        )
    rng = make_rng(config.seed)
    cap = _weight_cap(graph.total_node_weight, n_parts, config.epsilon)

    target = max(config.min_coarsest, config.coarsest_factor * n_parts)
    coarsest, levels = build_hierarchy(
        graph, rng, target_size=target, max_levels=config.max_levels
    )

    assignment = _initial_partition(coarsest, n_parts, cap, rng)
    refine_kway(
        coarsest, assignment, n_parts, cap, max_passes=config.refine_passes
    )

    # Project back down the hierarchy, refining at each level. Only the
    # finest level must strictly satisfy the cap; coarse levels can carry
    # merged nodes heavier than the cap.
    for index in range(len(levels) - 1, -1, -1):
        level = levels[index]
        fine_n = len(level.fine_to_coarse)
        assignment = [
            assignment[level.fine_to_coarse[u]] for u in range(fine_n)
        ]
        fine_graph = graph if index == 0 else levels[index - 1].graph
        rebalance(
            fine_graph, assignment, n_parts, cap, strict=(index == 0)
        )
        refine_kway(
            fine_graph,
            assignment,
            n_parts,
            cap,
            max_passes=config.refine_passes,
        )
    if not levels:
        rebalance(graph, assignment, n_parts, cap, strict=True)
    return assignment


def partition_tan(
    tan, n_parts: int, config: MultilevelConfig | None = None
) -> list[int]:
    """Partition a TaN graph (undirected view) - the paper's Metis usage."""
    return metis_kway(StaticGraph.from_tan(tan), n_parts, config)


def _weight_cap(total_weight: int, n_parts: int, epsilon: float) -> int:
    ideal = total_weight / n_parts
    # ceil() guards the degenerate case where (1+eps)*ideal rounds below
    # a single node's weight and no partition could ever satisfy the cap.
    return max(1, math.ceil((1.0 + epsilon) * ideal))


def _initial_partition(
    graph: StaticGraph, n_parts: int, cap: int, rng: random.Random
) -> list[int]:
    """Greedy region growing on the coarsest graph.

    Grows one region per part from a high-weighted-degree seed, always
    absorbing the frontier node most connected to the region. Leftover
    nodes (disconnected islands) go to the lightest part that fits.
    """
    n = graph.n_nodes
    assignment = [-1] * n
    weights = [0] * n_parts
    target = graph.total_node_weight / n_parts

    by_degree = sorted(
        range(n), key=lambda u: graph.weighted_degree(u), reverse=True
    )
    seed_cursor = 0

    for part in range(n_parts):
        # Seed: heaviest-degree unassigned node.
        while (
            seed_cursor < n and assignment[by_degree[seed_cursor]] != -1
        ):
            seed_cursor += 1
        if seed_cursor >= n:
            break
        seed = by_degree[seed_cursor]
        assignment[seed] = part
        weights[part] += graph.node_weight(seed)
        # Frontier as a dict node -> connectivity to the region.
        frontier: dict[int, int] = {}
        for v, weight in graph.neighbors(seed):
            if assignment[v] == -1:
                frontier[v] = frontier.get(v, 0) + weight
        while weights[part] < target and frontier:
            u = max(frontier, key=frontier.__getitem__)
            del frontier[u]
            if assignment[u] != -1:
                continue
            if weights[part] + graph.node_weight(u) > cap:
                continue
            assignment[u] = part
            weights[part] += graph.node_weight(u)
            for v, weight in graph.neighbors(u):
                if assignment[v] == -1:
                    frontier[v] = frontier.get(v, 0) + weight

    # Leftovers: lightest part that can take each node.
    for u in range(n):
        if assignment[u] != -1:
            continue
        order = sorted(range(n_parts), key=lambda p: weights[p])
        placed = False
        for part in order:
            if weights[part] + graph.node_weight(u) <= cap:
                assignment[u] = part
                weights[part] += graph.node_weight(u)
                placed = True
                break
        if not placed:
            # Cap is unsatisfiable for this node (for instance one coarse
            # node heavier than the cap); overload the lightest part - the
            # rebalance step at finer levels will spread it out.
            part = order[0]
            assignment[u] = part
            weights[part] += graph.node_weight(u)
    return assignment
