"""Partition-aware placement engines for the sharded service.

The placement stream is inherently sequential - every decision reads
the global shard sizes and load proxy that every earlier decision
wrote - so the sharded service does not parallelize *placement*; it
partitions *ownership*. The txid space is divided into contiguous
**leases** of ``lease_length`` transactions, dealt round-robin to
``n_partitions`` partitions (partition ``p`` owns lease ``l`` iff
``l % n_partitions == p``). At any moment exactly one partition holds
the **write lease** - the right to place the lease the global cursor is
in - while the others serve reads over the slices they placed earlier
and absorb writebacks. What scales out is everything around the
sequential core: request decode, validation bookkeeping, checkpoint
writes, and memory (each partition holds only its own slices).

Three protocols make that sound:

- **Handoff**: when the cursor crosses a lease boundary the active
  partition exports its *hot state* - the O(n_shards) scalars every
  placement reads (shard sizes, min/max trackers, proxy decay clock
  and heaps, scorer truncation accounting, capped-baseline RNG) - and
  the next owner imports it. Per-txid state never travels, which is
  what keeps a handoff O(n_shards) instead of O(n_placed).
- **Cross-partition lookups**: a transaction may spend outputs owned by
  another partition. Before placing a batch, the active partition lists
  the foreign parents it needs (:meth:`EnginePartition.parents_needed`),
  the caller fetches their state from the owners
  (:meth:`EnginePartition.read_parents`), and the batch runs with those
  states *installed* into the local arrays - so the fused hot path is
  untouched. Installs are transient: they are removed after the batch
  either way (success or atomic reject), and mutations to foreign
  parents (spender counts, spent outputs) return to their owners as
  **writebacks** (:meth:`EnginePartition.apply_writebacks`). Because
  only the lease holder mutates, acquire-mutate-writeback needs no
  locking; ordering is the lease protocol.
- **Exactness**: a single-partition configuration never pads, installs,
  or hands off - it *is* the plain engine (golden-tested). Multi-
  partition configurations replay the same sequential decision
  process, so their placements are bit-identical too (pinned by
  ``tests/service/test_partition.py`` for 2 and 3 partitions).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.core.optchain import LoadProxyLatencyProvider
from repro.errors import ConfigurationError, EngineError
from repro.service.engine import PlacementEngine
from repro.service.wire import (
    FRAME_HEADER_BYTES,
    WireBatch,
    encode_place_request,
)
from repro.utxo.transaction import Transaction

_INF = math.inf


def lease_of(txid: int, lease_length: int) -> int:
    """Lease index a txid falls in."""
    return txid // lease_length


def encode_parent_states(
    states: dict[int, dict[str, Any]],
) -> dict[str, Any]:
    """JSON-safe form of :meth:`EnginePartition.read_parents` output.

    Vectors travel as ``[[shard, mass], ...]`` pair lists: JSON object
    keys would stringify the shard ids, and the pair list preserves the
    dict insertion order that feeds multi-parent accumulation (part of
    the bit-identical contract). Floats round-trip exactly (repr);
    masks are arbitrary-precision ints, which JSON carries natively.
    """
    encoded = {}
    for txid, state in states.items():
        entry = dict(state)
        vector = entry.get("vector")
        if vector is not None:
            entry["vector"] = [
                [shard, mass] for shard, mass in vector.items()
            ]
        encoded[str(txid)] = entry
    return encoded


def decode_parent_states(
    encoded: dict[str, Any],
) -> dict[int, dict[str, Any]]:
    """Inverse of :func:`encode_parent_states`."""
    states: dict[int, dict[str, Any]] = {}
    for key, entry in encoded.items():
        state = dict(entry)
        vector = state.get("vector")
        if vector is not None:
            state["vector"] = {shard: mass for shard, mass in vector}
        states[int(key)] = state
    return states


def owner_of(txid: int, lease_length: int, n_partitions: int) -> int:
    """Partition id owning a txid."""
    return (txid // lease_length) % n_partitions


class EnginePartition:
    """One partition's slice of the sharded placement service.

    Wraps a :class:`~repro.service.engine.PlacementEngine` whose
    per-txid arrays are *logically* sliced: entries in leases this
    partition owns are real, entries elsewhere are placeholder pads
    (``None`` vectors, zero assignments) that are never read except
    through a transient remote-parent install. Padding keeps every
    array indexed by **global** txid, which is what lets the fused
    placement hot path run unmodified.
    """

    def __init__(
        self,
        engine: PlacementEngine,
        partition_id: int = 0,
        n_partitions: int = 1,
        lease_length: int = 25_000,
    ) -> None:
        if n_partitions < 1:
            raise ConfigurationError(
                f"n_partitions must be >= 1, got {n_partitions}"
            )
        if not 0 <= partition_id < n_partitions:
            raise ConfigurationError(
                f"partition_id must be in [0, {n_partitions}), got "
                f"{partition_id}"
            )
        if lease_length < 1:
            raise ConfigurationError(
                f"lease_length must be >= 1, got {lease_length}"
            )
        self._engine = engine
        self.partition_id = partition_id
        self.n_partitions = n_partitions
        self.lease_length = lease_length
        placer = engine.placer
        self._placer = placer
        self._scorer = engine._scorer
        proxy = getattr(placer, "_proxy", None)
        self._proxy = (
            proxy if isinstance(proxy, LoadProxyLatencyProvider) else None
        )
        self._rng = getattr(placer, "_rng", None)
        # Placeholder entries appended by pad_to; released_count is
        # corrected by this in stats() (pads are counted as released so
        # live_vector_count stays exact).
        self._n_padded = 0
        # How far this partition has applied the horizon sweep to its
        # *own* slices. The engine's sweep runs only while active, so a
        # partition that was idle when the horizon passed its leases
        # catches up on the next lease import (idempotent re-sweeps are
        # no-ops on already-released slots).
        self._horizon_swept = 0
        # Optional write-ahead journal (service.journal.BatchJournal).
        # Every state mutation - owned batches, hot-state imports,
        # absorbed writebacks - is appended *before* it executes, so a
        # crashed worker replays the tail on top of its checkpoint and
        # comes back bit-identical. None disables journaling (replay
        # itself runs with the journal detached).
        self.journal: "Any | None" = None

    # -- queries -----------------------------------------------------------

    @property
    def engine(self) -> PlacementEngine:
        return self._engine

    @property
    def n_placed(self) -> int:
        """Local cursor: global txids below this are placed *or padded*."""
        return self._placer.n_placed

    def owns_txid(self, txid: int) -> bool:
        if self.n_partitions == 1:
            return True
        return (
            txid // self.lease_length
        ) % self.n_partitions == self.partition_id

    def owns_lease(self, lease: int) -> bool:
        return lease % self.n_partitions == self.partition_id

    def lease_end(self, txid: int) -> int:
        """First txid beyond the lease containing ``txid``."""
        return (txid // self.lease_length + 1) * self.lease_length

    def assignment_slice(self, first: int, count: int) -> list[int]:
        """Recorded shard assignments of an already-placed owned range.

        This is what makes duplicate resubmission exact: a batch the
        cursor already passed is answered from the assignment record
        instead of re-placed (assignments persist after vector release,
        so any owned below-cursor range is answerable).
        """
        return list(self._placer._assignment[first : first + count])

    # -- the active (write-lease) path -------------------------------------

    def parents_needed(self, batch: Sequence[Transaction]) -> list[int]:
        """Foreign parent txids this batch reads, sorted.

        Parents created inside the batch itself are local by
        definition. Behind-horizon parents are still listed: their
        vector/mask/count are masked off at install time (the engine
        treats them as released), but their *assignment* feeds the
        fitness rule's input-shard term regardless of the horizon.
        """
        if self.n_partitions == 1 or not batch:
            return []
        if isinstance(batch, WireBatch):
            # Vectorized over the frame's parent array - no Transaction
            # objects on the wire fast path.
            import numpy as np

            parents = batch.parents
            foreign = parents[parents < batch.first_txid]
            if not foreign.size:
                return []
            unique = np.unique(foreign)
            owners = (unique // self.lease_length) % self.n_partitions
            return unique[owners != self.partition_id].tolist()
        first = batch[0].txid
        lease_length = self.lease_length
        n_partitions = self.n_partitions
        mine = self.partition_id
        needed: set[int] = set()
        for tx in batch:
            for outpoint in tx.inputs:
                parent = outpoint.txid
                if (
                    parent < first
                    and (parent // lease_length) % n_partitions != mine
                ):
                    needed.add(parent)
        return sorted(needed)

    def place_batch(
        self,
        batch: Sequence[Transaction],
        remote_parents: "dict[int, dict[str, Any]] | None" = None,
        raw_segments: "Sequence[bytes] | None" = None,
    ) -> tuple[list[int], list[dict[str, Any]]]:
        """Place one owned batch; returns ``(shards, writebacks)``.

        ``remote_parents`` must cover exactly
        :meth:`parents_needed` (states fetched from the owners via
        :meth:`read_parents`). The installs are transient: on success
        *and* on atomic reject the local arrays return to placeholder
        state, so a failed batch leaves both this partition and every
        owner byte-identical to before the call.

        ``raw_segments`` are the wire-format place payloads the batch
        was coalesced from, passed through to the write-ahead journal
        unre-encoded (the worker already holds them). Without them a
        journaling partition re-encodes the batch itself - same bytes
        the coordinator's boundary splitter produces.
        """
        wire_batch = isinstance(batch, WireBatch)
        if self.journal is not None and batch:
            if raw_segments is None:
                if wire_batch:
                    raw_segments = list(batch.payloads)
                else:
                    raw_segments = [
                        encode_place_request(0, batch)[FRAME_HEADER_BYTES:]
                    ]
            # Append *before* placing: the journal stays a superset of
            # externally visible state, and a deterministic reject
            # simply re-fails (as a no-op) on replay.
            self.journal.append_batch(
                raw_segments, remote_parents or {}
            )
        if self.n_partitions == 1:
            if wire_batch:
                return self._engine.place_wire_batch(batch), []
            return self._engine.place_batch(batch), []
        if batch:
            self.pad_to(batch.first_txid if wire_batch else batch[0].txid)
        states = remote_parents or {}
        self._install(states)
        try:
            if wire_batch:
                shards = self._engine.place_wire_batch(
                    batch, _exclude_release=states.keys()
                )
            else:
                shards = self._engine.place_batch(
                    batch, _exclude_release=states.keys()
                )
        except EngineError:
            self._uninstall(states)
            raise
        except Exception:
            # The engine poisoned itself; the install is unwound so
            # owners stay consistent, but this partition refuses
            # further service either way.
            self._uninstall(states)
            raise
        writebacks = self._collect_writebacks(states)
        self._uninstall(states)
        return shards, writebacks

    def pad_to(self, cursor: int) -> None:
        """Extend the per-txid arrays with placeholders up to ``cursor``.

        Called when this partition acquires the write lease at a global
        cursor beyond its local arrays (the gap is other partitions'
        leases). Pads read exactly like released vectors - empty, zero
        mass - and are only ever written through a transient install.
        """
        placer = self._placer
        gap = cursor - placer.n_placed
        if gap <= 0:
            return
        placer._assignment.extend([0] * gap)
        scorer = self._scorer
        if scorer is not None:
            scorer._p_prime.extend([None] * gap)
            scorer._spender_count.extend([0] * gap)
            scorer._min_mass.extend([_INF] * gap)
            if not scorer._spenders_divisor:
                scorer._output_count.extend([1] * gap)
            # Count pads as released so live_vector_count stays exact.
            scorer._released += gap
        self._n_padded += gap

    # -- the owner (read/writeback) path -----------------------------------

    def read_parents(
        self, txids: Sequence[int]
    ) -> dict[int, dict[str, Any]]:
        """State of owned parents, for installation by the active
        partition. A ``mask`` of ``None`` means unknown or fully spent -
        the active side will reject a spend of it with the exact error
        the monolithic engine raises."""
        placer = self._placer
        scorer = self._scorer
        remaining = self._engine._remaining
        states: dict[int, dict[str, Any]] = {}
        for txid in txids:
            if not self.owns_txid(txid) or txid >= placer.n_placed:
                raise EngineError(
                    f"partition {self.partition_id} does not hold "
                    f"transaction {txid}"
                )
            state: dict[str, Any] = {
                "assignment": placer._assignment[txid],
                "mask": remaining.get(txid),
            }
            if scorer is not None:
                vector = scorer._p_prime[txid]
                state["spender_count"] = scorer._spender_count[txid]
                state["vector"] = None if vector is None else dict(vector)
                state["min_mass"] = scorer._min_mass[txid]
                if not scorer._spenders_divisor:
                    # outdeg_mode="outputs": the divisor reads the
                    # parent's created-output count too.
                    state["output_count"] = scorer._output_count[txid]
            states[txid] = state
        return states

    def apply_writebacks(self, updates: Sequence[dict[str, Any]]) -> None:
        """Absorb the active partition's mutations to owned parents.

        A mask of 0 means the parent is now fully spent: its unspent
        bookkeeping is dropped and (under the truncation policy) its
        vector released immediately - release timing is unobservable
        for exactness, since a fully-spent vector can never be read
        again on a valid stream.
        """
        if self.journal is not None and updates:
            self.journal.append_apply(updates)
        scorer = self._scorer
        remaining = self._engine._remaining
        collect = self._engine._collect_spent
        for update in updates:
            txid = update["txid"]
            if not self.owns_txid(txid) or txid >= self._placer.n_placed:
                raise EngineError(
                    f"partition {self.partition_id} does not hold "
                    f"transaction {txid}"
                )
            if scorer is not None:
                scorer._spender_count[txid] = update["spender_count"]
            mask = update["mask"]
            if mask:
                remaining[txid] = mask
            else:
                remaining.pop(txid, None)
                if collect and scorer is not None:
                    scorer.release_vector(txid)

    # -- handoff -----------------------------------------------------------

    def export_hot_state(self) -> dict[str, Any]:
        """The stream-global state every placement reads - O(n_shards).

        Heap layouts travel verbatim (they decide tie traversal and
        demotion timing, exactly as in snapshots); per-txid arrays do
        not travel at all.
        """
        placer = self._placer
        engine = self._engine
        hot: dict[str, Any] = {
            "n_placed": placer.n_placed,
            "placer": {
                "shard_sizes": list(placer._shard_sizes),
                "min_shard_size": placer._min_shard_size,
                "min_size_count": placer._min_size_count,
                "max_shard_size": placer._max_shard_size,
            },
            "engine": {
                "epoch": engine._epoch,
                "horizon_start": engine._horizon_start,
                "peak_live": engine._peak_live,
            },
        }
        if placer._size_argmin is not None:
            hot["placer"]["argmin_heap"] = [
                [value, index]
                for value, index in placer._size_argmin._heap
            ]
        scorer = self._scorer
        if scorer is not None:
            hot["scorer"] = {
                "shard_sizes": list(scorer._shard_sizes),
                "scalars": scorer.export_hot_scalars(),
            }
        if self._proxy is not None:
            proxy = self._proxy.export_state()
            proxy["heap"] = [[value, index] for value, index in proxy["heap"]]
            hot["proxy"] = proxy
        if self._rng is not None:
            version, words, gauss = self._rng.getstate()
            hot["rng"] = [version, list(words), gauss]
        return hot

    def import_hot_state(self, hot: dict[str, Any]) -> None:
        """Acquire the write lease: adopt the global state at ``hot``'s
        cursor and pad the local arrays up to it."""
        if self.journal is not None:
            self.journal.append_grant(hot)
        self.pad_to(hot["n_placed"])
        if self._placer.n_placed != hot["n_placed"]:
            raise EngineError(
                f"partition {self.partition_id} is at cursor "
                f"{self._placer.n_placed}, cannot import hot state at "
                f"{hot['n_placed']}"
            )
        placer = self._placer
        placer_hot = hot["placer"]
        placer._shard_sizes[:] = placer_hot["shard_sizes"]
        placer._min_shard_size = placer_hot["min_shard_size"]
        placer._min_size_count = placer_hot["min_size_count"]
        placer._max_shard_size = placer_hot["max_shard_size"]
        heap = placer_hot.get("argmin_heap")
        if heap is not None:
            placer.size_argmin()._heap[:] = [
                (value, index) for value, index in heap
            ]
        elif placer._size_argmin is not None:
            placer._size_argmin.rebuild()
        scorer = self._scorer
        if scorer is not None:
            scorer._shard_sizes[:] = hot["scorer"]["shard_sizes"]
            scorer.import_hot_scalars(hot["scorer"]["scalars"])
        if self._proxy is not None:
            proxy = dict(hot["proxy"])
            proxy["heap"] = [
                (value, index) for value, index in proxy["heap"]
            ]
            self._proxy.restore_state(proxy)
        if self._rng is not None:
            version, words, gauss = hot["rng"]
            self._rng.setstate((version, tuple(words), gauss))
        engine = self._engine
        engine_hot = hot["engine"]
        engine._epoch = engine_hot["epoch"]
        engine._horizon_start = engine_hot["horizon_start"]
        engine._peak_live = engine_hot["peak_live"]
        self._sweep_horizon_to(engine._horizon_start)
        # The capped baselines' allowed set is a pure function of
        # sizes + cap; rebuild it against the imported sizes.
        rebuild = getattr(placer, "_rebuild_allowed", None)
        if rebuild is not None:
            rebuild()

    def _sweep_horizon_to(self, new_start: int) -> None:
        """Release owned vectors/masks the horizon passed while idle."""
        start = self._horizon_swept
        if new_start <= start:
            return
        scorer = self._scorer
        remaining = self._engine._remaining
        clear_range = getattr(remaining, "clear_range", None)
        cursor = self._placer.n_placed
        lease_length = self.lease_length
        lease = start // lease_length
        while True:
            lease_start = lease * lease_length
            if lease_start >= new_start or lease_start >= cursor:
                break
            if self.owns_lease(lease):
                lo = max(lease_start, start)
                hi = min(lease_start + lease_length, new_start, cursor)
                if scorer is not None:
                    scorer.release_vectors(range(lo, hi))
                if clear_range is not None:
                    clear_range(lo, hi)
                else:
                    for txid in range(lo, hi):
                        remaining.pop(txid, None)
            lease += 1
        self._horizon_swept = new_start

    # -- installs (internals) ----------------------------------------------

    def _install(self, states: dict[int, dict[str, Any]]) -> None:
        placer = self._placer
        scorer = self._scorer
        remaining = self._engine._remaining
        horizon = self._engine.horizon_start
        for txid, state in states.items():
            placer._assignment[txid] = state["assignment"]
            if txid < horizon:
                # Behind the spend horizon the monolithic engine has
                # released the vector and dropped the mask (zero
                # ancestry signal, no validation) - whatever the owner
                # still holds is masked off here, and catches up on the
                # owner's next lease import. Only the assignment - the
                # fitness rule's input-shard term - installs.
                continue
            if scorer is not None:
                vector = state["vector"]
                scorer._p_prime[txid] = (
                    None if vector is None else dict(vector)
                )
                scorer._spender_count[txid] = state["spender_count"]
                scorer._min_mass[txid] = state["min_mass"]
                if not scorer._spenders_divisor:
                    scorer._output_count[txid] = state["output_count"]
            mask = state["mask"]
            if mask:
                remaining[txid] = mask

    def _collect_writebacks(
        self, states: dict[int, dict[str, Any]]
    ) -> list[dict[str, Any]]:
        scorer = self._scorer
        remaining = self._engine._remaining
        horizon = self._engine.horizon_start
        writebacks: list[dict[str, Any]] = []
        for txid, state in states.items():
            if txid < horizon:
                # Assignment-only install: nothing of the owner's
                # mutable state was exposed, so nothing changed.
                continue
            mask = state["mask"]
            if mask is None:
                # Unknown/fully-spent at the owner: unspendable, and
                # spender counts only advance on accepted spends.
                continue
            new_mask = remaining.get(txid, 0)
            new_count = (
                scorer._spender_count[txid] if scorer is not None else 0
            )
            old_count = (
                state["spender_count"] if scorer is not None else 0
            )
            if new_mask == mask and new_count == old_count:
                continue
            writebacks.append(
                {
                    "txid": txid,
                    "spender_count": new_count,
                    "mask": new_mask,
                }
            )
        return writebacks

    def _uninstall(self, states: dict[int, dict[str, Any]]) -> None:
        placer = self._placer
        scorer = self._scorer
        remaining = self._engine._remaining
        for txid in states:
            placer._assignment[txid] = 0
            if scorer is not None:
                # The epoch sweep is excluded from installs, so setting
                # the slot back to None never double-counts a release.
                scorer._p_prime[txid] = None
                scorer._spender_count[txid] = 0
                scorer._min_mass[txid] = _INF
                if not scorer._spenders_divisor:
                    scorer._output_count[txid] = 1
            remaining.pop(txid, None)

    # -- checkpoint / stats ------------------------------------------------

    def checkpoint(self, path, compress: bool = False) -> int:
        """Per-partition snapshot (the plain engine format: pads and
        slices serialize like any released/live state)."""
        return self._engine.checkpoint(path, compress=compress)

    @classmethod
    def restore(
        cls,
        path,
        partition_id: int = 0,
        n_partitions: int = 1,
        lease_length: int = 25_000,
    ) -> "EnginePartition":
        """Rebuild one partition from its snapshot file."""
        engine = PlacementEngine.restore(path)
        partition = cls(
            engine,
            partition_id=partition_id,
            n_partitions=n_partitions,
            lease_length=lease_length,
        )
        # Pads were serialized as released slots; recover the count so
        # stats stay additive across partitions. Only an estimate-free
        # exact recount is acceptable: pads are exactly the unowned
        # txids below the cursor.
        if n_partitions > 1:
            lease = 0
            padded = 0
            cursor = engine.n_placed
            while True:
                start = lease * lease_length
                if start >= cursor:
                    break
                end = min(start + lease_length, cursor)
                if lease % n_partitions != partition_id:
                    padded += end - start
                lease += 1
            partition._n_padded = padded
        return partition

    def stats(self) -> dict[str, Any]:
        """Partition-local stats, pad-corrected for cross-partition
        summation by the coordinator."""
        stats = self._engine.stats().as_dict()
        stats["partition_id"] = self.partition_id
        stats["n_partitions"] = self.n_partitions
        stats["lease_length"] = self.lease_length
        stats["padded_slots"] = self._n_padded
        if stats["released_vectors"] is not None:
            stats["released_vectors"] -= self._n_padded
        return stats
