"""Figure 6 - maximum and minimum shard queue sizes over time.

Paper (6000 tps, 16 shards): OptChain keeps max and min close (worst
max about 44k transactions); Metis reaches 507k with idle shards at the
same instant; Greedy 230k; OmniLedger grows unboundedly (about 499k)
because the system is beyond its capacity.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.analysis.timeseries import queue_extrema_series
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import METHODS, simulate


def run(
    scale: ExperimentScale, seed: int = 1
) -> dict[str, list[tuple[float, int, int]]]:
    """(time, max queue, min queue) series per method."""
    n_shards = max(scale.shard_counts)
    tx_rate = max(scale.tx_rates)
    series: dict[str, list[tuple[float, int, int]]] = {}
    for method in METHODS:
        result = simulate(scale, method, n_shards, tx_rate, seed)
        series[method] = queue_extrema_series(
            result.queue_sample_times, result.queue_samples
        )
    return series


def worst_max_queue(series: list[tuple[float, int, int]]) -> int:
    """Peak queue size over the run (the paper's headline per method)."""
    return max((biggest for _, biggest, _ in series), default=0)


def as_table(series: dict[str, list[tuple[float, int, int]]]) -> str:
    methods = sorted(series)
    headline = format_table(
        ["method", "peak max-queue", "samples"],
        [
            [method, worst_max_queue(series[method]), len(series[method])]
            for method in methods
        ],
        title="Fig. 6: peak queue sizes (OptChain smallest in the paper)",
    )
    # Compact trace: every ~10th sample of max/min per method.
    rows = []
    length = max(len(s) for s in series.values())
    step = max(1, length // 12)
    for index in range(0, length, step):
        row: list[object] = []
        time = None
        for method in methods:
            s = series[method]
            if index < len(s):
                time, biggest, smallest = s[index]
                row.append(f"{biggest}/{smallest}")
            else:
                row.append("-")
        rows.append([f"{time:.0f}s"] + row)
    trace = format_table(
        ["t"] + list(methods),
        rows,
        title="max/min queue size over time",
    )
    return headline + "\n\n" + trace


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
