"""Delta checkpoints (format v3): equivalence, cadence, and safety.

The claim under test: loading a full snapshot and applying a delta
yields an engine *indistinguishable* from one snapshotted fully at the
same point - continuing the stream is bit-identical, and the internal
release/live accounting matches exactly.
"""

from __future__ import annotations

import os

import pytest

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.errors import SnapshotError
from repro.service.engine import PlacementEngine
from repro.service.state import (
    load_engine_snapshot,
    save_engine_delta,
    save_engine_snapshot,
)

N_SHARDS = 4


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(3_000, seed=13)


def feed(engine, stream, start, stop, chunk=200):
    shards = []
    for offset in range(start, stop, chunk):
        shards.extend(
            engine.place_batch(stream[offset : min(offset + chunk, stop)])
        )
    return shards


def build(strategy="optchain", **kwargs):
    engine_kwargs = {
        key: kwargs.pop(key)
        for key in ("epoch_length", "horizon_epochs")
        if key in kwargs
    }
    engine_kwargs.setdefault("epoch_length", 400)
    return PlacementEngine(
        make_placer(strategy, N_SHARDS, **kwargs), **engine_kwargs
    )


@pytest.mark.parametrize(
    "strategy,kwargs",
    [
        ("optchain", {}),
        ("optchain-topk", {"support_cap": 2}),
        ("t2s", {}),
        ("omniledger", {}),
    ],
)
def test_delta_restore_is_bit_identical(tmp_path, stream, strategy, kwargs):
    base = tmp_path / "engine.snap"
    reference = build(strategy, **dict(kwargs))
    expected = feed(reference, stream, 0, 3_000)

    engine = build(strategy, **dict(kwargs))
    feed(engine, stream, 0, 1_000)
    full_size = engine.checkpoint(base, track_delta=True)
    feed(engine, stream, 1_000, 2_000)
    delta_size = engine.checkpoint(base, delta=True)
    assert os.path.exists(str(base) + ".delta")
    # The delta covers 1k transactions of activity against a 1k-deep
    # base; it must undercut a same-point full snapshot.
    assert delta_size < full_size * 1.5

    restored = load_engine_snapshot(base)
    assert restored.n_placed == 2_000
    # Internal accounting survived exactly (same stream position).
    original_stats = engine.stats()
    restored_stats = restored.stats()
    assert restored_stats.live_vectors == original_stats.live_vectors
    assert (
        restored_stats.released_vectors
        == original_stats.released_vectors
    )
    assert (
        restored_stats.tracked_unspent == original_stats.tracked_unspent
    )
    assert restored_stats.support == original_stats.support
    # Continuing the stream is bit-identical to never having stopped.
    tail = feed(restored, stream, 2_000, 3_000)
    assert tail == expected[2_000:]
    end_stats = restored.stats()
    reference_stats = reference.stats()
    assert end_stats.live_vectors == reference_stats.live_vectors
    assert end_stats.tracked_unspent == reference_stats.tracked_unspent


def test_delta_is_cumulative_and_replaced(tmp_path, stream):
    base = tmp_path / "engine.snap"
    reference = build()
    expected = feed(reference, stream, 0, 3_000)

    engine = build()
    feed(engine, stream, 0, 800)
    engine.checkpoint(base, track_delta=True)
    feed(engine, stream, 800, 1_600)
    engine.checkpoint(base, delta=True)
    feed(engine, stream, 1_600, 2_400)
    engine.checkpoint(base, delta=True)  # replaces the previous delta

    restored = load_engine_snapshot(base)
    assert restored.n_placed == 2_400
    assert feed(restored, stream, 2_400, 3_000) == expected[2_400:]


def test_full_save_compacts_and_invalidates_delta(tmp_path, stream):
    base = tmp_path / "engine.snap"
    engine = build()
    feed(engine, stream, 0, 800)
    engine.checkpoint(base, track_delta=True)
    feed(engine, stream, 800, 1_600)
    engine.checkpoint(base, delta=True)
    delta_path = str(base) + ".delta"
    assert os.path.exists(delta_path)
    feed(engine, stream, 1_600, 2_000)
    engine.checkpoint(base)  # full: compaction point
    assert not os.path.exists(delta_path)
    assert load_engine_snapshot(base).n_placed == 2_000


def test_delta_requires_a_base(tmp_path, stream):
    engine = build()
    feed(engine, stream, 0, 400)
    with pytest.raises(SnapshotError, match="full snapshot first"):
        save_engine_delta(engine, tmp_path / "never.snap")


def test_delta_requires_tracking(tmp_path, stream):
    """A full snapshot without track_delta does not (and must not)
    allow a later delta: the dirty journal was never kept."""
    base = tmp_path / "untracked.snap"
    engine = build()
    feed(engine, stream, 0, 400)
    engine.checkpoint(base)  # tracking off by default
    assert engine._dirty_parents is None
    feed(engine, stream, 400, 800)
    with pytest.raises(SnapshotError, match="full snapshot first"):
        engine.checkpoint(base, delta=True)
    # Explicitly disabling tracking on a later full save turns the
    # journal off again.
    engine.checkpoint(base, track_delta=True)
    assert engine._dirty_parents is not None
    engine.checkpoint(base, track_delta=False)
    assert engine._dirty_parents is None


def test_no_truncate_spent_delta_round_trip(tmp_path, stream):
    """truncate_spent=False engines never release vectors; the delta
    release reconstruction must not invent releases for them."""
    base = tmp_path / "keepall.snap"
    reference = PlacementEngine(
        make_placer("optchain", N_SHARDS),
        epoch_length=400,
        truncate_spent=False,
    )
    expected = feed(reference, stream, 0, 3_000)
    engine = PlacementEngine(
        make_placer("optchain", N_SHARDS),
        epoch_length=400,
        truncate_spent=False,
    )
    feed(engine, stream, 0, 1_000)
    engine.checkpoint(base, track_delta=True)
    feed(engine, stream, 1_000, 2_000)
    engine.checkpoint(base, delta=True)
    restored = load_engine_snapshot(base)
    assert restored.stats().released_vectors == 0
    assert feed(restored, stream, 2_000, 3_000) == expected[2_000:]


def test_mismatched_delta_rejected(tmp_path, stream):
    base_a = tmp_path / "a.snap"
    base_b = tmp_path / "b.snap"
    engine = build()
    feed(engine, stream, 0, 800)
    engine.checkpoint(base_a, track_delta=True)
    feed(engine, stream, 800, 1_200)
    # The delta must sit beside its own base file.
    with pytest.raises(SnapshotError, match="beside its base"):
        save_engine_delta(engine, base_b)
    engine.checkpoint(base_a, delta=True)
    # Pair a's delta with an unrelated full snapshot: nonce mismatch.
    other = build()
    feed(other, stream, 0, 800)
    save_engine_snapshot(other, base_b)
    os.replace(str(base_a) + ".delta", str(base_b) + ".delta")
    with pytest.raises(SnapshotError, match="nonce mismatch"):
        load_engine_snapshot(base_b)


def test_horizon_mode_delta_round_trip(tmp_path, stream):
    base = tmp_path / "horizon.snap"
    reference = build(epoch_length=300, horizon_epochs=2)
    expected = feed(reference, stream, 0, 3_000)

    engine = build(epoch_length=300, horizon_epochs=2)
    feed(engine, stream, 0, 1_000)
    engine.checkpoint(base, track_delta=True)
    feed(engine, stream, 1_000, 2_200)
    engine.checkpoint(base, delta=True)

    restored = load_engine_snapshot(base)
    assert restored.horizon_start == engine.horizon_start
    assert restored.horizon_start > 0  # the sweep actually ran
    assert feed(restored, stream, 2_200, 3_000) == expected[2_200:]


def test_compressed_delta(tmp_path, stream):
    base = tmp_path / "packed.snap"
    engine = build()
    feed(engine, stream, 0, 1_000)
    engine.checkpoint(base, compress=True, track_delta=True)
    feed(engine, stream, 1_000, 2_000)
    plain = save_engine_delta(engine, base)
    packed = save_engine_delta(engine, base, compress=True)
    assert packed < plain
    restored = load_engine_snapshot(base)
    assert restored.n_placed == 2_000


def test_server_delta_cadence(tmp_path, stream):
    """PlacementServer --checkpoint-delta N: full, delta, delta, full."""
    from repro.service.server import PlacementServer

    base = tmp_path / "cadence.snap"
    engine = build()
    server = PlacementServer(
        engine,
        checkpoint_path=str(base),
        checkpoint_delta_every=3,
    )
    delta_path = str(base) + ".delta"

    feed(engine, stream, 0, 500)
    server._do_checkpoint(base)  # 1st: full
    assert not os.path.exists(delta_path)
    feed(engine, stream, 500, 1_000)
    server._do_checkpoint(base)  # 2nd: delta
    assert os.path.exists(delta_path)
    feed(engine, stream, 1_000, 1_500)
    server._do_checkpoint(base)  # 3rd: delta (cumulative)
    assert load_engine_snapshot(base).n_placed == 1_500
    feed(engine, stream, 1_500, 2_000)
    server._do_checkpoint(base)  # 4th: full compaction
    assert not os.path.exists(delta_path)
    assert load_engine_snapshot(base).n_placed == 2_000
