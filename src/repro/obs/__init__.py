"""Production observability plane.

Dependency-free building blocks for watching a serving deployment in
flight:

- :mod:`repro.obs.hist` - HDR-style log-bucketed latency histograms
  (O(1) record, exact mergeability across processes).
- :mod:`repro.obs.metrics` - the per-process counter/histogram bundle
  the server, workers, and coordinator maintain, plus cross-partition
  merging.
- :mod:`repro.obs.prom` - Prometheus text-format rendering, a parser
  for gates/tests, and a minimal asyncio ``GET /metrics`` responder.
- :mod:`repro.obs.drift` - a sampled shadow scorer measuring placement
  quality drift of a capped/vectorized production strategy against the
  exact python path.
- :mod:`repro.obs.soak` - the long-haul soak harness behind
  ``repro soak`` (chaos + scrape + RSS/drift/latency gates).
"""

from repro.obs.drift import DriftMonitor, merge_drift_dicts
from repro.obs.hist import LogHistogram
from repro.obs.metrics import ServiceMetrics, merge_metric_dicts, rss_kb
from repro.obs.prom import (
    Family,
    MetricsServer,
    parse_prometheus_text,
    render_families,
)

__all__ = [
    "DriftMonitor",
    "Family",
    "LogHistogram",
    "MetricsServer",
    "ServiceMetrics",
    "merge_drift_dicts",
    "merge_metric_dicts",
    "parse_prometheus_text",
    "render_families",
    "rss_kb",
]
