"""Tests for the SPV wallet / shard directory split of Algorithm 1."""

from __future__ import annotations

import pytest

from repro.core.l2s import ShardLatencyModel
from repro.core.optchain import OptChainPlacer
from repro.core.wallet import ShardDirectory, SPVWallet
from repro.errors import ConfigurationError, PlacementError

N_SHARDS = 8


def static_models(n_shards=N_SHARDS, slow=None):
    models = []
    for shard in range(n_shards):
        lambda_v = 0.05 if shard == slow else 0.25
        models.append(ShardLatencyModel(lambda_c=8.0, lambda_v=lambda_v))
    return models


class TestDirectory:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardDirectory(0)

    def test_unknown_parent_rejected(self):
        with pytest.raises(PlacementError):
            ShardDirectory(4).parent_view(7)

    def test_double_announce_rejected(self):
        directory = ShardDirectory(4)
        directory.announce(0, 1, {})
        with pytest.raises(PlacementError):
            directory.announce(0, 2, {})

    def test_bad_shard_rejected(self):
        with pytest.raises(PlacementError):
            ShardDirectory(4).announce(0, 9, {})

    def test_query_registers_spender(self):
        directory = ShardDirectory(4)
        directory.announce(0, 1, {1: 0.5})
        first = directory.parent_view(0)
        second = directory.parent_view(0)
        assert first.spender_count == 1
        assert second.spender_count == 2

    def test_views_are_copies(self):
        directory = ShardDirectory(4)
        directory.announce(0, 1, {1: 0.5})
        view = directory.parent_view(0)
        view.p_prime[1] = 99.0
        assert directory.parent_view(0).p_prime[1] == 0.5


class TestSPVWallet:
    def test_decisions_match_monolithic_placer(self, small_stream):
        """The wallet-side protocol is exactly Algorithm 1: decisions
        equal OptChainPlacer's, bit for bit, under identical latency
        models."""
        models = static_models(slow=3)
        placer = OptChainPlacer(
            N_SHARDS, latency_provider=lambda: models
        )
        directory = ShardDirectory(N_SHARDS)
        wallet = SPVWallet(directory)
        for tx in small_stream:
            expected = placer.place(tx)
            actual = wallet.decide_and_submit(tx, models)
            assert actual == expected, tx.txid

    def test_query_cost_is_fanin(self, small_stream):
        """The paper's lightweight claim: |Nin(u)| parent queries plus
        one shard-size read per transaction - no history download."""
        directory = ShardDirectory(N_SHARDS)
        wallet = SPVWallet(directory)
        models = static_models()
        total_fanin = 0
        for tx in small_stream[:500]:
            wallet.decide_and_submit(tx, models)
            total_fanin += len(tx.input_txids)
        assert directory.n_parent_queries == total_fanin
        assert directory.n_size_queries == 500
        assert wallet.n_submitted == 500

    def test_congested_shard_avoided(self, small_stream):
        directory = ShardDirectory(N_SHARDS)
        wallet = SPVWallet(directory)
        models = static_models(slow=2)
        placements = [
            wallet.decide_and_submit(tx, models)
            for tx in small_stream[:1000]
        ]
        sizes = [placements.count(s) for s in range(N_SHARDS)]
        assert sizes[2] < max(sizes)

    def test_model_count_mismatch_rejected(self, small_stream):
        wallet = SPVWallet(ShardDirectory(N_SHARDS))
        with pytest.raises(ConfigurationError):
            wallet.decide_and_submit(small_stream[0], static_models(3))

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            SPVWallet(ShardDirectory(4), alpha=0.0)


class TestSPVWalletPlacer:
    def test_behaves_as_strategy(self, small_stream):
        from repro.core.wallet import SPVWalletPlacer
        from repro.partition.quality import (
            cross_shard_fraction,
            validate_partition,
        )

        placer = SPVWalletPlacer(N_SHARDS)
        assignment = placer.place_stream(small_stream)
        validate_partition(assignment, N_SHARDS)
        assert cross_shard_fraction(small_stream, assignment) < 0.5

    def test_matches_optchain_in_simulation(self, small_stream):
        """End to end through the simulator, the decentralized wallet
        deployment reproduces the monolithic OptChain placer exactly
        (same live observer, same arithmetic)."""
        from repro.core.wallet import SPVWalletPlacer
        from repro.simulator import SimulationConfig, run_simulation

        config = SimulationConfig(
            n_shards=4,
            tx_rate=150.0,
            block_capacity=50,
            block_size_bytes=25_000,
            consensus_per_tx_s=0.002,
            max_sim_time_s=2_000.0,
        )
        spv = run_simulation(
            small_stream, SPVWalletPlacer(4), config
        )
        opt = run_simulation(
            small_stream, OptChainPlacer(4), config
        )
        assert spv.drained and opt.drained
        assert spv.n_cross == opt.n_cross
        assert spv.latencies == opt.latencies

    def test_force_place_feeds_directory(self, small_stream):
        from repro.core.wallet import SPVWalletPlacer

        placer = SPVWalletPlacer(N_SHARDS)
        for tx in small_stream[:100]:
            placer.force_place(tx, tx.txid % N_SHARDS)
        assert placer.directory.n_records == 100
        # Placement continues seamlessly after the warm start.
        for tx in small_stream[100:200]:
            placer.place(tx)
        assert placer.n_placed == 200
