"""SPV deployment: OptChain split between wallets and shard servers.

The paper's practicality argument (§I): OptChain needs only per-input
lookups, so it runs inside wallets via a modified SPV protocol - no full
history. This example runs the two-sided deployment -
:class:`ShardDirectory` (network side) and :class:`SPVWallet` (user
side) - over a workload and shows:

1. the communication cost per transaction (|inputs| directory lookups),
2. that the decentralized decisions match the monolithic
   :class:`OptChainPlacer` exactly.

Run::

    python examples/spv_directory.py
"""

from __future__ import annotations

from repro import OptChainPlacer, cross_shard_fraction, synthetic_stream
from repro.core.wallet import SPVWalletPlacer

N_SHARDS = 8
N_TRANSACTIONS = 10_000


def main() -> None:
    stream = synthetic_stream(N_TRANSACTIONS, seed=11)

    # Decentralized deployment: wallet decisions over directory lookups,
    # load observed through the wallet-side proxy.
    spv = SPVWalletPlacer(N_SHARDS)
    spv_assignment = spv.place_stream(stream)

    # Monolithic reference (same algorithm, same proxy semantics).
    monolithic = OptChainPlacer(N_SHARDS)
    mono_assignment = monolithic.place_stream(stream)

    agreement = sum(
        1 for a, b in zip(spv_assignment, mono_assignment) if a == b
    ) / len(stream)
    total_inputs = sum(len(tx.input_txids) for tx in stream)
    directory = spv.directory

    print(f"transactions placed:        {len(stream)}")
    print(
        f"cross-shard fraction:       "
        f"{cross_shard_fraction(stream, spv_assignment):.1%}"
    )
    print(f"directory parent lookups:   {directory.n_parent_queries} "
          f"(= total tx inputs: {total_inputs})")
    print(
        f"lookups per transaction:    "
        f"{directory.n_parent_queries / len(stream):.2f}"
    )
    print(f"agreement with monolithic:  {agreement:.1%}")
    print()
    print(
        "the wallet never downloads history: each placement costs "
        "|inputs| record\nlookups plus one shard-size read - the "
        "paper's lightweight SPV claim."
    )


if __name__ == "__main__":
    main()
