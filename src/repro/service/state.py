"""Versioned snapshot/restore of the full placement-engine state.

Restoring a snapshot and continuing the stream is **bit-identical** to
an uninterrupted run (pinned across processes by
``tests/service/test_golden_restore.py``). Everything that decides a
future placement is captured exactly:

- the T2S store: every live sparse vector *in insertion order* (dict
  iteration order feeds the multi-parent accumulation order, so it is
  part of the arithmetic), spender counts, min-mass pruning bounds;
- the load proxy's lazy-decay clock (``step``/``offset``/``scale``) and
  both lazy heaps *verbatim* - heap layout (including stale entries)
  decides tie-traversal order and when sub-resolution shards demote;
- the strategy bookkeeping (assignment, shard sizes, min/max trackers,
  optional size-argmin heap) and the capped baselines' Mersenne state;
- the engine's truncation bookkeeping (unspent-output counts, pending
  releases, horizon cursor).

On-disk layout (version 2)::

    8 bytes   magic  b"OCSNAP" + version u16 (little-endian)
    4 bytes   header length u32 (little-endian)
    N bytes   header JSON (configs, scalars, section table)
    ...       array-section payload, concatenated in table order
              (optionally one zlib stream - see below)

Numeric bulk state lives in typed array sections (``array`` module
native layout: 4-byte ids/counts, 8-byte doubles/sizes), which is what
makes the format compact - a 25k-transaction OptChain snapshot is a few
hundred KB where a pickled object graph is several MB. Doubles are
stored as raw IEEE-754 bytes, so floats round-trip exactly (including
``inf`` min-mass sentinels). The format records the host byte order
and refuses to load a foreign one: checkpoints are a service-restart
mechanism, not an interchange format.

Version history:

- **1** (PR 3): the layout above, uncompressed, exact scorer only.
- **2** (PR 4): the section payload may be one zlib stream (header
  keys ``compression``/``payload_bytes``; ``repro serve
  --checkpoint-compress``), and the scorer section carries a
  ``t2s_scalars`` header dict for bounded-support scorers (kind,
  dropped-mass total, truncated-vector count) plus the
  ``optchain-topk`` placer spec. Version-1 files remain readable -
  both additions are strictly optional header keys.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Any

from repro import __version__
from repro.core.baselines import (
    GreedyPlacer,
    OmniLedgerRandomPlacer,
    T2SOnlyPlacer,
)
from repro.core.optchain import (
    USE_LOAD_PROXY,
    OptChainPlacer,
    TopKOptChainPlacer,
)
from repro.core.placement import PlacementStrategy
from repro.errors import SnapshotError
from repro.service.engine import PlacementEngine

MAGIC = b"OCSNAP"
FORMAT_VERSION = 2

#: Formats this build can load (writes always use FORMAT_VERSION).
SUPPORTED_VERSIONS = (1, 2)

#: Section typecodes: ids/counts are 4-byte, sizes 8-byte (a shard can
#: outgrow 2^31 placements long before a txid list would), masses are
#: raw doubles.
_ALLOWED_TYPECODES = ("i", "q", "d", "I", "B")


# -- serialization helpers -------------------------------------------------


class _SectionWriter:
    """Accumulates named typed-array sections plus the header table."""

    def __init__(self) -> None:
        self.table: list[dict[str, Any]] = []
        self.blobs: list[bytes] = []

    def add(self, name: str, typecode: str, values) -> None:
        data = array(typecode, values)
        self.table.append(
            {"name": name, "typecode": typecode, "count": len(data)}
        )
        self.blobs.append(data.tobytes())


class _SectionReader:
    def __init__(self, table: list[dict[str, Any]], payload: bytes) -> None:
        self._sections: dict[str, array] = {}
        offset = 0
        for entry in table:
            typecode = entry["typecode"]
            if typecode not in _ALLOWED_TYPECODES:
                raise SnapshotError(
                    f"snapshot section {entry['name']!r} has unsupported "
                    f"typecode {typecode!r}"
                )
            data = array(typecode)
            nbytes = entry["count"] * data.itemsize
            chunk = payload[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise SnapshotError(
                    f"snapshot truncated in section {entry['name']!r}"
                )
            data.frombytes(chunk)
            self._sections[entry["name"]] = data
            offset += nbytes
        if offset != len(payload):
            raise SnapshotError(
                f"snapshot has {len(payload) - offset} trailing bytes"
            )

    def get(self, name: str) -> array:
        try:
            return self._sections[name]
        except KeyError:
            raise SnapshotError(f"snapshot is missing section {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._sections


# -- placer spec (reconstruction recipe) -----------------------------------


def _placer_spec(placer: PlacementStrategy) -> dict[str, Any]:
    """Constructor recipe for the supported strategies."""
    name = type(placer).name
    if (
        isinstance(placer, TopKOptChainPlacer)
        and name == "optchain-topk"
        and placer.scorer.kind == "topk"
    ):
        return {
            "strategy": "optchain-topk",
            "n_shards": placer.n_shards,
            "support_cap": placer.scorer.support_cap,
            "alpha": placer.scorer.alpha,
            "latency_weight": placer.fitness.latency_weight,
            "l2s_mode": placer.l2s_mode,
            "outdeg_mode": placer.scorer.outdeg_mode,
            "has_proxy": placer._proxy is not None,
        }
    if (
        isinstance(placer, OptChainPlacer)
        and name == "optchain"
        # A hand-injected scorer has no constructor recipe here: refuse
        # rather than restore silently as the exact scorer.
        and placer.scorer.kind == "exact"
    ):
        return {
            "strategy": "optchain",
            "n_shards": placer.n_shards,
            "alpha": placer.scorer.alpha,
            "latency_weight": placer.fitness.latency_weight,
            "l2s_mode": placer.l2s_mode,
            "outdeg_mode": placer.scorer.outdeg_mode,
            "has_proxy": placer._proxy is not None,
        }
    if isinstance(placer, T2SOnlyPlacer) and name == "t2s":
        return {
            "strategy": "t2s",
            "n_shards": placer.n_shards,
            "epsilon": placer.epsilon,
            "expected_total": placer.expected_total,
            "tie_break": placer.tie_break,
            "alpha": placer.scorer.alpha,
            "outdeg_mode": placer.scorer.outdeg_mode,
        }
    if isinstance(placer, GreedyPlacer) and name == "greedy":
        return {
            "strategy": "greedy",
            "n_shards": placer.n_shards,
            "epsilon": placer.epsilon,
            "expected_total": placer.expected_total,
            "tie_break": placer.tie_break,
        }
    if isinstance(placer, OmniLedgerRandomPlacer) and name == "omniledger":
        return {"strategy": "omniledger", "n_shards": placer.n_shards}
    raise SnapshotError(
        f"strategy {name or type(placer).__name__!r} is not snapshotable "
        "(supported: optchain, optchain-topk, t2s, greedy, omniledger; "
        "custom scorer injections have no reconstruction recipe)"
    )


def _build_placer(spec: dict[str, Any]) -> PlacementStrategy:
    strategy = spec.get("strategy")
    n_shards = spec["n_shards"]
    if strategy == "optchain":
        return OptChainPlacer(
            n_shards,
            alpha=spec["alpha"],
            latency_weight=spec["latency_weight"],
            latency_provider=(
                USE_LOAD_PROXY if spec["has_proxy"] else None
            ),
            l2s_mode=spec["l2s_mode"],
            outdeg_mode=spec["outdeg_mode"],
        )
    if strategy == "optchain-topk":
        return TopKOptChainPlacer(
            n_shards,
            support_cap=spec["support_cap"],
            alpha=spec["alpha"],
            latency_weight=spec["latency_weight"],
            latency_provider=(
                USE_LOAD_PROXY if spec["has_proxy"] else None
            ),
            l2s_mode=spec["l2s_mode"],
            outdeg_mode=spec["outdeg_mode"],
        )
    if strategy == "t2s":
        return T2SOnlyPlacer(
            n_shards,
            epsilon=spec["epsilon"],
            expected_total=spec["expected_total"],
            tie_break=spec["tie_break"],
            alpha=spec["alpha"],
            outdeg_mode=spec["outdeg_mode"],
        )
    if strategy == "greedy":
        return GreedyPlacer(
            n_shards,
            epsilon=spec["epsilon"],
            expected_total=spec["expected_total"],
            tie_break=spec["tie_break"],
        )
    if strategy == "omniledger":
        return OmniLedgerRandomPlacer(n_shards)
    raise SnapshotError(f"snapshot names unknown strategy {strategy!r}")


# -- state <-> sections ----------------------------------------------------


def _write_placer_state(
    writer: _SectionWriter, state: dict[str, Any], header: dict[str, Any]
) -> None:
    writer.add("assignment", "i", state["assignment"])
    writer.add("shard_sizes", "q", state["shard_sizes"])
    header["placer_scalars"] = {
        "min_shard_size": state["min_shard_size"],
        "min_size_count": state["min_size_count"],
        "max_shard_size": state["max_shard_size"],
    }
    heap = state.get("size_argmin_heap")
    if heap is not None:
        writer.add("argmin_value", "q", (value for value, _ in heap))
        writer.add("argmin_index", "i", (index for _, index in heap))

    scorer = state.get("scorer")
    header["has_scorer"] = scorer is not None
    if scorer is not None:
        nnz = array("i")
        shards = array("i")
        mass = array("d")
        for vector in scorer["p_prime"]:
            if vector is None:
                nnz.append(-1)
            else:
                nnz.append(len(vector))
                for shard, value in vector.items():
                    shards.append(shard)
                    mass.append(value)
        writer.add("t2s_nnz", "i", nnz)
        writer.add("t2s_shards", "i", shards)
        writer.add("t2s_mass", "d", mass)
        writer.add("t2s_spenders", "i", scorer["spender_count"])
        writer.add("t2s_min_mass", "d", scorer["min_mass"])
        writer.add("t2s_shard_sizes", "q", scorer["shard_sizes"])
        header["t2s_released"] = scorer["released"]
        if "output_count" in scorer:
            writer.add("t2s_outputs", "i", scorer["output_count"])
        # Bounded-support scorers carry truncation accounting (format
        # v2). JSON float repr round-trips doubles exactly, so the
        # dropped-mass total restores bit-identically.
        scalars = {
            key: scorer[key]
            for key in ("dropped_mass", "truncated_vectors")
            if key in scorer
        }
        if scalars:
            header["t2s_scalars"] = scalars

    proxy = state.get("proxy")
    header["has_proxy_state"] = proxy is not None
    if proxy is not None:
        writer.add("proxy_scaled", "d", proxy["scaled"])
        writer.add(
            "proxy_heap_value", "d", (value for value, _ in proxy["heap"])
        )
        writer.add(
            "proxy_heap_index", "i", (index for _, index in proxy["heap"])
        )
        writer.add("proxy_zero_heap", "i", proxy["zero_heap"])
        header["proxy_scalars"] = {
            "step": proxy["step"],
            "offset": proxy["offset"],
            "scale": proxy["scale"],
        }

    rng = state.get("rng_state")
    header["has_rng"] = rng is not None
    if rng is not None:
        version, words, gauss = rng
        writer.add("rng_words", "I", words)
        header["rng_scalars"] = {"version": version, "gauss": gauss}


def _read_placer_state(
    reader: _SectionReader, header: dict[str, Any]
) -> dict[str, Any]:
    scalars = header["placer_scalars"]
    state: dict[str, Any] = {
        "assignment": reader.get("assignment").tolist(),
        "shard_sizes": reader.get("shard_sizes").tolist(),
        "min_shard_size": scalars["min_shard_size"],
        "min_size_count": scalars["min_size_count"],
        "max_shard_size": scalars["max_shard_size"],
    }
    if "argmin_value" in reader:
        state["size_argmin_heap"] = list(
            zip(
                reader.get("argmin_value").tolist(),
                reader.get("argmin_index").tolist(),
            )
        )
    if header["has_scorer"]:
        nnz = reader.get("t2s_nnz")
        shards = reader.get("t2s_shards").tolist()
        mass = reader.get("t2s_mass").tolist()
        p_prime: list[dict[int, float] | None] = []
        cursor = 0
        for count in nnz:
            if count < 0:
                p_prime.append(None)
            else:
                end = cursor + count
                p_prime.append(
                    dict(zip(shards[cursor:end], mass[cursor:end]))
                )
                cursor = end
        if cursor != len(shards):
            raise SnapshotError(
                "t2s_nnz does not account for every stored entry"
            )
        scorer: dict[str, Any] = {
            "p_prime": p_prime,
            "spender_count": reader.get("t2s_spenders").tolist(),
            "min_mass": reader.get("t2s_min_mass").tolist(),
            "shard_sizes": reader.get("t2s_shard_sizes").tolist(),
            "released": header["t2s_released"],
        }
        if "t2s_outputs" in reader:
            scorer["output_count"] = reader.get("t2s_outputs").tolist()
        scorer.update(header.get("t2s_scalars", {}))
        state["scorer"] = scorer
    if header["has_proxy_state"]:
        proxy_scalars = header["proxy_scalars"]
        state["proxy"] = {
            "scaled": reader.get("proxy_scaled").tolist(),
            "heap": list(
                zip(
                    reader.get("proxy_heap_value").tolist(),
                    reader.get("proxy_heap_index").tolist(),
                )
            ),
            "zero_heap": reader.get("proxy_zero_heap").tolist(),
            "step": proxy_scalars["step"],
            "offset": proxy_scalars["offset"],
            "scale": proxy_scalars["scale"],
        }
    if header["has_rng"]:
        rng_scalars = header["rng_scalars"]
        state["rng_state"] = (
            rng_scalars["version"],
            tuple(reader.get("rng_words").tolist()),
            rng_scalars["gauss"],
        )
    return state


# -- public API ------------------------------------------------------------


def save_engine_snapshot(
    engine: PlacementEngine, path: "str | Path", compress: bool = False
) -> int:
    """Serialize ``engine`` to ``path``; returns bytes written.

    The write goes through a temporary sibling file and an atomic
    rename, so an interrupted checkpoint never corrupts the previous
    one. With ``compress`` the array-section payload is written as one
    zlib stream (the header stays plain JSON): typed-array state -
    txids, spender counts, near-repetitive masses - deflates to a
    fraction of its raw size, which is what trims the ~5 MB @ 50k-tx
    checkpoints to ~1-2 MB at a few tens of ms of CPU. Compression is
    a save-time choice, not engine state: either kind of snapshot
    restores identically.
    """
    placer = engine.placer
    header: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "byteorder": sys.byteorder,
        "repro_version": __version__,
        "placer": _placer_spec(placer),
        "engine_config": engine.export_config(),
        "n_placed": placer.n_placed,
    }
    writer = _SectionWriter()
    _write_placer_state(writer, placer.export_state(), header)

    engine_state = engine.export_state()
    remaining = engine_state["remaining"]
    # Values are unspent-output bitmasks of arbitrary width (one bit
    # per output; batch payouts can exceed 63 outputs), so they travel
    # as length-prefixed big-endian byte strings.
    mask_bytes = [
        mask.to_bytes((mask.bit_length() + 7) // 8, "big")
        for mask in remaining.values()
    ]
    writer.add("remaining_txid", "q", remaining.keys())
    writer.add("remaining_nbytes", "i", (len(b) for b in mask_bytes))
    writer.add("remaining_masks", "B", b"".join(mask_bytes))
    writer.add("pending_release", "q", engine_state["pending_release"])
    header["engine_scalars"] = {
        "horizon_start": engine_state["horizon_start"],
        "epoch": engine_state["epoch"],
        "peak_live": engine_state["peak_live"],
    }

    header["sections"] = writer.table
    payload_blobs = writer.blobs
    if compress:
        raw_payload = b"".join(payload_blobs)
        header["compression"] = "zlib"
        header["payload_bytes"] = len(raw_payload)
        payload_blobs = [zlib.compress(raw_payload, 6)]
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<H", FORMAT_VERSION))
        fh.write(struct.pack("<I", len(header_bytes)))
        fh.write(header_bytes)
        for blob in payload_blobs:
            fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
        size = fh.tell()
    os.replace(tmp, path)
    return size


def load_engine_snapshot(path: "str | Path") -> PlacementEngine:
    """Rebuild a :class:`PlacementEngine` from a snapshot file."""
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}")
    if len(raw) < 14 or raw[:6] != MAGIC:
        raise SnapshotError(f"{path} is not an OptChain snapshot")
    (version,) = struct.unpack_from("<H", raw, 6)
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise SnapshotError(
            f"snapshot format {version} is not supported (this build "
            f"reads formats {supported})"
        )
    (header_len,) = struct.unpack_from("<I", raw, 8)
    header_end = 12 + header_len
    if header_end > len(raw):
        raise SnapshotError(f"{path} is truncated inside the header")
    try:
        header = json.loads(raw[12:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has a corrupt header: {exc}")
    if header.get("byteorder") != sys.byteorder:
        raise SnapshotError(
            f"snapshot was written on a {header.get('byteorder')}-endian "
            f"host; this host is {sys.byteorder}-endian"
        )
    payload = raw[header_end:]
    compression = header.get("compression")
    if compression == "zlib":
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise SnapshotError(f"{path} has a corrupt payload: {exc}")
        expected = header.get("payload_bytes")
        if expected is not None and len(payload) != expected:
            raise SnapshotError(
                f"{path} payload decompressed to {len(payload)} bytes, "
                f"header claims {expected}"
            )
    elif compression is not None:
        raise SnapshotError(
            f"snapshot uses unknown compression {compression!r}"
        )
    reader = _SectionReader(header["sections"], payload)

    placer = _build_placer(header["placer"])
    placer.restore_state(_read_placer_state(reader, header))
    if placer.n_placed != header["n_placed"]:
        raise SnapshotError(
            f"snapshot claims {header['n_placed']} placements but "
            f"carries {placer.n_placed}"
        )

    config = header["engine_config"]
    engine = PlacementEngine(
        placer,
        epoch_length=config["epoch_length"],
        horizon_epochs=config["horizon_epochs"],
        truncate_spent=config["truncate_spent"],
        _preplaced_ok=True,
    )
    scalars = header["engine_scalars"]
    mask_blob = reader.get("remaining_masks").tobytes()
    masks = []
    cursor = 0
    for nbytes in reader.get("remaining_nbytes"):
        masks.append(
            int.from_bytes(mask_blob[cursor : cursor + nbytes], "big")
        )
        cursor += nbytes
    if cursor != len(mask_blob):
        raise SnapshotError(
            "remaining_nbytes does not account for every mask byte"
        )
    engine.restore_state(
        {
            "remaining": dict(
                zip(reader.get("remaining_txid").tolist(), masks)
            ),
            "pending_release": reader.get("pending_release").tolist(),
            "horizon_start": scalars["horizon_start"],
            "epoch": scalars["epoch"],
            "peak_live": scalars["peak_live"],
        }
    )
    return engine
