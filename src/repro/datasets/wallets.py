"""Wallet population model for the synthetic workload.

Real Bitcoin spending has strong locality: a wallet combines its own
UTXOs as inputs, pays a small set of recurring partners, and receives
change back to itself. That locality is what creates community structure
in the TaN network, and community structure is exactly the signal a
placement algorithm can exploit (a random stream with no locality would
make every placer equally bad). The wallet model keeps:

- a Zipf-distributed activity level per wallet (few exchanges dominate),
- per-wallet UTXO pools with recency-biased selection (wallets spend
  recent coins more often - the "hot coin" effect),
- a sticky partner graph (repeat business), grown by preferential
  attachment, and
- wallet *communities*: most new partners come from the spender's own
  community, so payment flows - and therefore TaN edges - concentrate
  inside clusters. This mirrors the separability of the real Bitcoin TaN
  (the paper's Metis baseline cuts it to 1.66% cross-TX at 4 shards,
  impossible without clusters). Community sizes are Zipf-distributed:
  the Bitcoin graph is dominated by a few huge activity clusters
  (exchanges and their orbits), and
- *hubs*: a handful of exchange-like wallets that everyone occasionally
  pays and that constantly recycle a pool of coins deposited from all
  communities. A coin received from a hub carries a *misleading* direct
  parent (the hub's chain, not the payee's community), which is exactly
  the structure separating one-hop Greedy placement from the T2S random
  walk: T2S's division by ``|Nout(v)|`` dilutes the high-fanout hub
  transactions and still recovers the community signal from deeper
  ancestry (paper Table I: Greedy 24.6% vs T2S 9.3% cross at 4 shards).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.rng import ZipfSampler
from repro.utxo.transaction import OutPoint


@dataclass(slots=True)
class _Wallet:
    """Book-keeping for one wallet: its coins and favourite partners."""

    address: int
    utxos: list[tuple[OutPoint, int]] = field(default_factory=list)
    partners: list[int] = field(default_factory=list)


class WalletModel:
    """Population of wallets with Zipf activity and sticky partners."""

    def __init__(
        self,
        n_wallets: int,
        rng: random.Random,
        activity_exponent: float = 0.8,
        partner_stickiness: float = 0.7,
        max_partners: int = 8,
        recency_bias: float = 0.8,
        n_communities: int = 64,
        intra_community_prob: float = 0.92,
        community_exponent: float = 1.0,
        n_hubs: int = 0,
        hub_payment_prob: float = 0.15,
    ) -> None:
        if n_wallets <= 1:
            raise ConfigurationError(
                f"WalletModel needs at least 2 wallets, got {n_wallets}"
            )
        if not 0.0 <= partner_stickiness <= 1.0:
            raise ConfigurationError(
                f"partner_stickiness must be in [0, 1], got {partner_stickiness}"
            )
        if not 0.0 <= recency_bias < 1.0:
            raise ConfigurationError(
                f"recency_bias must be in [0, 1), got {recency_bias}"
            )
        if n_communities < 1:
            raise ConfigurationError(
                f"n_communities must be >= 1, got {n_communities}"
            )
        if not 0.0 <= intra_community_prob <= 1.0:
            raise ConfigurationError(
                f"intra_community_prob must be in [0, 1], got "
                f"{intra_community_prob}"
            )
        if community_exponent < 0:
            raise ConfigurationError(
                f"community_exponent must be >= 0, got {community_exponent}"
            )
        if n_hubs < 0 or n_hubs >= n_wallets:
            raise ConfigurationError(
                f"n_hubs must be in [0, n_wallets), got {n_hubs}"
            )
        if not 0.0 <= hub_payment_prob <= 1.0:
            raise ConfigurationError(
                f"hub_payment_prob must be in [0, 1], got {hub_payment_prob}"
            )
        self._rng = rng
        self._wallets = [_Wallet(address=a) for a in range(n_wallets)]
        # Activity rank -> address through a random permutation, so the
        # hottest wallets land in random communities (aligning rank with
        # address would spread one hot wallet per community through the
        # seed loop below and flatten community traffic).
        self._activity = ZipfSampler(n_wallets, activity_exponent, rng)
        self._activity_order = list(range(n_wallets))
        rng.shuffle(self._activity_order)
        self._stickiness = partner_stickiness
        self._max_partners = max_partners
        self._recency_bias = recency_bias
        self._n_communities = min(n_communities, n_wallets)
        self._intra_prob = intra_community_prob
        # Zipf-sized communities: wallet a joins a community drawn from a
        # Zipf over community ranks, so a few communities are huge. Every
        # community keeps at least one member (the seed loop) so lookups
        # never hit an empty list.
        community_sampler = ZipfSampler(
            self._n_communities, community_exponent, rng
        )
        self._community_of = [0] * n_wallets
        self._members: list[list[int]] = [
            [] for _ in range(self._n_communities)
        ]
        for address in range(n_wallets):
            if address < self._n_communities:
                community = address  # seed one member per community
            else:
                community = community_sampler.sample()
            self._community_of[address] = community
            self._members[community].append(address)
        # Local activity: rank within the community, shared sampler sized
        # by the biggest community (draws are taken modulo member count).
        largest = max(len(members) for members in self._members)
        self._local_activity = ZipfSampler(largest, activity_exponent, rng)
        # Hubs are the globally most active wallets (top activity ranks),
        # so their deposit pools recycle fast.
        self._hubs = [self._activity_order[rank] for rank in range(n_hubs)]
        self._hub_set = set(self._hubs)
        self._hub_prob = hub_payment_prob if n_hubs else 0.0
        self._n_funded = 0
        self._funded_ids: list[int] = []
        self._is_funded = [False] * n_wallets

    @property
    def n_wallets(self) -> int:
        """Total wallet population size."""
        return len(self._wallets)

    @property
    def n_funded(self) -> int:
        """Wallets currently holding at least one UTXO."""
        return self._n_funded

    def deposit(self, address: int, outpoint: OutPoint, value: int) -> None:
        """Credit a UTXO to a wallet (called for every created output)."""
        wallet = self._wallets[address]
        wallet.utxos.append((outpoint, value))
        if not self._is_funded[address]:
            self._is_funded[address] = True
            self._funded_ids.append(address)
            self._n_funded += 1

    def pick_spender(
        self, hot_communities: Sequence[int] | None = None
    ) -> int | None:
        """Choose a funded wallet, biased by Zipf activity.

        ``hot_communities`` restricts the draw to the given communities
        (the generator's activity-burst model: real services are busy in
        waves, which is what correlates graph clusters with time and
        breaks offline partitions' *temporal* balance - the paper's
        Figs. 5-7 Metis pathology). Draws activity ranks and keeps the
        first funded match; bounded retries keep the cost O(1) amortized.
        Returns None when nothing is funded.
        """
        if self._n_funded == 0:
            return None
        if hot_communities is not None:
            hot = set(hot_communities)
            for _ in range(24):
                community = hot_communities[
                    self._rng.randrange(len(hot_communities))
                ]
                candidate = self._sample_community_member(community)
                if (
                    self._is_funded[candidate]
                    and self._wallets[candidate].utxos
                ):
                    return candidate
            # Fall through to the global draw when the hot communities
            # hold no funded wallets yet (early stream).
        for _ in range(16):
            candidate = self._activity_order[self._activity.sample()]
            if self._is_funded[candidate] and self._wallets[candidate].utxos:
                return candidate
        # Fallback: uniform over the funded list (compact it lazily).
        for _ in range(16):
            candidate = self._funded_ids[
                self._rng.randrange(len(self._funded_ids))
            ]
            if self._wallets[candidate].utxos:
                return candidate
        self._compact_funded()
        if not self._funded_ids:
            return None
        return self._funded_ids[self._rng.randrange(len(self._funded_ids))]

    def withdraw(self, address: int, n_inputs: int) -> list[tuple[OutPoint, int]]:
        """Remove and return up to ``n_inputs`` UTXOs from a wallet.

        Selection is recency-biased: with probability ``recency_bias`` take
        the most recent coin, otherwise a uniform one. Both operations are
        O(1) thanks to swap-removal (UTXO order within a wallet carries no
        protocol meaning).
        """
        wallet = self._wallets[address]
        taken: list[tuple[OutPoint, int]] = []
        while wallet.utxos and len(taken) < n_inputs:
            if self._rng.random() < self._recency_bias:
                index = len(wallet.utxos) - 1
            else:
                index = self._rng.randrange(len(wallet.utxos))
            wallet.utxos[index], wallet.utxos[-1] = (
                wallet.utxos[-1],
                wallet.utxos[index],
            )
            taken.append(wallet.utxos.pop())
        if not wallet.utxos and self._is_funded[address]:
            self._is_funded[address] = False
            self._n_funded -= 1
        return taken

    def community_of(self, address: int) -> int:
        """Community id of a wallet."""
        return self._community_of[address]

    def is_hub(self, address: int) -> bool:
        """True when the wallet is an exchange-like hub."""
        return address in self._hub_set

    def community_size(self, community: int) -> int:
        """Member count of a community (inspection/test helper)."""
        return len(self._members[community])

    def pick_payee(self, spender: int) -> int:
        """Choose who ``spender`` pays.

        With probability ``hub_payment_prob`` the payment goes to a hub
        (deposits to an exchange - not sticky, hubs are not "partners").
        Otherwise, with probability ``partner_stickiness`` an existing
        partner is reused; failing that a new partner is drawn - from the
        spender's own community with probability ``intra_community_prob``,
        globally (Zipf by activity) otherwise - and becomes sticky, capped
        at ``max_partners`` with random replacement.
        """
        wallet = self._wallets[spender]
        if spender in self._hub_set:
            # Hub payouts (exchange withdrawals) go anywhere: global
            # activity draw, no stickiness. This is what spreads
            # hub-parented coins across every community.
            payee = self._activity_order[self._activity.sample()]
            if payee == spender:
                payee = self._activity_order[
                    self._activity.sample() % len(self._wallets)
                ]
            if payee != spender:
                return payee
            return (spender + 1) % len(self._wallets)
        if self._hubs and self._rng.random() < self._hub_prob:
            hub = self._hubs[self._rng.randrange(len(self._hubs))]
            if hub != spender:
                return hub
        if wallet.partners and self._rng.random() < self._stickiness:
            return wallet.partners[self._rng.randrange(len(wallet.partners))]
        if self._rng.random() < self._intra_prob:
            payee = self._sample_community_member(self.community_of(spender))
        else:
            payee = self._activity_order[self._activity.sample()]
        if payee == spender:
            members = self._members[self.community_of(spender)]
            if len(members) > 1:
                # Next member of the same community, so intra draws stay
                # intra.
                payee = members[
                    (members.index(spender) + 1) % len(members)
                ]
            else:
                payee = (spender + 1) % len(self._wallets)
        if len(wallet.partners) < self._max_partners:
            wallet.partners.append(payee)
        else:
            wallet.partners[self._rng.randrange(len(wallet.partners))] = payee
        return payee

    def _sample_community_member(self, community: int) -> int:
        """Zipf-by-rank draw restricted to one community's members.

        Member lists are shuffled at construction, so low local ranks are
        arbitrary members (community-local "hot" wallets), independent of
        the global activity order.
        """
        members = self._members[community]
        rank = self._local_activity.sample() % len(members)
        return members[rank]

    def balance_of(self, address: int) -> int:
        """Total value held by a wallet (test/inspection helper)."""
        return sum(value for _, value in self._wallets[address].utxos)

    def utxo_count(self, address: int) -> int:
        """Number of UTXOs a wallet holds."""
        return len(self._wallets[address].utxos)

    def _compact_funded(self) -> None:
        # A drain-then-refund cycle can leave duplicate ids in the list
        # (deposit appends without scanning); dict.fromkeys dedupes while
        # preserving order.
        self._funded_ids = [
            address
            for address in dict.fromkeys(self._funded_ids)
            if self._wallets[address].utxos
        ]
        self._n_funded = len(self._funded_ids)
