"""The placement-strategy interface and factory.

A placement strategy consumes the transaction stream in arrival order and
decides, online, which shard owns each transaction. Strategies are the
unit the whole evaluation varies: Tables I/II compare their static
cross-TX quality; Figures 3-11 plug them into the simulator.

Contract: ``place`` is called exactly once per transaction, in stream
order; it must return a shard id in ``[0, n_shards)`` and record the
assignment so later transactions can see their inputs' shards via
``shard_of``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.errors import ConfigurationError, PlacementError
from repro.utxo.transaction import Transaction


class PlacementStrategy(ABC):
    """Base class for all transaction placers."""

    #: Registry name -> subclass, populated by __init_subclass__.
    registry: dict[str, type["PlacementStrategy"]] = {}

    #: Subclasses set this to register themselves with the factory.
    name: str = ""

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.name:
            PlacementStrategy.registry[cls.name] = cls

    def __init__(self, n_shards: int) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be > 0, got {n_shards}")
        self.n_shards = n_shards
        self._assignment: list[int] = []

    # -- contract ----------------------------------------------------------

    @abstractmethod
    def _choose(self, tx: Transaction) -> int:
        """Pick a shard for ``tx``; assignment recording is handled here."""

    def place(self, tx: Transaction) -> int:
        """Place one transaction; returns its shard."""
        if tx.txid != len(self._assignment):
            raise PlacementError(
                f"transactions must be placed in dense stream order: got "
                f"{tx.txid}, expected {len(self._assignment)}"
            )
        shard = self._choose(tx)
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"{type(self).__name__} produced shard {shard}, valid "
                f"range is [0, {self.n_shards})"
            )
        self._assignment.append(shard)
        return shard

    def place_stream(self, txs: Iterable[Transaction]) -> list[int]:
        """Place a whole stream; returns the assignment list."""
        for tx in txs:
            self.place(tx)
        return list(self._assignment)

    def force_place(self, tx: Transaction, shard: int) -> None:
        """Record an externally decided placement (warm starts).

        Table II seeds every strategy with a Metis partition of the
        stream prefix before measuring the placement window; the internal
        state (scores, sizes) must track these decisions exactly as if
        the strategy had made them.
        """
        if tx.txid != len(self._assignment):
            raise PlacementError(
                f"transactions must be placed in dense stream order: got "
                f"{tx.txid}, expected {len(self._assignment)}"
            )
        if not 0 <= shard < self.n_shards:
            raise PlacementError(
                f"forced shard {shard} out of range [0, {self.n_shards})"
            )
        self._on_forced(tx, shard)
        self._assignment.append(shard)

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        """Subclass hook: absorb a forced placement into internal state.

        The default is a no-op, correct for stateless strategies
        (random hash, offline replay).
        """

    # -- shared queries ------------------------------------------------------

    @property
    def n_placed(self) -> int:
        """Transactions placed so far."""
        return len(self._assignment)

    def shard_of(self, txid: int) -> int:
        """Shard of an already-placed transaction."""
        return self._assignment[txid]

    def assignment(self) -> list[int]:
        """Copy of the full assignment so far."""
        return list(self._assignment)

    def input_shards(self, tx: Transaction) -> set[int]:
        """``Sin(u)`` given the placements made so far."""
        return {self._assignment[parent] for parent in tx.input_txids}

    def shard_sizes(self) -> list[int]:
        """Current transaction count per shard."""
        sizes = [0] * self.n_shards
        for shard in self._assignment:
            sizes[shard] += 1
        return sizes


def make_placer(
    name: str, n_shards: int, **kwargs
) -> PlacementStrategy:
    """Factory over the strategy registry.

    Names: ``optchain``, ``omniledger``, ``greedy``, ``metis``, ``t2s``
    (see :mod:`repro.core.baselines` and :mod:`repro.core.optchain`).
    """
    try:
        cls = PlacementStrategy.registry[name]
    except KeyError:
        known = ", ".join(sorted(PlacementStrategy.registry))
        raise ConfigurationError(
            f"unknown placement strategy {name!r}; known: {known}"
        )
    return cls(n_shards=n_shards, **kwargs)
