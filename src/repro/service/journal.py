"""Per-partition write-ahead batch journal for crash-safe serving.

A sharded worker is a deterministic function of its last checkpoint and
the sequence of mutations applied since: owned batches placed under the
write lease, hot-state imports at lease handoff, and writebacks
absorbed while idle. The journal records exactly that sequence, so a
SIGKILLed worker respawns from its per-partition checkpoint, replays
the tail, and is **bit-identical** to the state it died with - the same
contract snapshots pin, extended to non-idle crashes.

Design points:

- **Raw frames, not decoded state.** Batch records store the raw
  binary place payloads (post-routing segments, exactly the coalesced
  groups the dispatcher placed) plus the acquired foreign-parent
  states. Replay re-runs ``place_batch`` with the recorded states, so
  it needs no live peers and reproduces the identical arithmetic -
  including epoch/horizon sweeps, which fire on batch boundaries and
  therefore require the original batch *grouping*, not just the txids.
- **Append before apply.** A record is on disk (buffered write + flush;
  a process crash loses nothing the OS accepted) before the mutation
  executes, so the journal is always a superset of externally visible
  state. ``fsync`` is batched (every ``sync_every_bytes``) - a torn
  tail after a *host* crash is detected by CRC and discarded, which is
  safe for the same reason: a record that never fsynced belongs to a
  batch whose response cannot have been sent.
- **Checkpoint binding.** The header names the snapshot nonce and
  cursor the tail applies on top of. The journal is reset (truncated,
  re-headed with the new nonce) immediately after every checkpoint,
  under the engine lock; a nonce mismatch at recovery means the WAL
  predates (or outlived) the snapshot next to it and is discarded -
  the snapshot alone is then the complete state.
- **Lost-writeback healing.** The final journaled batch may have died
  between placing and delivering its writebacks. Replay returns that
  batch's writebacks; the coordinator re-applies them to the owners
  (absolute values - re-application is exact) before the partition
  rejoins service.

On-disk layout::

    8 bytes   magic b"OCWAL" + version u8 + flags u8 (reserved)
    4 bytes   header length u32   (little-endian)
    4 bytes   header CRC32 u32
    N bytes   header JSON {partition_id, n_partitions, lease_length,
                           base_cursor, base_nonce}
    records   type u8 + payload length u32 + payload CRC32 u32 + payload

Record types: ``BATCH`` (segment count, length-prefixed raw payloads,
parent-states JSON), ``GRANT`` (hot-state JSON), ``APPLY`` (writeback
updates JSON).
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import EngineError
from repro.service.partition import (
    EnginePartition,
    decode_parent_states,
    encode_parent_states,
)
from repro.service.wire import decode_place_payload

JOURNAL_MAGIC = b"OCWAL\x00"
JOURNAL_VERSION = 1

_HEADER_PREFIX = struct.Struct("<6sBB")  # magic, version, flags
_HEADER_LEN = struct.Struct("<II")  # header length, header crc32
_RECORD = struct.Struct("<BII")  # type, payload length, payload crc32

REC_BATCH = 1
REC_GRANT = 2
REC_APPLY = 3

_U32 = struct.Struct("<I")


def journal_path_for(checkpoint_path: str) -> str:
    """Journal sibling of one per-partition checkpoint file."""
    return checkpoint_path + ".wal"


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _encode_batch_payload(
    segments: Sequence[bytes], states: dict[int, dict[str, Any]]
) -> bytes:
    out = io.BytesIO()
    out.write(_U32.pack(len(segments)))
    for segment in segments:
        out.write(_U32.pack(len(segment)))
        out.write(segment)
    states_bytes = json.dumps(
        encode_parent_states(states), separators=(",", ":")
    ).encode("utf-8")
    out.write(_U32.pack(len(states_bytes)))
    out.write(states_bytes)
    return out.getvalue()


def _decode_batch_payload(
    payload: bytes,
) -> tuple[list[bytes], dict[int, dict[str, Any]]]:
    offset = 0
    (n_segments,) = _U32.unpack_from(payload, offset)
    offset += 4
    segments = []
    for _ in range(n_segments):
        (length,) = _U32.unpack_from(payload, offset)
        offset += 4
        segments.append(payload[offset : offset + length])
        offset += length
    (length,) = _U32.unpack_from(payload, offset)
    offset += 4
    states = decode_parent_states(
        json.loads(payload[offset : offset + length].decode("utf-8"))
    )
    return segments, states


class BatchJournal:
    """Append side of one partition's WAL.

    Not thread-safe on its own; the worker serializes all mutations
    (and therefore all appends) under its engine lock.
    """

    def __init__(
        self,
        path: str,
        partition_id: int,
        n_partitions: int,
        lease_length: int,
        sync_every_bytes: int = 1 << 20,
    ) -> None:
        self.path = path
        self.partition_id = partition_id
        self.n_partitions = n_partitions
        self.lease_length = lease_length
        self.sync_every_bytes = max(0, sync_every_bytes)
        self.base_cursor = 0
        self.base_nonce = ""
        #: Fault-injection hook: called after every BATCH append (the
        #: "frame count" chaos plans kill on). None in production.
        self.on_batch_append: "Callable[[BatchJournal], None] | None" = None
        self._fh: "io.BufferedWriter | None" = None
        self._unsynced = 0
        # Lifetime observability counters (survive reset(): they count
        # work done, not bytes currently on disk). Exported through
        # W_STATS into the metrics endpoint.
        self.bytes_appended = 0
        self.records_appended = 0
        self.fsyncs = 0
        self.resets = 0

    # -- lifecycle ---------------------------------------------------------

    def open(self, base_cursor: int, base_nonce: str) -> None:
        """Continue an existing journal (after replay) or start fresh.

        If the file exists its tail is assumed already validated (and
        torn records truncated) by :func:`replay_journal`; appends
        continue under the existing header. Otherwise the journal is
        reset to an empty tail bound to ``(base_cursor, base_nonce)``.
        """
        if os.path.exists(self.path):
            self.base_cursor = base_cursor
            self.base_nonce = base_nonce
            self._fh = open(self.path, "ab")
            self._unsynced = 0
        else:
            self.reset(base_cursor, base_nonce)

    def reset(self, base_cursor: int, base_nonce: str) -> None:
        """Truncate to an empty tail bound to a new checkpoint base.

        Called immediately after every checkpoint (checkpoint first,
        reset second): a crash between the two leaves a new snapshot
        next to an old-nonce WAL, which recovery discards - correct,
        because the snapshot already contains everything the old tail
        recorded. The header goes through a tmp file + atomic rename
        so a crash mid-reset never leaves a half-written header.
        """
        self.close()
        self.base_cursor = base_cursor
        self.base_nonce = base_nonce or ""
        header = json.dumps(
            {
                "partition_id": self.partition_id,
                "n_partitions": self.n_partitions,
                "lease_length": self.lease_length,
                "base_cursor": self.base_cursor,
                "base_nonce": self.base_nonce,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(
                _HEADER_PREFIX.pack(JOURNAL_MAGIC, JOURNAL_VERSION, 0)
            )
            fh.write(_HEADER_LEN.pack(len(header), _crc(header)))
            fh.write(header)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")
        self._unsynced = 0
        self.fsyncs += 1  # the header fsync above
        self.resets += 1

    def close(self) -> None:
        if self._fh is not None:
            try:
                self.sync()
            finally:
                self._fh.close()
                self._fh = None

    def tell(self) -> int:
        """Current end-of-journal offset (tests / fault injection)."""
        if self._fh is None:
            return 0
        self._fh.flush()
        return self._fh.tell()

    # -- appends -----------------------------------------------------------

    def _append(self, rtype: int, payload: bytes) -> None:
        fh = self._fh
        if fh is None:
            raise RuntimeError("journal is not open")
        fh.write(_RECORD.pack(rtype, len(payload), _crc(payload)))
        fh.write(payload)
        # Flush to the OS on every record: a *process* crash (SIGKILL)
        # then loses nothing. fsync - host-crash durability - is
        # batched; CRC framing makes the undersynced tail detectable.
        fh.flush()
        size = _RECORD.size + len(payload)
        self._unsynced += size
        self.bytes_appended += size
        self.records_appended += 1
        if self.sync_every_bytes and self._unsynced >= self.sync_every_bytes:
            self.sync()

    def sync(self) -> None:
        if self._fh is not None and self._unsynced:
            os.fsync(self._fh.fileno())
            self._unsynced = 0
            self.fsyncs += 1

    def stats(self) -> dict[str, int]:
        """Lifetime WAL counters (metrics endpoint / W_STATS)."""
        return {
            "bytes_appended": self.bytes_appended,
            "records_appended": self.records_appended,
            "fsyncs": self.fsyncs,
            "resets": self.resets,
        }

    def append_batch(
        self,
        segments: Sequence[bytes],
        states: dict[int, dict[str, Any]],
    ) -> None:
        self._append(REC_BATCH, _encode_batch_payload(segments, states))
        if self.on_batch_append is not None:
            self.on_batch_append(self)

    def append_grant(self, hot: dict[str, Any]) -> None:
        self._append(
            REC_GRANT,
            json.dumps(hot, separators=(",", ":")).encode("utf-8"),
        )

    def append_apply(self, updates: Sequence[dict[str, Any]]) -> None:
        self._append(
            REC_APPLY,
            json.dumps(list(updates), separators=(",", ":")).encode(
                "utf-8"
            ),
        )


@dataclass
class ReplayResult:
    """Outcome of one recovery replay."""

    #: Writebacks of the final journaled batch, compacted per txid -
    #: the only batch whose original writeback delivery may have been
    #: lost in the crash. Re-applied by the coordinator before the
    #: partition rejoins service (absolute values; exact either way).
    writebacks: list[dict[str, Any]] = field(default_factory=list)
    n_batches: int = 0
    n_grants: int = 0
    n_applies: int = 0
    #: Torn-tail bytes truncated off the file (CRC/short-read).
    torn_bytes: int = 0
    #: True when a journal file existed and its tail was applied.
    replayed: bool = False
    #: True when a journal existed but was bound to a different
    #: checkpoint (nonce/cursor/geometry) and had to be discarded.
    stale: bool = False


def _read_header(
    raw: bytes,
) -> "tuple[dict[str, Any], int] | None":
    """``(header, records_offset)``; None when torn/not a journal."""
    prefix_len = _HEADER_PREFIX.size + _HEADER_LEN.size
    if len(raw) < prefix_len:
        return None
    magic, version, _flags = _HEADER_PREFIX.unpack_from(raw, 0)
    if magic != JOURNAL_MAGIC or version != JOURNAL_VERSION:
        return None
    header_len, header_crc = _HEADER_LEN.unpack_from(
        raw, _HEADER_PREFIX.size
    )
    end = prefix_len + header_len
    if end > len(raw):
        return None
    header_bytes = raw[prefix_len:end]
    if _crc(header_bytes) != header_crc:
        return None
    try:
        return json.loads(header_bytes.decode("utf-8")), end
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None


def iter_records(raw: bytes, offset: int):
    """Yield ``(rtype, payload)`` until the end or a torn record.

    Returns (via StopIteration value semantics avoided - the caller
    checks the final offset) only intact, CRC-valid records; the first
    short or corrupt record ends iteration.
    """
    records = []
    while offset < len(raw):
        if offset + _RECORD.size > len(raw):
            break
        rtype, length, crc = _RECORD.unpack_from(raw, offset)
        start = offset + _RECORD.size
        end = start + length
        if end > len(raw):
            break
        payload = raw[start:end]
        if _crc(payload) != crc:
            break
        records.append((rtype, payload))
        offset = end
    return records, offset


def replay_journal(
    path: str, partition: EnginePartition
) -> ReplayResult:
    """Replay a WAL tail onto a freshly restored partition.

    ``partition`` must be exactly the checkpoint-restored (or fresh)
    state: the journal header's ``(base_cursor, base_nonce)`` must
    match the partition's cursor and its engine's
    ``last_snapshot_nonce``, or the tail is discarded as stale. A torn
    tail is truncated off the file so subsequent appends are clean.
    """
    result = ReplayResult()
    try:
        raw = open(path, "rb").read()
    except OSError:
        return result
    parsed = _read_header(raw)
    if parsed is None:
        # Not a (complete) journal header: nothing trustworthy here.
        result.stale = bool(raw)
        try:
            os.unlink(path)
        except OSError:
            pass
        return result
    header, offset = parsed
    base_nonce = partition.engine.last_snapshot_nonce or ""
    if (
        header.get("partition_id") != partition.partition_id
        or header.get("n_partitions") != partition.n_partitions
        or header.get("lease_length") != partition.lease_length
        or header.get("base_cursor") != partition.n_placed
        or (header.get("base_nonce") or "") != base_nonce
    ):
        result.stale = True
        try:
            os.unlink(path)
        except OSError:
            pass
        return result
    records, end = iter_records(raw, offset)
    if end < len(raw):
        result.torn_bytes = len(raw) - end
        with open(path, "r+b") as fh:
            fh.truncate(end)
            fh.flush()
            os.fsync(fh.fileno())
    last_batch_writebacks: list[dict[str, Any]] = []
    for rtype, payload in records:
        if rtype == REC_BATCH:
            segments, states = _decode_batch_payload(payload)
            batch = []
            for segment in segments:
                batch.extend(decode_place_payload(segment))
            try:
                _shards, writebacks = partition.place_batch(
                    batch, states
                )
            except EngineError:
                # The original attempt failed identically (the reject
                # is atomic); the record is a no-op.
                last_batch_writebacks = []
                continue
            last_batch_writebacks = writebacks
            result.n_batches += 1
        elif rtype == REC_GRANT:
            partition.import_hot_state(
                json.loads(payload.decode("utf-8"))
            )
            result.n_grants += 1
            last_batch_writebacks = []
        elif rtype == REC_APPLY:
            partition.apply_writebacks(
                json.loads(payload.decode("utf-8"))
            )
            result.n_applies += 1
            last_batch_writebacks = []
        # Unknown record types are skipped (forward compatibility).
        # Only a *final* successful batch can have undelivered
        # writebacks: any later record proves the crashed process
        # survived past that batch's writeback round trip, so
        # last_batch_writebacks is cleared on every non-batch record.
    compacted: dict[int, dict[str, Any]] = {
        update["txid"]: update for update in last_batch_writebacks
    }
    result.writebacks = list(compacted.values())
    result.replayed = True
    return result
