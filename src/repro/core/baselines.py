"""Baseline placement strategies the paper compares against (§IV-B, §V).

- :class:`OmniLedgerRandomPlacer` - the incumbent: hash the transaction
  to a shard. Balanced but blind to structure (94-99.98% cross-TXs).
- :class:`GreedyPlacer` - place with the most input transactions, under a
  ``(1 + epsilon) * n/k`` size cap (the paper's Greedy, §IV-B).
- :class:`T2SOnlyPlacer` - argmax of the T2S score under the same cap
  (the "T2S-based" method of Tables I/II; alpha = 0.5, epsilon = 0.1).
- :class:`MetisOfflinePlacer` - replays a precomputed offline partition
  (METIS k-way in the paper, our multilevel partitioner here). Unrealistic
  - it requires the whole future - but the paper's lower bound on
  cross-TXs.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.placement import PlacementStrategy
from repro.core.t2s import T2SScorer
from repro.errors import ConfigurationError, PlacementError
from repro.rng import make_rng
from repro.utxo.transaction import Transaction

PAPER_EPSILON = 0.1


class OmniLedgerRandomPlacer(PlacementStrategy):
    """OmniLedger's default placement: ``hash(tx) mod k``."""

    name = "omniledger"

    def _choose(self, tx: Transaction) -> int:
        # Transaction.shard_hash inlined (same digest, same modulus):
        # n_shards > 0 is already enforced at construction.
        return int.from_bytes(tx.digest()[:8], "big") % self.n_shards

    def place(self, tx: Transaction) -> int:
        """Place one transaction; returns its shard.

        Overrides the base wrapper with the hash choice inlined - this
        is the per-issued-transaction path of every random-placement
        simulation, and the choice cannot go out of range, so the
        wrapper's range re-check and the ``_choose`` frame are skipped.
        Decisions and bookkeeping are identical to the base class (the
        simulator equivalence tests pin this).
        """
        assignment = self._assignment
        if tx.txid != len(assignment):
            raise PlacementError(
                f"transactions must be placed in dense stream order: got "
                f"{tx.txid}, expected {len(assignment)}"
            )
        shard = int.from_bytes(tx.digest()[:8], "big") % self.n_shards
        assignment.append(shard)
        self._bump_shard_size(shard)
        return shard


TIE_BREAKS = ("first", "lightest", "random")


class _CappedPlacer(PlacementStrategy):
    """Shared size-cap logic for Greedy and T2S-based placers.

    The paper caps each shard at ``(1 + epsilon) * floor(n / k)`` where
    ``n`` is the total number of transactions. ``expected_total`` supplies
    ``n`` when known (Table I/II runs know the stream length); without
    it the cap tracks the running count, keeping the same (1 + epsilon)
    headroom over the ideal share at every moment.

    ``tie_break`` decides among equal-score shards:

    - ``"random"`` (default, paper-faithful): a uniformly random shard
      among the tied ones. Transactions with no informative inputs (all
      coinbases, and every overflow past a capped favourite) scatter,
      which is how the paper's Greedy fragments wallet chains across
      shards and lands at 24-29% cross-TXs while the deep-ancestry T2S
      score re-coheres them (Table I).
    - ``"first"``: plain argmin-index argmax. Ties pile into the lowest
      shard id, producing wave-fill dynamics and the extreme temporal
      imbalance of the paper's Fig. 6c.
    - ``"lightest"``: prefer the smaller shard - a balance-aware variant
      measured in the ablation bench.
    """

    def __init__(
        self,
        n_shards: int,
        epsilon: float = PAPER_EPSILON,
        expected_total: int | None = None,
        tie_break: str = "random",
        seed: int = 0,
    ) -> None:
        super().__init__(n_shards)
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
        if expected_total is not None and expected_total <= 0:
            raise ConfigurationError(
                f"expected_total must be > 0, got {expected_total}"
            )
        if tie_break not in TIE_BREAKS:
            raise ConfigurationError(
                f"tie_break must be one of {TIE_BREAKS}, got {tie_break!r}"
            )
        self.epsilon = epsilon
        self.expected_total = expected_total
        self.tie_break = tie_break
        self._rng = make_rng(seed)
        # Lightest-shard queries (the all-capped fallback and the check
        # that some shard is still under the cap) are O(log n_shards).
        self.size_argmin()

    def _cap(self) -> float:
        if self.expected_total is not None:
            # The paper's cap: (1 + eps) * floor(n / k) with n known.
            return (1.0 + self.epsilon) * (
                self.expected_total // self.n_shards
            )
        # Online variant: same headroom over the running ideal share,
        # with +1 slack so tiny prefixes (floor = 0) don't force every
        # placement through the all-capped fallback.
        total = self.n_placed + 1
        return (1.0 + self.epsilon) * math.ceil(total / self.n_shards) + 1.0

    def _under_cap(self, shard: int) -> bool:
        return self._shard_sizes[shard] + 1 <= self._cap()

    def _best_allowed(self, scores: Sequence[float]) -> int:
        """Highest score among shards under the cap.

        Falls back to the smallest shard when every shard is at the cap
        (possible early in a run when ``floor(n / k)`` is small).
        """
        cap = self._cap()
        sizes = self._shard_sizes
        allowed = [
            s for s in range(self.n_shards) if sizes[s] + 1 <= cap
        ]
        if not allowed:
            _, lightest = self.size_argmin().peek()
            return lightest
        top = max(scores[s] for s in allowed)
        tied = [s for s in allowed if scores[s] == top]
        return self._pick_tied(tied)

    def _best_allowed_sparse(self, sparse_scores: dict[int, float]) -> int:
        """``_best_allowed`` over a sparse score map; missing shards = 0.

        Fast path for the common case of a unique positive maximum: only
        the sparse support is inspected and the RNG is untouched, exactly
        as the dense scan behaves when ``len(tied) == 1``. Whenever a
        zero score could win (empty support, every scored shard capped,
        or a zero top), the dense scan runs instead so tie enumeration -
        and therefore RNG consumption - is byte-for-byte identical.
        """
        cap = self._cap()
        sizes = self._shard_sizes
        top = 0.0
        tied_count = 0
        for shard, score in sparse_scores.items():
            if sizes[shard] + 1 > cap:
                continue
            if score > top:
                top = score
                tied_count = 1
            elif score == top and top > 0.0:
                tied_count += 1
        if tied_count == 0 or top <= 0.0:
            # A zero score (some unscored shard) ties for the max, or
            # everything scored is capped: delegate to the dense scan.
            scores = [0.0] * self.n_shards
            for shard, score in sparse_scores.items():
                scores[shard] = score
            return self._best_allowed(scores)
        if tied_count == 1:
            for shard, score in sparse_scores.items():
                if score == top and sizes[shard] + 1 <= cap:
                    return shard
        tied = sorted(
            shard
            for shard, score in sparse_scores.items()
            if score == top and sizes[shard] + 1 <= cap
        )
        return self._pick_tied(tied)

    def _pick_tied(self, tied: Sequence[int]) -> int:
        if len(tied) == 1 or self.tie_break == "first":
            return tied[0]
        if self.tie_break == "lightest":
            return min(tied, key=self._shard_sizes.__getitem__)
        return tied[self._rng.randrange(len(tied))]


class GreedyPlacer(_CappedPlacer):
    """Maximize input transactions already in the shard (§IV-B Greedy).

    The paper defines the cost ``f(u, j) = |Sin(u) \\ S_j|`` (inputs *not*
    in shard ``j``) and selects the extremal shard; minimizing that cost
    equals maximizing the inputs inside ``j``, which is what we compute.
    One-hop only - no global view - which is exactly the weakness the
    T2S score fixes.
    """

    name = "greedy"

    def _choose(self, tx: Transaction) -> int:
        assignment = self._assignment
        counts: dict[int, float] = {}
        get = counts.get
        for parent in tx.input_txids:
            shard = assignment[parent]
            counts[shard] = get(shard, 0.0) + 1.0
        return self._best_allowed_sparse(counts)


class T2SOnlyPlacer(_CappedPlacer):
    """Place at the T2S argmax under the Greedy size cap ("T2S-based").

    This is the method behind Tables I and II: like Greedy but scoring
    with the random-walk T2S instead of one-hop input counts.
    """

    name = "t2s"

    def __init__(
        self,
        n_shards: int,
        epsilon: float = PAPER_EPSILON,
        expected_total: int | None = None,
        tie_break: str = "random",
        seed: int = 0,
        alpha: float = 0.5,
        outdeg_mode: str = "spenders",
    ) -> None:
        super().__init__(
            n_shards,
            epsilon=epsilon,
            expected_total=expected_total,
            tie_break=tie_break,
            seed=seed,
        )
        self.scorer = T2SScorer(
            n_shards, alpha=alpha, outdeg_mode=outdeg_mode
        )

    def _choose(self, tx: Transaction) -> int:
        raw = self.scorer.add_transaction_raw(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        scorer_sizes = self.scorer._shard_sizes
        sparse = {
            shard: mass / (scorer_sizes[shard] or 1)
            for shard, mass in raw.items()
        }
        shard = self._best_allowed_sparse(sparse)
        self.scorer.place(tx.txid, shard)
        return shard

    def _on_forced(self, tx: Transaction, shard: int) -> None:
        self.scorer.add_transaction_raw(
            tx.txid, tx.input_txids, len(tx.outputs)
        )
        self.scorer.place(tx.txid, shard)


class MetisOfflinePlacer(PlacementStrategy):
    """Replay a precomputed offline partition (the paper's Metis k-way).

    Build the assignment with
    :func:`repro.partition.metis_like.partition_tan` over the full TaN
    graph, then replay it through the simulator like any online placer.
    """

    name = "metis"

    def __init__(
        self, n_shards: int, precomputed: Sequence[int] | None = None
    ) -> None:
        super().__init__(n_shards)
        if precomputed is None:
            raise ConfigurationError(
                "MetisOfflinePlacer needs precomputed=<assignment list>; "
                "compute it with repro.partition.partition_tan"
            )
        for node, shard in enumerate(precomputed):
            if not 0 <= shard < n_shards:
                raise ConfigurationError(
                    f"precomputed assignment sends node {node} to shard "
                    f"{shard}, valid range is [0, {n_shards})"
                )
        self._precomputed = list(precomputed)

    def _choose(self, tx: Transaction) -> int:
        if tx.txid >= len(self._precomputed):
            raise PlacementError(
                f"precomputed assignment covers {len(self._precomputed)} "
                f"transactions; transaction {tx.txid} is beyond it"
            )
        return self._precomputed[tx.txid]
