"""Binary frame codec: round-trips, peek routing, and fuzzing.

The binary codec is the fast lane of the service wire; any divergence
from the JSON codec's semantics (same transactions in, same response
dicts out) would split the two protocols' behavior. These tests pin the
round-trips exactly and fuzz the decoder with mutated bytes - a hostile
or corrupt frame must fail with :class:`ProtocolError`, never a crash
or a silently wrong batch.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.datasets.synthetic import synthetic_stream
from repro.errors import ProtocolError
from repro.service import wire
from repro.utxo.transaction import OutPoint, Transaction, TxOutput


def _frame_parts(frame: bytes):
    kind, request_id, length = wire.decode_frame_header(
        frame[: wire.FRAME_HEADER_BYTES]
    )
    payload = frame[wire.FRAME_HEADER_BYTES :]
    assert len(payload) == length
    return kind, request_id, payload


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(600, seed=23)


class TestPlaceRoundTrip:
    def test_count_only_round_trip(self, stream):
        frame = wire.encode_place_request(7, stream[:200])
        kind, request_id, payload = _frame_parts(frame)
        assert kind == wire.KIND_PLACE
        assert request_id == 7
        decoded = wire.decode_place_payload(payload)
        assert len(decoded) == 200
        for original, copy in zip(stream[:200], decoded):
            assert copy.txid == original.txid
            assert copy.inputs == original.inputs
            assert len(copy.outputs) == len(original.outputs)
            # Count-only mode zeroes output contents, like the JSON
            # codec's bare-count form.
            assert all(out.value == 0 for out in copy.outputs)

    def test_full_outputs_round_trip(self, stream):
        frame = wire.encode_place_request(1, stream[:100], full_outputs=True)
        _, _, payload = _frame_parts(frame)
        decoded = wire.decode_place_payload(payload)
        for original, copy in zip(stream[:100], decoded):
            assert copy.outputs == original.outputs

    def test_binary_equals_json_codec(self, stream):
        """Both codecs must rebuild identical batches."""
        json_decoded = wire.decode_batch(wire.encode_batch(stream[:150]))
        _, _, payload = _frame_parts(
            wire.encode_place_request(1, stream[:150])
        )
        bin_decoded = wire.decode_place_payload(payload)
        assert bin_decoded == json_decoded

    def test_peek_matches_decode(self, stream):
        batch = stream[40:90]
        _, _, payload = _frame_parts(wire.encode_place_request(3, batch))
        first, count = wire.peek_place_header(payload)
        assert first == 40
        assert count == 50

    def test_zero_output_and_coinbase_txs(self):
        txs = [
            Transaction(txid=0, inputs=(), outputs=(TxOutput(5),)),
            Transaction(
                txid=1,
                inputs=(OutPoint(0, 0),),
                outputs=(),
            ),
        ]
        _, _, payload = _frame_parts(wire.encode_place_request(1, txs))
        decoded = wire.decode_place_payload(payload)
        assert decoded[0].is_coinbase
        assert decoded[1].outputs == ()

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            wire.encode_place_request(1, [])

    def test_value_overflow_flagged(self):
        tx = Transaction(
            txid=0, inputs=(), outputs=(TxOutput(2**70),)
        )
        with pytest.raises(ProtocolError, match="i64"):
            wire.encode_place_request(1, [tx], full_outputs=True)


class TestControlAndResponses:
    def test_control_request_round_trip(self):
        frame = wire.encode_control_request(9, "checkpoint", {"path": "x"})
        kind, request_id, payload = _frame_parts(frame)
        assert wire.op_of_kind(kind) == "checkpoint"
        assert request_id == 9
        assert b'"path"' in payload

    def test_place_refused_as_control(self):
        with pytest.raises(ProtocolError, match="place"):
            wire.encode_control_request(1, "place")
        with pytest.raises(ProtocolError, match="unknown op"):
            wire.encode_control_request(1, "fly")

    def test_shards_response_round_trip(self):
        frame = wire.encode_shards_response(4, [0, 3, 1, 2, 3])
        kind, request_id, payload = _frame_parts(frame)
        assert request_id == 4
        assert wire.decode_response(kind, payload) == {
            "ok": True,
            "shards": [0, 3, 1, 2, 3],
        }

    def test_json_response_round_trip(self):
        frame = wire.encode_json_response(2, {"stats": {"n_placed": 10}})
        kind, _, payload = _frame_parts(frame)
        assert wire.decode_response(kind, payload) == {
            "ok": True,
            "stats": {"n_placed": 10},
        }

    def test_error_response_round_trip(self):
        for code in ("protocol", "engine", "shutdown"):
            frame = wire.encode_error_response(1, code, "boom")
            kind, _, payload = _frame_parts(frame)
            assert wire.decode_response(kind, payload) == {
                "ok": False,
                "code": code,
                "error": "boom",
            }

    def test_encode_response_for_matches_server_dicts(self):
        shards = wire.encode_response_for(1, {"ok": True, "shards": [1, 2]})
        kind, _, payload = _frame_parts(shards)
        assert wire.decode_response(kind, payload)["shards"] == [1, 2]
        ping = wire.encode_response_for(
            2, {"ok": True, "protocol": 2, "n_placed": 5}
        )
        kind, _, payload = _frame_parts(ping)
        decoded = wire.decode_response(kind, payload)
        assert decoded["n_placed"] == 5
        error = wire.encode_response_for(
            3, {"ok": False, "code": "engine", "error": "nope"}
        )
        kind, _, payload = _frame_parts(error)
        assert wire.decode_response(kind, payload)["code"] == "engine"

    def test_request_kind_rejected_as_response(self):
        with pytest.raises(ProtocolError, match="request kind"):
            wire.decode_response(wire.KIND_PLACE, b"")


class TestFraming:
    def test_read_frame_eof_semantics(self):
        """Boundary EOF is a clean close (None); EOF after a partial
        header is a protocol error - even without a sniffed byte."""
        import asyncio

        async def scenario():
            clean = asyncio.StreamReader()
            clean.feed_eof()
            assert await wire.read_frame(clean) is None

            partial = asyncio.StreamReader()
            partial.feed_data(bytes([wire.BIN_MAGIC, wire.KIND_PING, 0]))
            partial.feed_eof()
            with pytest.raises(ProtocolError, match="inside a frame"):
                await wire.read_frame(partial)

        asyncio.run(scenario())

    def test_bad_magic_rejected(self):
        header = struct.pack("<BBQI", 0x7B, wire.KIND_PING, 1, 0)
        with pytest.raises(ProtocolError, match="magic"):
            wire.decode_frame_header(header)

    def test_oversized_payload_rejected(self):
        header = struct.pack(
            "<BBQI", wire.BIN_MAGIC, wire.KIND_PLACE, 1,
            wire.MAX_FRAME_BYTES + 1,
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            wire.decode_frame_header(header)

    def test_unknown_kind_flagged(self):
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            wire.op_of_kind(0x7F)


class TestFuzz:
    """Mutated and random payloads must raise ProtocolError, not crash.

    A decoded batch from a corrupt payload is acceptable only when the
    corruption landed in value bytes (mass/address/txid content) - the
    decoder validates structure, not semantics; the engine validates
    the rest. What is *never* acceptable is an unhandled exception.
    """

    def test_truncated_payloads(self, stream):
        _, _, payload = _frame_parts(wire.encode_place_request(1, stream[:80]))
        for cut in range(0, len(payload), 97):
            truncated = payload[:cut]
            with pytest.raises(ProtocolError):
                wire.decode_place_payload(truncated)

    def test_trailing_garbage(self, stream):
        _, _, payload = _frame_parts(wire.encode_place_request(1, stream[:30]))
        with pytest.raises(ProtocolError, match="trailing"):
            wire.decode_place_payload(payload + b"\x00\x01\x02")

    def test_mutated_bytes_never_crash(self, stream):
        rng = random.Random(1234)
        _, _, payload = _frame_parts(
            wire.encode_place_request(1, stream[:60], full_outputs=True)
        )
        for _ in range(400):
            mutated = bytearray(payload)
            for _ in range(rng.randrange(1, 4)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            try:
                wire.decode_place_payload(bytes(mutated))
            except ProtocolError:
                pass  # the expected failure mode

    def test_random_payloads_never_crash(self):
        rng = random.Random(99)
        for _ in range(300):
            blob = rng.randbytes(rng.randrange(0, 200))
            try:
                wire.decode_place_payload(blob)
            except ProtocolError:
                pass
            try:
                wire.decode_response(
                    wire.RESPONSE_FLAG | rng.randrange(0, 8), blob
                )
            except ProtocolError:
                pass
