"""cProfile the placement hot path of one strategy.

Usage::

    PYTHONPATH=src python scripts/profile_placement.py
    PYTHONPATH=src python scripts/profile_placement.py \
        --strategy optchain_seed --txs 50000 --shards 64 \
        --sort cumulative --stats-out /tmp/optchain.pstats

Stream generation happens before profiling starts, so the report shows
only placement work. Load the ``--stats-out`` file with
``pstats.Stats`` (or snakeviz, if installed) for interactive digging.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro.core._seed_reference  # noqa: F401  (registers *_seed strategies)
from repro.core.placement import PlacementStrategy, make_placer
from repro.datasets.synthetic import synthetic_stream


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--strategy",
        default="optchain",
        choices=sorted(PlacementStrategy.registry) + ["optchain"],
    )
    parser.add_argument("--txs", type=int, default=100_000)
    parser.add_argument("--shards", type=int, default=16)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--lines", type=int, default=25)
    parser.add_argument(
        "--sort", default="tottime", choices=["tottime", "cumulative"]
    )
    parser.add_argument("--stats-out", default=None)
    args = parser.parse_args(argv)

    print(f"generating {args.txs} transactions (seed {args.seed})...")
    stream = synthetic_stream(args.txs, seed=args.seed)
    kwargs = (
        {"expected_total": args.txs}
        if args.strategy in ("t2s", "t2s_seed", "greedy", "greedy_seed")
        else {}
    )
    placer = make_placer(args.strategy, args.shards, **kwargs)

    profiler = cProfile.Profile()
    profiler.enable()
    placer.place_stream(stream)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.lines)
    if args.stats_out:
        stats.dump_stats(args.stats_out)
        print(f"wrote {args.stats_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
