"""Transactions-as-Nodes (TaN) network.

The paper's graph abstraction (Definition 1): each transaction is a node;
a directed edge ``(u, v)`` exists when transaction ``u`` spends an output
of transaction ``v``. Because a transaction can only spend outputs of
earlier transactions, the TaN network is an online DAG whose arrival order
is a topological order.

- :class:`~repro.txgraph.tan.TaNGraph` - the online DAG with both
  adjacency directions and O(1) degree queries.
- :mod:`repro.txgraph.stats` - the Figure 2 statistics (degree
  distributions, cumulative distributions, average degree over time).
- :mod:`repro.txgraph.topo` - DAG/topological-order verification used by
  tests and the dataset loader.
"""

from repro.txgraph.stats import (
    average_degree_timeline,
    cumulative_degree_distribution,
    degree_distribution,
    graph_summary,
    windowed_average_degree,
)
from repro.txgraph.tan import TaNGraph
from repro.txgraph.topo import (
    is_topological_stream,
    kahn_topological_order,
    verify_dag,
)

__all__ = [
    "TaNGraph",
    "average_degree_timeline",
    "cumulative_degree_distribution",
    "degree_distribution",
    "graph_summary",
    "is_topological_stream",
    "kahn_topological_order",
    "verify_dag",
    "windowed_average_degree",
]
