"""Regenerates Fig. 8: average transaction latency.

Shape asserted: OptChain has the lowest average latency of all methods
at the top configuration (paper: up to 93% below OmniLedger), and random
placement's latency grows with the offered rate.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig8


def test_fig8(benchmark, scale):
    cells = run_once(benchmark, lambda: fig8.run(scale))
    print()
    print(fig8.as_table(cells))
    series = fig8.latency_at_max_shards(cells)
    top_rate = max(scale.tx_rates)
    at_top = {
        method: dict(points)[top_rate] for method, points in series.items()
    }
    # The headline comparison: OptChain beats random placement clearly.
    assert at_top["optchain"] < at_top["omniledger"]
    omni = [lat for _, lat in series["omniledger"]]
    assert omni[-1] >= omni[0]
    assert fig8.reduction_vs(cells) > 0.0
