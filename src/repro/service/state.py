"""Versioned snapshot/restore of the full placement-engine state.

Restoring a snapshot and continuing the stream is **bit-identical** to
an uninterrupted run (pinned across processes by
``tests/service/test_golden_restore.py``). Everything that decides a
future placement is captured exactly:

- the T2S store: every live sparse vector *in insertion order* (dict
  iteration order feeds the multi-parent accumulation order, so it is
  part of the arithmetic), spender counts, min-mass pruning bounds;
- the load proxy's lazy-decay clock (``step``/``offset``/``scale``) and
  both lazy heaps *verbatim* - heap layout (including stale entries)
  decides tie-traversal order and when sub-resolution shards demote;
- the strategy bookkeeping (assignment, shard sizes, min/max trackers,
  optional size-argmin heap) and the capped baselines' Mersenne state;
- the engine's truncation bookkeeping (unspent-output counts, pending
  releases, horizon cursor).

On-disk layout (version 2)::

    8 bytes   magic  b"OCSNAP" + version u16 (little-endian)
    4 bytes   header length u32 (little-endian)
    N bytes   header JSON (configs, scalars, section table)
    ...       array-section payload, concatenated in table order
              (optionally one zlib stream - see below)

Numeric bulk state lives in typed array sections (``array`` module
native layout: 4-byte ids/counts, 8-byte doubles/sizes), which is what
makes the format compact - a 25k-transaction OptChain snapshot is a few
hundred KB where a pickled object graph is several MB. Doubles are
stored as raw IEEE-754 bytes, so floats round-trip exactly (including
``inf`` min-mass sentinels). The format records the host byte order
and refuses to load a foreign one: checkpoints are a service-restart
mechanism, not an interchange format.

Version history:

- **1** (PR 3): the layout above, uncompressed, exact scorer only.
- **2** (PR 4): the section payload may be one zlib stream (header
  keys ``compression``/``payload_bytes``; ``repro serve
  --checkpoint-compress``), and the scorer section carries a
  ``t2s_scalars`` header dict for bounded-support scorers (kind,
  dropped-mass total, truncated-vector count) plus the
  ``optchain-topk`` placer spec. Version-1 files remain readable -
  both additions are strictly optional header keys.
- **3** (PR 5): *delta* snapshots. A full snapshot at ``<path>`` plus
  a cumulative ``<path>.delta`` holding only (a) the per-txid arrays
  appended since the base, (b) the pre-base parents the stream touched
  since (spender counts and unspent masks - the engine tracks them for
  free off the spend journal), and (c) the O(n_shards) hot scalars.
  This bounds checkpoint cost by *activity since the base* instead of
  O(n_placed). Each delta save replaces the previous (cumulative since
  base); a full save compacts and deletes the delta. The pairing is
  enforced by a random ``snapshot_nonce`` the delta header must echo.
  :func:`load_engine_snapshot` applies a valid sibling delta
  automatically. Full snapshots still write format 2 - v3 is the delta
  file's format, and v1/v2 files remain readable.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Any

from repro import __version__
from repro.core.baselines import (
    GreedyPlacer,
    OmniLedgerRandomPlacer,
    T2SOnlyPlacer,
    TopKT2SOnlyPlacer,
)
from repro.core.optchain import (
    USE_LOAD_PROXY,
    OptChainPlacer,
    TopKOptChainPlacer,
)
from repro.core.placement import PlacementStrategy
from repro.errors import CorruptCheckpointError, SnapshotError
from repro.service.engine import PlacementEngine

MAGIC = b"OCSNAP"
FORMAT_VERSION = 2

#: On-disk format of delta files (see module docstring, version 3).
DELTA_FORMAT_VERSION = 3

#: Formats this build can load (full writes use FORMAT_VERSION, delta
#: writes DELTA_FORMAT_VERSION).
SUPPORTED_VERSIONS = (1, 2, 3)

#: Section typecodes: ids/counts are 4-byte, sizes 8-byte (a shard can
#: outgrow 2^31 placements long before a txid list would), masses are
#: raw doubles.
_ALLOWED_TYPECODES = ("i", "q", "d", "I", "B")

#: Keys of a scorer dump that are per-txid arrays (serialized as
#: sections); everything else is a header scalar.
_SCORER_ARRAY_KEYS = (
    "p_prime",
    "spender_count",
    "min_mass",
    "shard_sizes",
    "released",
    "output_count",
)


# -- serialization helpers -------------------------------------------------


class _SectionWriter:
    """Accumulates named typed-array sections plus the header table."""

    def __init__(self) -> None:
        self.table: list[dict[str, Any]] = []
        self.blobs: list[bytes] = []

    def add(self, name: str, typecode: str, values) -> None:
        data = array(typecode, values)
        self.table.append(
            {"name": name, "typecode": typecode, "count": len(data)}
        )
        self.blobs.append(data.tobytes())


class _SectionReader:
    def __init__(self, table: list[dict[str, Any]], payload: bytes) -> None:
        self._sections: dict[str, array] = {}
        offset = 0
        for entry in table:
            typecode = entry["typecode"]
            if typecode not in _ALLOWED_TYPECODES:
                raise SnapshotError(
                    f"snapshot section {entry['name']!r} has unsupported "
                    f"typecode {typecode!r}"
                )
            data = array(typecode)
            nbytes = entry["count"] * data.itemsize
            chunk = payload[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise CorruptCheckpointError(
                    f"snapshot truncated in section {entry['name']!r}"
                )
            data.frombytes(chunk)
            self._sections[entry["name"]] = data
            offset += nbytes
        if offset != len(payload):
            raise SnapshotError(
                f"snapshot has {len(payload) - offset} trailing bytes"
            )

    def get(self, name: str) -> array:
        try:
            return self._sections[name]
        except KeyError:
            raise SnapshotError(f"snapshot is missing section {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._sections


# -- placer spec (reconstruction recipe) -----------------------------------


def _support_spec(scorer) -> dict[str, Any]:
    """Support-cap constructor fields of a bounded-support scorer."""
    if scorer.kind == "topk-adaptive":
        return {
            "support_cap": f"auto:{scorer.target_rate!r}",
            "support_initial_cap": scorer.initial_cap,
            "support_window": scorer.window,
        }
    return {"support_cap": scorer.support_cap}


def _placer_spec(placer: PlacementStrategy) -> dict[str, Any]:
    """Constructor recipe for the supported strategies."""
    name = type(placer).name
    if (
        isinstance(placer, TopKOptChainPlacer)
        and name == "optchain-topk"
        and placer.scorer.kind in ("topk", "topk-adaptive")
    ):
        return {
            "strategy": "optchain-topk",
            "n_shards": placer.n_shards,
            **_support_spec(placer.scorer),
            "alpha": placer.scorer.alpha,
            "latency_weight": placer.fitness.latency_weight,
            "l2s_mode": placer.l2s_mode,
            "outdeg_mode": placer.scorer.outdeg_mode,
            "has_proxy": placer._proxy is not None,
            "backend": placer.backend,
        }
    if (
        isinstance(placer, TopKT2SOnlyPlacer)
        and name == "t2s-topk"
        and placer.scorer.kind in ("topk", "topk-adaptive")
    ):
        return {
            "strategy": "t2s-topk",
            "n_shards": placer.n_shards,
            **_support_spec(placer.scorer),
            "epsilon": placer.epsilon,
            "expected_total": placer.expected_total,
            "tie_break": placer.tie_break,
            "alpha": placer.scorer.alpha,
            "outdeg_mode": placer.scorer.outdeg_mode,
        }
    if (
        isinstance(placer, OptChainPlacer)
        and name == "optchain"
        # A hand-injected scorer has no constructor recipe here: refuse
        # rather than restore silently as the exact scorer.
        and placer.scorer.kind == "exact"
    ):
        return {
            "strategy": "optchain",
            "n_shards": placer.n_shards,
            "alpha": placer.scorer.alpha,
            "latency_weight": placer.fitness.latency_weight,
            "l2s_mode": placer.l2s_mode,
            "outdeg_mode": placer.scorer.outdeg_mode,
            "has_proxy": placer._proxy is not None,
            "backend": placer.backend,
        }
    if isinstance(placer, T2SOnlyPlacer) and name == "t2s":
        return {
            "strategy": "t2s",
            "n_shards": placer.n_shards,
            "epsilon": placer.epsilon,
            "expected_total": placer.expected_total,
            "tie_break": placer.tie_break,
            "alpha": placer.scorer.alpha,
            "outdeg_mode": placer.scorer.outdeg_mode,
        }
    if isinstance(placer, GreedyPlacer) and name == "greedy":
        return {
            "strategy": "greedy",
            "n_shards": placer.n_shards,
            "epsilon": placer.epsilon,
            "expected_total": placer.expected_total,
            "tie_break": placer.tie_break,
        }
    if isinstance(placer, OmniLedgerRandomPlacer) and name == "omniledger":
        return {"strategy": "omniledger", "n_shards": placer.n_shards}
    raise SnapshotError(
        f"strategy {name or type(placer).__name__!r} is not snapshotable "
        "(supported: optchain, optchain-topk, t2s, t2s-topk, greedy, "
        "omniledger; custom scorer injections have no reconstruction "
        "recipe)"
    )


def _snapshot_backend(spec: dict[str, Any]) -> str:
    """The execution backend a snapshot's placer restores on.

    Snapshots record the backend they were taken with (format-2 header,
    optional key - older files default to python) so a restore
    re-creates the same configuration. The scorer state itself is
    backend-agnostic, so a numpy-recorded snapshot restored on a host
    without numpy degrades to the python backend with a warning instead
    of failing: the continued stream stays bit-identical, just slower.
    """
    backend = spec.get("backend", "python")
    if backend == "numpy":
        from repro.core.backends import backend_unavailable_reason

        reason = backend_unavailable_reason("numpy")
        if reason is not None:
            import warnings

            warnings.warn(
                f"snapshot was taken with the numpy backend, which is "
                f"unavailable here ({reason}); restoring on the python "
                f"backend (bit-identical state, slower)",
                RuntimeWarning,
                stacklevel=4,
            )
            return "python"
    return backend


def _build_placer(spec: dict[str, Any]) -> PlacementStrategy:
    strategy = spec.get("strategy")
    n_shards = spec["n_shards"]
    if strategy == "optchain":
        cls = OptChainPlacer
        if _snapshot_backend(spec) == "numpy":
            from repro.core.backends.numpy_backend import (
                NumpyOptChainPlacer,
            )

            cls = NumpyOptChainPlacer
        return cls(
            n_shards,
            alpha=spec["alpha"],
            latency_weight=spec["latency_weight"],
            latency_provider=(
                USE_LOAD_PROXY if spec["has_proxy"] else None
            ),
            l2s_mode=spec["l2s_mode"],
            outdeg_mode=spec["outdeg_mode"],
        )
    if strategy == "optchain-topk":
        cls = TopKOptChainPlacer
        if _snapshot_backend(spec) == "numpy":
            from repro.core.backends.numpy_backend import (
                NumpyTopKOptChainPlacer,
            )

            cls = NumpyTopKOptChainPlacer
        return cls(
            n_shards,
            support_cap=spec["support_cap"],
            alpha=spec["alpha"],
            latency_weight=spec["latency_weight"],
            latency_provider=(
                USE_LOAD_PROXY if spec["has_proxy"] else None
            ),
            l2s_mode=spec["l2s_mode"],
            outdeg_mode=spec["outdeg_mode"],
            support_initial_cap=spec.get("support_initial_cap"),
            support_window=spec.get("support_window"),
        )
    if strategy == "t2s-topk":
        return TopKT2SOnlyPlacer(
            n_shards,
            support_cap=spec["support_cap"],
            epsilon=spec["epsilon"],
            expected_total=spec["expected_total"],
            tie_break=spec["tie_break"],
            alpha=spec["alpha"],
            outdeg_mode=spec["outdeg_mode"],
            support_initial_cap=spec.get("support_initial_cap"),
            support_window=spec.get("support_window"),
        )
    if strategy == "t2s":
        return T2SOnlyPlacer(
            n_shards,
            epsilon=spec["epsilon"],
            expected_total=spec["expected_total"],
            tie_break=spec["tie_break"],
            alpha=spec["alpha"],
            outdeg_mode=spec["outdeg_mode"],
        )
    if strategy == "greedy":
        return GreedyPlacer(
            n_shards,
            epsilon=spec["epsilon"],
            expected_total=spec["expected_total"],
            tie_break=spec["tie_break"],
        )
    if strategy == "omniledger":
        return OmniLedgerRandomPlacer(n_shards)
    raise SnapshotError(f"snapshot names unknown strategy {strategy!r}")


# -- state <-> sections ----------------------------------------------------


def _write_placer_state(
    writer: _SectionWriter, state: dict[str, Any], header: dict[str, Any]
) -> None:
    writer.add("assignment", "i", state["assignment"])
    writer.add("shard_sizes", "q", state["shard_sizes"])
    header["placer_scalars"] = {
        "min_shard_size": state["min_shard_size"],
        "min_size_count": state["min_size_count"],
        "max_shard_size": state["max_shard_size"],
    }
    heap = state.get("size_argmin_heap")
    if heap is not None:
        writer.add("argmin_value", "q", (value for value, _ in heap))
        writer.add("argmin_index", "i", (index for _, index in heap))

    scorer = state.get("scorer")
    header["has_scorer"] = scorer is not None
    if scorer is not None:
        nnz = array("i")
        shards = array("i")
        mass = array("d")
        for vector in scorer["p_prime"]:
            if vector is None:
                nnz.append(-1)
            else:
                nnz.append(len(vector))
                for shard, value in vector.items():
                    shards.append(shard)
                    mass.append(value)
        writer.add("t2s_nnz", "i", nnz)
        writer.add("t2s_shards", "i", shards)
        writer.add("t2s_mass", "d", mass)
        writer.add("t2s_spenders", "i", scorer["spender_count"])
        writer.add("t2s_min_mass", "d", scorer["min_mass"])
        writer.add("t2s_shard_sizes", "q", scorer["shard_sizes"])
        header["t2s_released"] = scorer["released"]
        if "output_count" in scorer:
            writer.add("t2s_outputs", "i", scorer["output_count"])
        # Bounded-support/adaptive scorers carry scalar accounting
        # (format v2+): everything in the scorer dump that is not a
        # per-txid array travels in the header. JSON float repr
        # round-trips doubles exactly, so e.g. the dropped-mass total
        # restores bit-identically.
        scalars = {
            key: value
            for key, value in scorer.items()
            if key not in _SCORER_ARRAY_KEYS
        }
        if scalars:
            header["t2s_scalars"] = scalars

    proxy = state.get("proxy")
    header["has_proxy_state"] = proxy is not None
    if proxy is not None:
        writer.add("proxy_scaled", "d", proxy["scaled"])
        writer.add(
            "proxy_heap_value", "d", (value for value, _ in proxy["heap"])
        )
        writer.add(
            "proxy_heap_index", "i", (index for _, index in proxy["heap"])
        )
        writer.add("proxy_zero_heap", "i", proxy["zero_heap"])
        header["proxy_scalars"] = {
            "step": proxy["step"],
            "offset": proxy["offset"],
            "scale": proxy["scale"],
        }

    rng = state.get("rng_state")
    header["has_rng"] = rng is not None
    if rng is not None:
        version, words, gauss = rng
        writer.add("rng_words", "I", words)
        header["rng_scalars"] = {"version": version, "gauss": gauss}


def _read_placer_state(
    reader: _SectionReader, header: dict[str, Any]
) -> dict[str, Any]:
    scalars = header["placer_scalars"]
    state: dict[str, Any] = {
        "assignment": reader.get("assignment").tolist(),
        "shard_sizes": reader.get("shard_sizes").tolist(),
        "min_shard_size": scalars["min_shard_size"],
        "min_size_count": scalars["min_size_count"],
        "max_shard_size": scalars["max_shard_size"],
    }
    if "argmin_value" in reader:
        state["size_argmin_heap"] = list(
            zip(
                reader.get("argmin_value").tolist(),
                reader.get("argmin_index").tolist(),
            )
        )
    if header["has_scorer"]:
        nnz = reader.get("t2s_nnz")
        shards = reader.get("t2s_shards").tolist()
        mass = reader.get("t2s_mass").tolist()
        p_prime: list[dict[int, float] | None] = []
        cursor = 0
        for count in nnz:
            if count < 0:
                p_prime.append(None)
            else:
                end = cursor + count
                p_prime.append(
                    dict(zip(shards[cursor:end], mass[cursor:end]))
                )
                cursor = end
        if cursor != len(shards):
            raise SnapshotError(
                "t2s_nnz does not account for every stored entry"
            )
        scorer: dict[str, Any] = {
            "p_prime": p_prime,
            "spender_count": reader.get("t2s_spenders").tolist(),
            "min_mass": reader.get("t2s_min_mass").tolist(),
            "shard_sizes": reader.get("t2s_shard_sizes").tolist(),
            "released": header["t2s_released"],
        }
        if "t2s_outputs" in reader:
            scorer["output_count"] = reader.get("t2s_outputs").tolist()
        scorer.update(header.get("t2s_scalars", {}))
        state["scorer"] = scorer
    if header["has_proxy_state"]:
        proxy_scalars = header["proxy_scalars"]
        state["proxy"] = {
            "scaled": reader.get("proxy_scaled").tolist(),
            "heap": list(
                zip(
                    reader.get("proxy_heap_value").tolist(),
                    reader.get("proxy_heap_index").tolist(),
                )
            ),
            "zero_heap": reader.get("proxy_zero_heap").tolist(),
            "step": proxy_scalars["step"],
            "offset": proxy_scalars["offset"],
            "scale": proxy_scalars["scale"],
        }
    if header["has_rng"]:
        rng_scalars = header["rng_scalars"]
        state["rng_state"] = (
            rng_scalars["version"],
            tuple(reader.get("rng_words").tolist()),
            rng_scalars["gauss"],
        )
    return state


# -- container i/o ---------------------------------------------------------


def _write_container(
    path: Path,
    version: int,
    header: dict[str, Any],
    blobs: list[bytes],
    compress: bool,
) -> int:
    """Atomic write of one snapshot container (any format version)."""
    if compress:
        raw_payload = b"".join(blobs)
        header["compression"] = "zlib"
        header["payload_bytes"] = len(raw_payload)
        blobs = [zlib.compress(raw_payload, 6)]
    # Integrity footprint of the payload *as stored* (post-compression):
    # a torn or bit-flipped checkpoint fails fast with
    # CorruptCheckpointError instead of restoring garbage. Optional
    # header keys, so v1-v3 files without them stay readable.
    stored = b"".join(blobs)
    header["stored_payload_bytes"] = len(stored)
    header["payload_crc32"] = zlib.crc32(stored) & 0xFFFFFFFF
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<H", version))
        fh.write(struct.pack("<I", len(header_bytes)))
        fh.write(header_bytes)
        for blob in blobs:
            fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
        size = fh.tell()
    os.replace(tmp, path)
    return size


def _read_container(path: "str | Path") -> tuple[int, dict, bytes]:
    """``(version, header, payload)`` of one snapshot container."""
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}")
    if len(raw) < 14 or raw[:6] != MAGIC:
        raise SnapshotError(f"{path} is not an OptChain snapshot")
    (version,) = struct.unpack_from("<H", raw, 6)
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise SnapshotError(
            f"snapshot format {version} is not supported (this build "
            f"reads formats {supported})"
        )
    (header_len,) = struct.unpack_from("<I", raw, 8)
    header_end = 12 + header_len
    if header_end > len(raw):
        raise CorruptCheckpointError(
            f"{path} is truncated inside the header"
        )
    try:
        header = json.loads(raw[12:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptCheckpointError(f"{path} has a corrupt header: {exc}")
    if header.get("byteorder") != sys.byteorder:
        raise SnapshotError(
            f"snapshot was written on a {header.get('byteorder')}-endian "
            f"host; this host is {sys.byteorder}-endian"
        )
    payload = raw[header_end:]
    stored_bytes = header.get("stored_payload_bytes")
    if stored_bytes is not None and len(payload) != stored_bytes:
        raise CorruptCheckpointError(
            f"{path} payload is {len(payload)} bytes, header claims "
            f"{stored_bytes} (torn write?)"
        )
    stored_crc = header.get("payload_crc32")
    if (
        stored_crc is not None
        and zlib.crc32(payload) & 0xFFFFFFFF != stored_crc
    ):
        raise CorruptCheckpointError(
            f"{path} payload fails its CRC32 check (corrupt checkpoint)"
        )
    compression = header.get("compression")
    if compression == "zlib":
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise CorruptCheckpointError(
                f"{path} has a corrupt payload: {exc}"
            )
        expected = header.get("payload_bytes")
        if expected is not None and len(payload) != expected:
            raise CorruptCheckpointError(
                f"{path} payload decompressed to {len(payload)} bytes, "
                f"header claims {expected}"
            )
    elif compression is not None:
        raise SnapshotError(
            f"snapshot uses unknown compression {compression!r}"
        )
    return version, header, payload


# -- public API ------------------------------------------------------------


def save_engine_snapshot(
    engine: PlacementEngine,
    path: "str | Path",
    compress: bool = False,
    track_delta: bool = False,
) -> int:
    """Serialize ``engine`` to ``path``; returns bytes written.

    The write goes through a temporary sibling file and an atomic
    rename, so an interrupted checkpoint never corrupts the previous
    one. With ``compress`` the array-section payload is written as one
    zlib stream (the header stays plain JSON): typed-array state -
    txids, spender counts, near-repetitive masses - deflates to a
    fraction of its raw size, which is what trims the ~5 MB @ 50k-tx
    checkpoints to ~1-2 MB at a few tens of ms of CPU. Compression is
    a save-time choice, not engine state: either kind of snapshot
    restores identically.

    A full save is also a delta *compaction point*: it records the
    base (nonce + cursor) future :func:`save_engine_delta` calls diff
    against, deletes any stale sibling delta, and - with
    ``track_delta`` - starts the engine's dirty-parent journal.
    """
    placer = engine.placer
    nonce = os.urandom(8).hex()
    header: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "byteorder": sys.byteorder,
        "repro_version": __version__,
        "placer": _placer_spec(placer),
        "engine_config": engine.export_config(),
        "n_placed": placer.n_placed,
        "snapshot_nonce": nonce,
    }
    writer = _SectionWriter()
    _write_placer_state(writer, placer.export_state(), header)

    engine_state = engine.export_state()
    remaining = engine_state["remaining"]
    # Values are unspent-output bitmasks of arbitrary width (one bit
    # per output; batch payouts can exceed 63 outputs), so they travel
    # as length-prefixed big-endian byte strings.
    mask_bytes = [
        mask.to_bytes((mask.bit_length() + 7) // 8, "big")
        for mask in remaining.values()
    ]
    writer.add("remaining_txid", "q", remaining.keys())
    writer.add("remaining_nbytes", "i", (len(b) for b in mask_bytes))
    writer.add("remaining_masks", "B", b"".join(mask_bytes))
    writer.add("pending_release", "q", engine_state["pending_release"])
    header["engine_scalars"] = {
        "horizon_start": engine_state["horizon_start"],
        "epoch": engine_state["epoch"],
        "peak_live": engine_state["peak_live"],
    }

    header["sections"] = writer.table
    path = Path(path)
    size = _write_container(
        path, FORMAT_VERSION, header, writer.blobs, compress
    )
    # Compaction point: future deltas diff against this snapshot, and
    # any previous delta is now stale.
    engine._delta_base = {
        "n_placed": placer.n_placed,
        "nonce": nonce,
        "horizon_start": engine.horizon_start,
        "path": str(path),
    }
    engine.last_snapshot_nonce = nonce
    if track_delta:
        if engine._dirty_parents is None:
            engine._dirty_parents = set()
        else:
            engine._dirty_parents.clear()
    else:
        # Opt-in only: without tracking the journal would grow with
        # every touched parent for nothing.
        engine._dirty_parents = None
    stale_delta = path.with_name(path.name + ".delta")
    try:
        stale_delta.unlink()
    except OSError:
        pass
    return size


def load_engine_snapshot(path: "str | Path") -> PlacementEngine:
    """Rebuild a :class:`PlacementEngine` from a snapshot file.

    When a sibling ``<path>.delta`` exists and its base nonce matches
    this snapshot, the delta is applied on top - the result is
    identical to a full snapshot taken at the delta's cursor.
    """
    version, header, payload = _read_container(path)
    if version == DELTA_FORMAT_VERSION or header.get("delta"):
        raise SnapshotError(
            f"{path} is a delta snapshot; load its base full snapshot "
            "(the delta is applied automatically)"
        )
    reader = _SectionReader(header["sections"], payload)

    placer = _build_placer(header["placer"])
    placer.restore_state(_read_placer_state(reader, header))
    if placer.n_placed != header["n_placed"]:
        raise SnapshotError(
            f"snapshot claims {header['n_placed']} placements but "
            f"carries {placer.n_placed}"
        )

    config = header["engine_config"]
    engine = PlacementEngine(
        placer,
        epoch_length=config["epoch_length"],
        horizon_epochs=config["horizon_epochs"],
        truncate_spent=config["truncate_spent"],
        _preplaced_ok=True,
    )
    scalars = header["engine_scalars"]
    mask_blob = reader.get("remaining_masks").tobytes()
    masks = []
    cursor = 0
    for nbytes in reader.get("remaining_nbytes"):
        masks.append(
            int.from_bytes(mask_blob[cursor : cursor + nbytes], "big")
        )
        cursor += nbytes
    if cursor != len(mask_blob):
        raise SnapshotError(
            "remaining_nbytes does not account for every mask byte"
        )
    engine.restore_state(
        {
            "remaining": dict(
                zip(reader.get("remaining_txid").tolist(), masks)
            ),
            "pending_release": reader.get("pending_release").tolist(),
            "horizon_start": scalars["horizon_start"],
            "epoch": scalars["epoch"],
            "peak_live": scalars["peak_live"],
        }
    )
    delta_path = Path(path).with_name(Path(path).name + ".delta")
    if delta_path.exists():
        _apply_engine_delta(
            engine, delta_path, header.get("snapshot_nonce")
        )
    engine.last_snapshot_nonce = header.get("snapshot_nonce")
    return engine


# -- delta snapshots (format v3) -------------------------------------------


def save_engine_delta(
    engine: PlacementEngine, base_path: "str | Path", compress: bool = False
) -> int:
    """Write ``<base_path>.delta``: state since the last full snapshot.

    Serialized: the per-txid arrays appended since the base cursor
    (assignment, T2S vectors/spenders/min-mass, unspent masks), the
    pre-base parents the stream touched since (final spender count and
    mask; release status is derived on load), and the O(n_shards) hot
    scalars (shard sizes, trackers, proxy, RNG, truncation
    accounting). Cost is O(activity since base) - the point of the
    format - where a full snapshot is O(n_placed).

    Cumulative: each call replaces the previous delta for this base.
    """
    base = engine._delta_base
    dirty = engine._dirty_parents
    if base is None or dirty is None:
        raise SnapshotError(
            "no delta base: write a full snapshot first (the engine "
            "journals touched parents only after one)"
        )
    placer = engine.placer
    base_n = base["n_placed"]
    if placer.n_placed < base_n:
        raise SnapshotError(
            f"engine cursor {placer.n_placed} is behind the delta "
            f"base {base_n}"
        )
    if base.get("path") != str(Path(base_path)):
        raise SnapshotError(
            f"the last full snapshot went to {base.get('path')!r}, "
            f"not {str(base_path)!r}; a delta must sit beside its base"
        )
    scorer = engine._scorer
    header: dict[str, Any] = {
        "format": DELTA_FORMAT_VERSION,
        "delta": True,
        "byteorder": sys.byteorder,
        "repro_version": __version__,
        "placer": _placer_spec(placer),
        "engine_config": engine.export_config(),
        "n_placed": placer.n_placed,
        "base": {
            "n_placed": base_n,
            "nonce": base["nonce"],
            "horizon_start": base["horizon_start"],
        },
    }
    writer = _SectionWriter()

    # Appended tail of every per-txid array.
    writer.add("assignment_tail", "i", placer._assignment[base_n:])
    header["placer_scalars"] = {
        "min_shard_size": placer._min_shard_size,
        "min_size_count": placer._min_size_count,
        "max_shard_size": placer._max_shard_size,
    }
    writer.add("shard_sizes", "q", placer._shard_sizes)
    if placer._size_argmin is not None:
        heap = placer._size_argmin._heap
        writer.add("argmin_value", "q", (value for value, _ in heap))
        writer.add("argmin_index", "i", (index for _, index in heap))

    header["has_scorer"] = scorer is not None
    if scorer is not None:
        nnz = array("i")
        shards = array("i")
        mass = array("d")
        for vector in scorer._p_prime[base_n:]:
            if vector is None:
                nnz.append(-1)
            else:
                nnz.append(len(vector))
                for shard, value in vector.items():
                    shards.append(shard)
                    mass.append(value)
        writer.add("t2s_nnz", "i", nnz)
        writer.add("t2s_shards", "i", shards)
        writer.add("t2s_mass", "d", mass)
        writer.add("t2s_spenders", "i", scorer._spender_count[base_n:])
        writer.add("t2s_min_mass", "d", scorer._min_mass[base_n:])
        writer.add("t2s_shard_sizes", "q", scorer._shard_sizes)
        header["t2s_released"] = scorer.released_count
        if not scorer._spenders_divisor:
            writer.add("t2s_outputs", "i", scorer._output_count[base_n:])
        scalars = scorer.export_hot_scalars()
        if scalars:
            header["t2s_scalars"] = scalars

    # Pre-base parents touched since the base: final spender count and
    # unspent mask (0 = fully spent or horizon-dropped).
    remaining = engine._remaining
    touched = sorted(txid for txid in dirty if txid < base_n)
    writer.add("dirty_txid", "q", touched)
    if scorer is not None:
        writer.add(
            "dirty_spenders",
            "i",
            (scorer._spender_count[txid] for txid in touched),
        )
    dirty_masks = [
        (mask := remaining.get(txid, 0)).to_bytes(
            (mask.bit_length() + 7) // 8, "big"
        )
        for txid in touched
    ]
    writer.add("dirty_nbytes", "i", (len(b) for b in dirty_masks))
    writer.add("dirty_masks", "B", b"".join(dirty_masks))

    # Unspent masks created since the base.
    tail_entries = [
        (txid, mask) for txid, mask in remaining.items() if txid >= base_n
    ]
    tail_masks = [
        mask.to_bytes((mask.bit_length() + 7) // 8, "big")
        for _, mask in tail_entries
    ]
    writer.add("remaining_txid", "q", (txid for txid, _ in tail_entries))
    writer.add("remaining_nbytes", "i", (len(b) for b in tail_masks))
    writer.add("remaining_masks", "B", b"".join(tail_masks))

    engine_state = engine.export_state()
    writer.add("pending_release", "q", engine_state["pending_release"])
    header["engine_scalars"] = {
        "horizon_start": engine_state["horizon_start"],
        "epoch": engine_state["epoch"],
        "peak_live": engine_state["peak_live"],
    }

    proxy = getattr(placer, "_proxy", None)
    header["has_proxy_state"] = proxy is not None
    if proxy is not None:
        proxy_state = proxy.export_state()
        writer.add("proxy_scaled", "d", proxy_state["scaled"])
        writer.add(
            "proxy_heap_value",
            "d",
            (value for value, _ in proxy_state["heap"]),
        )
        writer.add(
            "proxy_heap_index",
            "i",
            (index for _, index in proxy_state["heap"]),
        )
        writer.add("proxy_zero_heap", "i", proxy_state["zero_heap"])
        header["proxy_scalars"] = {
            "step": proxy_state["step"],
            "offset": proxy_state["offset"],
            "scale": proxy_state["scale"],
        }

    rng = getattr(placer, "_rng", None)
    header["has_rng"] = rng is not None
    if rng is not None:
        version, words, gauss = rng.getstate()
        writer.add("rng_words", "I", words)
        header["rng_scalars"] = {"version": version, "gauss": gauss}

    header["sections"] = writer.table
    path = Path(base_path)
    return _write_container(
        path.with_name(path.name + ".delta"),
        DELTA_FORMAT_VERSION,
        header,
        writer.blobs,
        compress,
    )


def _apply_engine_delta(
    engine: PlacementEngine,
    delta_path: "str | Path",
    base_nonce: "str | None",
) -> None:
    """Advance a freshly-loaded base engine to the delta's cursor."""
    version, header, payload = _read_container(delta_path)
    if version != DELTA_FORMAT_VERSION or not header.get("delta"):
        raise SnapshotError(f"{delta_path} is not a delta snapshot")
    base = header.get("base", {})
    if base_nonce is None or base.get("nonce") != base_nonce:
        raise SnapshotError(
            f"{delta_path} was taken against a different base "
            "snapshot (nonce mismatch); delete it or restore the "
            "matching full snapshot"
        )
    placer = engine.placer
    base_n = base["n_placed"]
    if placer.n_placed != base_n:
        raise SnapshotError(
            f"base snapshot holds {placer.n_placed} placements, delta "
            f"expects {base_n}"
        )
    reader = _SectionReader(header["sections"], payload)

    placer._assignment.extend(reader.get("assignment_tail").tolist())
    placer._shard_sizes[:] = reader.get("shard_sizes").tolist()
    placer_scalars = header["placer_scalars"]
    placer._min_shard_size = placer_scalars["min_shard_size"]
    placer._min_size_count = placer_scalars["min_size_count"]
    placer._max_shard_size = placer_scalars["max_shard_size"]
    if "argmin_value" in reader:
        placer.size_argmin()._heap[:] = list(
            zip(
                reader.get("argmin_value").tolist(),
                reader.get("argmin_index").tolist(),
            )
        )
    elif placer._size_argmin is not None:
        placer._size_argmin.rebuild()

    scorer = engine._scorer
    if header["has_scorer"] != (scorer is not None):
        raise SnapshotError(
            "delta and base disagree on whether the placer has a "
            "scorer"
        )
    if scorer is not None:
        nnz = reader.get("t2s_nnz")
        shards = reader.get("t2s_shards").tolist()
        mass = reader.get("t2s_mass").tolist()
        cursor = 0
        for count in nnz:
            if count < 0:
                scorer._p_prime.append(None)
            else:
                end = cursor + count
                scorer._p_prime.append(
                    dict(zip(shards[cursor:end], mass[cursor:end]))
                )
                cursor = end
        if cursor != len(shards):
            raise SnapshotError(
                "delta t2s_nnz does not account for every stored entry"
            )
        # A None tail slot is a vector that was already released when
        # the delta was taken (fully spent and swept, or behind the
        # horizon); count them so released/live accounting matches the
        # original engine exactly.
        scorer._released += sum(1 for count in nnz if count < 0)
        scorer._spender_count.extend(
            reader.get("t2s_spenders").tolist()
        )
        scorer._min_mass.extend(reader.get("t2s_min_mass").tolist())
        scorer._shard_sizes[:] = reader.get("t2s_shard_sizes").tolist()
        if "t2s_outputs" in reader:
            scorer._output_count.extend(
                reader.get("t2s_outputs").tolist()
            )
        scorer.import_hot_scalars(header.get("t2s_scalars", {}))

    remaining = engine._remaining

    def _masks_of(prefix: str) -> list[int]:
        blob = reader.get(f"{prefix}_masks").tobytes()
        masks = []
        cursor = 0
        for nbytes in reader.get(f"{prefix}_nbytes"):
            masks.append(
                int.from_bytes(blob[cursor : cursor + nbytes], "big")
            )
            cursor += nbytes
        if cursor != len(blob):
            raise SnapshotError(
                f"delta {prefix}_nbytes does not account for every "
                "mask byte"
            )
        return masks

    # Touched pre-base parents: final spender counts and masks.
    dirty_txids = reader.get("dirty_txid").tolist()
    if scorer is not None:
        for txid, count in zip(
            dirty_txids, reader.get("dirty_spenders")
        ):
            scorer._spender_count[txid] = count
    dirty_masks = _masks_of("dirty")
    for txid, mask in zip(dirty_txids, dirty_masks):
        if mask:
            remaining[txid] = mask
        else:
            remaining.pop(txid, None)
    for txid, mask in zip(
        reader.get("remaining_txid").tolist(), _masks_of("remaining")
    ):
        remaining[txid] = mask

    engine_scalars = header["engine_scalars"]
    pending = reader.get("pending_release").tolist()
    base_pending = list(engine._pending_release)
    engine._pending_release[:] = pending
    engine._epoch = engine_scalars["epoch"]
    engine._peak_live = engine_scalars["peak_live"]

    if scorer is not None:
        # Reconstruct the releases that happened since the base: the
        # horizon sweep over [base_horizon, horizon), every touched
        # parent that went fully spent and was already drained from
        # the pending list, and the base's own pending entries an
        # epoch sweep has drained since. The fully-spent releases only
        # happen on engines that collect them (truncate_spent); the
        # horizon sweep runs regardless, mirroring _advance_epochs.
        horizon = engine_scalars["horizon_start"]
        base_horizon = base.get("horizon_start", 0)
        if horizon > base_horizon:
            scorer.release_vectors(range(base_horizon, horizon))
            for txid in range(base_horizon, horizon):
                remaining.pop(txid, None)
        if engine._collect_spent:
            pending_set = set(pending)
            for txid, mask in zip(dirty_txids, dirty_masks):
                if mask == 0 and txid not in pending_set:
                    scorer.release_vector(txid)
            for txid in base_pending:
                if txid not in pending_set:
                    scorer.release_vector(txid)
        expected_released = header["t2s_released"]
        if scorer.released_count != expected_released:
            raise SnapshotError(
                f"delta application produced {scorer.released_count} "
                f"released vectors, expected {expected_released}"
            )
    engine._horizon_start = engine_scalars["horizon_start"]

    if header["has_proxy_state"]:
        proxy = getattr(placer, "_proxy", None)
        if proxy is None:
            raise SnapshotError(
                "delta carries load-proxy state but the base placer "
                "has no proxy"
            )
        proxy_scalars = header["proxy_scalars"]
        proxy.restore_state(
            {
                "scaled": reader.get("proxy_scaled").tolist(),
                "heap": list(
                    zip(
                        reader.get("proxy_heap_value").tolist(),
                        reader.get("proxy_heap_index").tolist(),
                    )
                ),
                "zero_heap": reader.get("proxy_zero_heap").tolist(),
                "step": proxy_scalars["step"],
                "offset": proxy_scalars["offset"],
                "scale": proxy_scalars["scale"],
            }
        )
    if header["has_rng"]:
        rng = getattr(placer, "_rng", None)
        if rng is None:
            raise SnapshotError(
                "delta carries RNG state but the base placer has none"
            )
        rng_scalars = header["rng_scalars"]
        rng.setstate(
            (
                rng_scalars["version"],
                tuple(reader.get("rng_words").tolist()),
                rng_scalars["gauss"],
            )
        )
    rebuild = getattr(placer, "_rebuild_allowed", None)
    if rebuild is not None:
        rebuild()
    if placer.n_placed != header["n_placed"]:
        raise SnapshotError(
            f"delta application reached cursor {placer.n_placed}, "
            f"header claims {header['n_placed']}"
        )
