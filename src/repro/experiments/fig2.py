"""Figure 2 - TaN network statistics.

(2a) in-/out-degree distributions (log-log in the paper), (2b) their
cumulative versions, (2c) average degree as the network grows, including
the flooding-attack spike the paper attributes to the July 2015 spam
incident. Paper headline numbers for the full Bitcoin TaN: average degree
about 2.3; 93.1% of nodes with in-degree < 3; 97.6% with out-degree
< 10, 86.3% < 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.datasets.synthetic import BitcoinLikeGenerator
from repro.experiments.configs import ExperimentScale
from repro.txgraph.stats import (
    GraphSummary,
    average_degree_timeline,
    cumulative_degree_distribution,
    degree_distribution,
    graph_summary,
    windowed_average_degree,
)
from repro.txgraph.tan import TaNGraph


@dataclass(frozen=True, slots=True)
class Fig2Result:
    """All three panels plus the headline summary."""

    in_degree_histogram: dict[int, int]
    out_degree_histogram: dict[int, int]
    in_cumulative: list[tuple[int, float]]
    out_cumulative: list[tuple[int, float]]
    degree_timeline: list[tuple[int, float]]
    windowed_degree: list[tuple[int, float]]
    summary: GraphSummary


def run(scale: ExperimentScale, seed: int = 1) -> Fig2Result:
    """Build a TaN with a flood window and compute the Fig. 2 series.

    A dedicated stream (rather than the shared sweep workload) is used so
    the flooding-attack window is present, reproducing the Fig. 2c spike
    without polluting the placement experiments.
    """
    import dataclasses

    config = dataclasses.replace(
        scale.generator,
        flood_start=scale.n_transactions // 2,
        flood_length=max(200, scale.n_transactions // 50),
        flood_inputs=25,
    )
    stream = BitcoinLikeGenerator(config=config, seed=seed).generate(
        scale.n_transactions
    )
    graph = TaNGraph.from_transactions(stream)
    return Fig2Result(
        in_degree_histogram=degree_distribution(graph, "in"),
        out_degree_histogram=degree_distribution(graph, "out"),
        in_cumulative=cumulative_degree_distribution(graph, "in"),
        out_cumulative=cumulative_degree_distribution(graph, "out"),
        degree_timeline=average_degree_timeline(graph, n_points=60),
        windowed_degree=windowed_average_degree(
            graph, window=max(100, scale.n_transactions // 40)
        ),
        summary=graph_summary(graph),
    )


def as_table(result: Fig2Result) -> str:
    """Headline summary plus a compact degree table."""
    summary = result.summary
    lines = [
        "Fig. 2: TaN network statistics (paper: Bitcoin, 298M nodes)",
        f"  nodes={summary.n_nodes}  edges={summary.n_edges}  "
        f"avg_degree={summary.average_degree:.2f} (paper ~2.3)",
        f"  coinbase={summary.n_coinbase}  "
        f"unspent_frontier={summary.n_unspent_frontier}  "
        f"isolated={summary.n_isolated}",
        f"  in-degree<3: {summary.fraction_in_degree_below_3:.1%} "
        f"(paper 93.1%)",
        f"  out-degree<10: {summary.fraction_out_degree_below_10:.1%} "
        f"(paper 97.6%)  out-degree<3: "
        f"{summary.fraction_out_degree_below_3:.1%} (paper 86.3%)",
    ]
    head = [
        [degree, result.in_degree_histogram.get(degree, 0),
         result.out_degree_histogram.get(degree, 0)]
        for degree in range(0, 8)
    ]
    lines.append(
        format_table(
            ["degree", "#nodes (in)", "#nodes (out)"],
            head,
            title="Fig. 2a: degree histogram (head)",
        )
    )
    timeline = result.degree_timeline
    step = max(1, len(timeline) // 10)
    lines.append(
        format_table(
            ["n_txs", "avg degree"],
            [[n, f"{avg:.2f}"] for n, avg in timeline[::step]],
            title="Fig. 2c: average degree over time (cumulative)",
        )
    )
    windowed = result.windowed_degree
    wstep = max(1, len(windowed) // 12)
    lines.append(
        format_table(
            ["n_txs", "window avg in-degree"],
            [[n, f"{avg:.2f}"] for n, avg in windowed[::wstep]],
            title="Fig. 2c (windowed view): flood spike mid-run",
        )
    )
    return "\n".join(lines)


def main(scale_name: str | None = None) -> str:
    from repro.experiments.runner import scale_by_name

    output = as_table(run(scale_by_name(scale_name)))
    print(output)
    return output


if __name__ == "__main__":
    main()
