"""Reading and writing transaction streams.

Two formats:

- **JSONL** - one transaction per line with full structure (inputs with
  output indices, outputs with values/addresses, timestamps). Lossless;
  used to cache generated workloads between experiment runs.
- **Edge list** - the layout of the MIT Bitcoin dump the paper uses
  (`senseable2015-6.mit.edu/bitcoin`): whitespace-separated
  ``spender_txid input_txid`` pairs, one TaN edge per line. Lossy (no
  values/addresses), but exactly what the placement algorithms and the
  simulator need, so a real Bitcoin dump can replace the synthetic
  workload without touching any other code.

Both loaders validate the topological-stream invariant and fail with
:class:`DatasetError` rather than producing a silently broken graph.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import DatasetError
from repro.utxo.transaction import OutPoint, Transaction, TxOutput


def save_stream_jsonl(txs: Iterable[Transaction], path: str | Path) -> int:
    """Write a stream to a JSONL file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for tx in txs:
            record = {
                "txid": tx.txid,
                "inputs": [[o.txid, o.index] for o in tx.inputs],
                "outputs": [[o.value, o.address] for o in tx.outputs],
                "timestamp": tx.timestamp,
                "size": tx.size_bytes,
                "fee": tx.fee,
            }
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def load_stream_jsonl(path: str | Path) -> Iterator[Transaction]:
    """Stream transactions back from a JSONL file.

    Raises :class:`DatasetError` on malformed lines or out-of-order ids,
    identifying the offending line number.
    """
    next_expected = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                tx = Transaction(
                    txid=record["txid"],
                    inputs=tuple(
                        OutPoint(txid, index)
                        for txid, index in record["inputs"]
                    ),
                    outputs=tuple(
                        TxOutput(value, address)
                        for value, address in record["outputs"]
                    ),
                    timestamp=record.get("timestamp", 0.0),
                    size_bytes=record.get("size", 500),
                    fee=record.get("fee", 0),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise DatasetError(f"{path}:{lineno}: malformed record: {exc}")
            if tx.txid != next_expected:
                raise DatasetError(
                    f"{path}:{lineno}: txid {tx.txid} out of order "
                    f"(expected {next_expected})"
                )
            for outpoint in tx.inputs:
                if outpoint.txid >= tx.txid:
                    raise DatasetError(
                        f"{path}:{lineno}: transaction {tx.txid} spends "
                        f"from non-earlier transaction {outpoint.txid}"
                    )
            next_expected += 1
            yield tx


def save_edge_list(txs: Iterable[Transaction], path: str | Path) -> int:
    """Write TaN edges as ``spender input`` lines; returns edge count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for tx in txs:
            for parent in tx.input_txids:
                handle.write(f"{tx.txid} {parent}\n")
                count += 1
    return count


def load_edge_list(
    path: str | Path, tx_rate: float = 1_000.0
) -> list[Transaction]:
    """Rebuild a transaction stream from a TaN edge list.

    This is the adapter for the MIT-format Bitcoin dump. Edge lists carry
    no amounts, so each reconstructed transaction gets synthetic outputs:
    one output per observed future spender plus one (so every edge has an
    output to consume), unit values, address 0. Those fields do not
    affect placement (which reads only the graph) or the simulator
    (which reads only sizes and the graph).

    Transactions with no edges at all (isolated nodes) are recovered from
    id gaps: every id in ``[0, max_id]`` becomes a transaction.
    """
    edges_by_spender: dict[int, list[int]] = {}
    spender_counts: dict[int, int] = {}
    max_id = -1
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            parts = line.split()
            if not parts or parts[0].startswith("#"):
                continue
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{lineno}: expected 'spender input', got {line!r}"
                )
            try:
                spender, parent = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise DatasetError(f"{path}:{lineno}: non-integer id: {exc}")
            if spender <= parent:
                raise DatasetError(
                    f"{path}:{lineno}: edge ({spender}, {parent}) does not "
                    f"point backwards; stream is not topological"
                )
            if parent < 0:
                raise DatasetError(f"{path}:{lineno}: negative id {parent}")
            edges_by_spender.setdefault(spender, []).append(parent)
            spender_counts[parent] = spender_counts.get(parent, 0) + 1
            max_id = max(max_id, spender)

    txs: list[Transaction] = []
    # Global cursor per parent so two different spenders of the same
    # parent consume different synthetic outputs (no double spends).
    next_output_index: dict[int, int] = {}
    for txid in range(max_id + 1):
        parents = edges_by_spender.get(txid, [])
        # One output per future spender (so spends are satisfiable), and
        # at least one output so the transaction is structurally valid.
        n_outputs = max(1, spender_counts.get(txid, 0))
        inputs = []
        for parent in parents:
            index = next_output_index.get(parent, 0)
            next_output_index[parent] = index + 1
            inputs.append(OutPoint(parent, index))
        txs.append(
            Transaction(
                txid=txid,
                inputs=tuple(inputs),
                outputs=tuple(TxOutput(1, 0) for _ in range(n_outputs)),
                timestamp=txid / tx_rate,
            )
        )
    return txs
