"""Structural and stateful transaction validation rules.

Shard committees run these checks before voting a transaction into a
block. Structural rules need only the transaction; stateful rules need a
:class:`~repro.utxo.utxoset.UTXOSet`. The split matches what a real
sharded validator can check locally versus what requires ledger state.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.utxo.transaction import Transaction
from repro.utxo.utxoset import UTXOSet

# Bitcoin consensus caps a transaction at 100 kB standardness / 1 MB
# consensus; we use the 100 kB standardness limit because the simulator
# models relay behaviour, not miner-assembled edge cases.
MAX_TX_SIZE_BYTES = 100_000
MAX_OUTPUTS = 10_000
# 21e6 BTC in satoshi: total money supply; no single output may exceed it.
MAX_VALUE = 21_000_000 * 100_000_000


def validate_structure(tx: Transaction) -> None:
    """Raise :class:`ValidationError` on context-free rule violations."""
    if tx.size_bytes > MAX_TX_SIZE_BYTES:
        raise ValidationError(
            f"transaction {tx.txid} size {tx.size_bytes} exceeds "
            f"{MAX_TX_SIZE_BYTES} bytes"
        )
    if not tx.outputs and not tx.inputs:
        raise ValidationError(
            f"transaction {tx.txid} has neither inputs nor outputs"
        )
    if len(tx.outputs) > MAX_OUTPUTS:
        raise ValidationError(
            f"transaction {tx.txid} creates {len(tx.outputs)} outputs, "
            f"limit is {MAX_OUTPUTS}"
        )
    total = 0
    for output in tx.outputs:
        if output.value > MAX_VALUE:
            raise ValidationError(
                f"transaction {tx.txid} output value {output.value} exceeds "
                f"money supply"
            )
        total += output.value
    if total > MAX_VALUE:
        raise ValidationError(
            f"transaction {tx.txid} total output {total} exceeds money supply"
        )
    for outpoint in tx.inputs:
        if outpoint.txid >= tx.txid:
            raise ValidationError(
                f"transaction {tx.txid} spends output of non-earlier "
                f"transaction {outpoint.txid}; arrival order must be "
                f"topological"
            )


def validate_balance(tx: Transaction, utxos: UTXOSet) -> None:
    """Raise unless inputs cover outputs plus fee (coinbase is exempt)."""
    if tx.is_coinbase:
        return
    available = sum(utxos.value_of(outpoint) for outpoint in tx.inputs)
    needed = tx.total_output_value + tx.fee
    if available < needed:
        raise ValidationError(
            f"transaction {tx.txid} spends {needed} but inputs only "
            f"carry {available}"
        )


def validate_transaction(tx: Transaction, utxos: UTXOSet) -> None:
    """Full validation: structure, spendability, and value balance.

    Mirrors the order a real validator uses - cheap context-free checks
    first, then UTXO lookups.
    """
    validate_structure(tx)
    utxos.check(tx)
    validate_balance(tx, utxos)
