"""Run every experiment at a chosen scale and save the printed tables.

Usage::

    python scripts/run_all_experiments.py [scale] [output-path]

This is the script that produced the measured numbers recorded in
EXPERIMENTS.md (scale ``default``).
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
    table3,
)

EXPERIMENTS = [
    ("Table I", table1),
    ("Table II", table2),
    ("Table III", table3),
    ("Fig 2", fig2),
    ("Fig 3", fig3),
    ("Fig 4", fig4),
    ("Fig 5", fig5),
    ("Fig 6", fig6),
    ("Fig 7", fig7),
    ("Fig 8", fig8),
    ("Fig 9", fig9),
    ("Fig 10", fig10),
    ("Fig 11", fig11),
]


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "default"
    out_path = (
        sys.argv[2] if len(sys.argv) > 2 else f"experiments_{scale}.txt"
    )
    sections = []
    for name, module in EXPERIMENTS:
        start = time.time()
        print(f"=== {name} (scale={scale}) ===", flush=True)
        output = module.main(scale)
        elapsed = time.time() - start
        print(f"--- {name} done in {elapsed:.1f}s ---", flush=True)
        sections.append(f"=== {name} ({elapsed:.1f}s) ===\n{output}\n")
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
