"""Time-series helpers for the queue and commit-timeline figures."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def bin_counts(
    times: Sequence[float], bin_width: float, end: float | None = None
) -> list[tuple[float, int]]:
    """Count events per time bin (Fig. 5: commits per 50 s window).

    Returns ``(bin_start, count)`` for every bin from 0 to ``end`` (or
    the last event). ``times`` need not be sorted. Empty bins are
    included so gaps - the Metis congestion signature - stay visible.
    """
    if bin_width <= 0:
        raise ConfigurationError(f"bin_width must be > 0, got {bin_width}")
    if not times:
        return []
    horizon = end if end is not None else max(times)
    n_bins = int(horizon / bin_width) + 1
    counts = [0] * n_bins
    for time in times:
        index = int(time / bin_width)
        if 0 <= index < n_bins:
            counts[index] += 1
    return [(i * bin_width, counts[i]) for i in range(n_bins)]


def queue_extrema_series(
    sample_times: Sequence[float],
    samples: Sequence[Sequence[int]],
) -> list[tuple[float, int, int]]:
    """Per-sample max and min shard queue size (Fig. 6).

    Returns ``(time, max_queue, min_queue)`` per sample.
    """
    if len(sample_times) != len(samples):
        raise ConfigurationError(
            f"{len(sample_times)} times for {len(samples)} samples"
        )
    series = []
    for time, sizes in zip(sample_times, samples):
        if not sizes:
            raise ConfigurationError("empty queue sample")
        series.append((time, max(sizes), min(sizes)))
    return series


def queue_ratio_series(
    sample_times: Sequence[float],
    samples: Sequence[Sequence[int]],
) -> list[tuple[float, float]]:
    """Max/min queue-size ratio over time (Fig. 7).

    The paper plots ``max_queue / min_queue``; an idle shard makes the
    ratio infinite, which is precisely the signal (Metis/Greedy leave
    shards empty while others drown), so zeros map to ``inf`` when any
    queue is non-empty and to 1.0 when all are empty.
    """
    series = []
    for time, biggest, smallest in queue_extrema_series(
        sample_times, samples
    ):
        if biggest == 0:
            series.append((time, 1.0))
        elif smallest == 0:
            series.append((time, float("inf")))
        else:
            series.append((time, biggest / smallest))
    return series
