"""The observability plane, end to end: scrape a live service.

Walks the PR-8 observability story in one script:

1. a **sharded service with the metrics endpoint on**: the coordinator
   serves Prometheus text on ``GET /metrics`` from the same event loop
   that routes placements, aggregating per-worker stats on demand;
2. **server-side latency histograms**: each worker records every
   placed micro-batch into a log-bucketed histogram; the scrape exports
   per-partition ``_bucket`` ladders plus a merged ``partition="all"``
   series whose percentiles are exactly the union's;
3. **quantiles derived from the scrape alone** (what a dashboard or
   alert rule would do) versus the precomputed quantile gauges;
4. the **drift monitor**: a sampled exact-python shadow scoring the
   production placements, exported as windowed rate gauges.

Run::

    python examples/metrics_scrape.py
"""

from __future__ import annotations

import asyncio

from repro.api import synthetic_stream
from repro.obs.prom import (
    quantile_from_scrape,
    sample_value,
    scrape_metrics,
)
from repro.service.client import AsyncBinaryPlacementClient
from repro.service.coordinator import ShardedPlacementServer

N_TRANSACTIONS = 12_000
N_SHARDS = 16
N_WORKERS = 2
CHUNK = 400
SPEC = {
    "method": "optchain-topk",
    "support_cap": 8,
    "n_shards": N_SHARDS,
    "epoch_length": 2_000,
    # Drift monitoring: replay every 4th batch through the exact
    # python policy and compare cross-shard outcomes.
    "drift_sample_every": 4,
    "drift_window": 20_000,
    "drift_threshold": 0.05,
    "drift_min_samples": 200,
}


async def demo() -> None:
    print(f"generating {N_TRANSACTIONS} Bitcoin-like transactions...")
    stream = synthetic_stream(N_TRANSACTIONS, seed=11)

    server = ShardedPlacementServer(
        dict(SPEC),
        N_WORKERS,
        port=0,
        lease_length=2_000,
        metrics_port=0,  # 0 = ephemeral; `repro serve --metrics-port N`
    )
    await server.start()
    try:
        print(
            f"sharded service up: {N_WORKERS} workers, placement port "
            f"{server.port}, metrics port {server.metrics_port}"
        )
        client = await AsyncBinaryPlacementClient.connect(port=server.port)
        for offset in range(0, len(stream), CHUNK):
            await client.place(stream[offset : offset + CHUNK])
        await client.close()

        # What any Prometheus scraper sees: plain text over HTTP.
        families = await scrape_metrics("127.0.0.1", server.metrics_port)
        print(f"\nscraped {len(families)} metric families")

        print("\nper-partition batch latency (from the _bucket ladder):")
        labels = [str(p) for p in range(N_WORKERS)] + ["all"]
        for label in labels:
            count = sample_value(
                families,
                "repro_batch_latency_seconds",
                "repro_batch_latency_seconds_count",
                partition=label,
            )
            if not count:
                continue
            p50, p99, p999 = (
                quantile_from_scrape(
                    families,
                    "repro_batch_latency_seconds",
                    q,
                    partition=label,
                )
                for q in (0.5, 0.99, 0.999)
            )
            print(
                f"  partition {label:>3}: {int(count):5d} batches   "
                f"p50 {p50 * 1e3:.3f}ms   p99 {p99 * 1e3:.3f}ms   "
                f"p999 {p999 * 1e3:.3f}ms"
            )

        print("\nscrape-derived vs precomputed quantile gauges (p99):")
        derived = quantile_from_scrape(
            families, "repro_batch_latency_seconds", 0.99, partition="all"
        )
        precomputed = sample_value(
            families,
            "repro_batch_latency_quantile_seconds",
            partition="all",
            quantile=0.99,
        )
        print(
            f"  ladder walk {derived * 1e3:.3f}ms   "
            f"gauge {precomputed * 1e3:.3f}ms   "
            f"(ladder is quarter-octave quantized, <= 2**0.25 high)"
        )

        print("\nservice counters (coordinator + workers):")
        placed = sum(
            sample_value(
                families, "repro_placed_total", partition=str(p)
            )
            or 0
            for p in range(N_WORKERS)
        )
        print(f"  transactions placed     {int(placed)}")
        print(
            "  lease cursor            "
            f"{int(sample_value(families, 'repro_lease_cursor'))}"
        )
        print(
            "  respawns                "
            f"{int(sample_value(families, 'repro_worker_respawns_total', partition='coordinator'))}"
        )

        print("\ndrift monitor (capped production vs exact shadow):")
        for name in (
            "repro_drift_production_cross_rate",
            "repro_drift_shadow_cross_rate",
            "repro_drift_delta",
            "repro_drift_disagreement_rate",
        ):
            value = sample_value(families, name, partition="all")
            if value is None:  # single active partition: no "all" row
                value = sample_value(families, name, partition="0")
            print(f"  {name.removeprefix('repro_drift_'):25s} {value:+.4f}")
        assert placed == N_TRANSACTIONS
    finally:
        await server.stop()
    print("\ndone.")


if __name__ == "__main__":
    asyncio.run(demo())
