"""Integration tests for the simulation engine and protocols."""

from __future__ import annotations

import pytest

from repro.core.baselines import OmniLedgerRandomPlacer
from repro.core.optchain import OptChainPlacer
from repro.datasets.synthetic import GeneratorConfig, synthetic_stream
from repro.errors import SimulationError
from repro.simulator import SimulationConfig, run_simulation


GEN = GeneratorConfig(
    n_wallets=300, coinbase_interval=100, bootstrap_coinbase=30
)


def small_sim(**kwargs) -> SimulationConfig:
    defaults = dict(
        n_shards=4,
        tx_rate=200.0,
        block_capacity=50,
        block_size_bytes=25_000,
        consensus_base_s=0.5,
        consensus_per_tx_s=0.002,
        queue_sample_interval_s=1.0,
        max_sim_time_s=2_000.0,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def tiny_stream():
    return synthetic_stream(1_500, seed=5, config=GEN)


class TestConservation:
    def test_all_transactions_commit(self, tiny_stream):
        result = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim()
        )
        assert result.drained
        assert result.n_issued == len(tiny_stream)
        assert result.n_committed == len(tiny_stream)
        assert result.n_aborted == 0
        assert result.n_cross + result.n_same_shard == len(tiny_stream)

    def test_latencies_positive_and_counted(self, tiny_stream):
        result = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim()
        )
        assert len(result.latencies) == len(tiny_stream)
        assert all(lat > 0 for lat in result.latencies)

    def test_entries_accounting(self, tiny_stream):
        """Every same-shard tx is 1 entry; every cross tx is one lock per
        input shard plus one commit."""
        result = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim()
        )
        total_entries = sum(result.entries_per_shard)
        assert total_entries >= result.n_same_shard + 2 * result.n_cross
        assert result.n_committed == len(tiny_stream)


class TestBandwidth:
    def test_cross_costs_about_triple(self, tiny_stream):
        """§III-B: a typical 2-input cross-TX costs about 3x the
        communication of a same-shard transaction (lock copies to each
        input shard + proofs + unlock-to-commit)."""
        result = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim()
        )
        assert result.bytes_same_shard > 0
        assert result.bytes_cross > 0
        assert 1.5 <= result.bandwidth_ratio <= 4.5

    def test_bandwidth_counted_for_all_txs(self, tiny_stream):
        result = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim()
        )
        # Every tx contributes at least its own size once.
        total_tx_bytes = sum(tx.size_bytes for tx in tiny_stream)
        assert (
            result.bytes_same_shard + result.bytes_cross >= total_tx_bytes
        )


class TestDeterminism:
    def test_same_seed_same_result(self, tiny_stream):
        a = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim(seed=3)
        )
        b = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim(seed=3)
        )
        assert a.latencies == b.latencies
        assert a.queue_samples == b.queue_samples
        assert a.duration == b.duration

    def test_different_seed_different_jitter(self, tiny_stream):
        a = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim(seed=1)
        )
        b = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim(seed=2)
        )
        assert a.latencies != b.latencies


class TestProtocols:
    def test_cross_shard_slower_than_same_shard(self, tiny_stream):
        """Cross-TXs need two sequential block commits (§III-B)."""
        result = run_simulation(
            tiny_stream,
            OmniLedgerRandomPlacer(4),
            small_sim(tx_rate=50.0),  # light load: pure protocol latency
        )
        # Partition latencies by whether the tx was cross-shard: rerun
        # placement to classify.
        placer = OmniLedgerRandomPlacer(4)
        cross_flags = []
        for tx in tiny_stream:
            placer.place(tx)
            shards = placer.input_shards(tx)
            cross_flags.append(
                bool(shards) and shards != {placer.shard_of(tx.txid)}
            )
        cross = [
            lat for lat, flag in zip(result.latencies, cross_flags) if flag
        ]
        same = [
            lat
            for lat, flag in zip(result.latencies, cross_flags)
            if not flag
        ]
        assert sum(cross) / len(cross) > 1.5 * (sum(same) / len(same))

    def test_rapidchain_faster_than_omniledger(self, tiny_stream):
        """Yanking skips the client round trip, so cross-TXs confirm
        faster under RapidChain at identical load."""
        omni = run_simulation(
            tiny_stream,
            OmniLedgerRandomPlacer(4),
            small_sim(tx_rate=50.0, protocol="omniledger"),
        )
        rapid = run_simulation(
            tiny_stream,
            OmniLedgerRandomPlacer(4),
            small_sim(tx_rate=50.0, protocol="rapidchain"),
        )
        assert rapid.average_latency < omni.average_latency

    def test_abort_injection(self, tiny_stream):
        # Pick ids that are cross-shard under this placer with high
        # probability: any non-coinbase tx.
        victims = {
            tx.txid for tx in tiny_stream if not tx.is_coinbase
        }
        victims = set(list(victims)[:20])
        result = run_simulation(
            tiny_stream,
            OmniLedgerRandomPlacer(4),
            small_sim(),
            abort_txids=victims,
        )
        assert result.drained
        # Only cross-shard victims can abort (same-shard txs commit
        # directly in this failure model).
        assert 0 < result.n_aborted <= len(victims)
        assert result.n_committed == len(tiny_stream) - result.n_aborted


class TestFailureInjection:
    def test_outage_delays_but_preserves_conservation(self, tiny_stream):
        healthy = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim()
        )
        degraded = run_simulation(
            tiny_stream,
            OmniLedgerRandomPlacer(4),
            small_sim(),
            outages=[(0, 1.0, 10.0)],
        )
        assert degraded.drained
        assert degraded.n_committed == len(tiny_stream)
        assert degraded.average_latency > healthy.average_latency

    def test_bad_outage_rejected(self, tiny_stream):
        with pytest.raises(SimulationError):
            run_simulation(
                tiny_stream,
                OmniLedgerRandomPlacer(4),
                small_sim(),
                outages=[(9, 1.0, 2.0)],
            )
        with pytest.raises(SimulationError):
            run_simulation(
                tiny_stream,
                OmniLedgerRandomPlacer(4),
                small_sim(),
                outages=[(0, 5.0, 2.0)],
            )


class TestOptChainIntegration:
    def test_optchain_wired_to_live_observer(self, tiny_stream):
        placer = OptChainPlacer(4)
        result = run_simulation(placer=placer, stream=tiny_stream,
                                config=small_sim())
        assert result.drained
        # The engine must replace the offline proxy with the live
        # observer.
        from repro.simulator.metrics import LatencyObserver

        assert isinstance(placer.latency_provider, LatencyObserver)

    def test_optchain_less_cross_than_random(self, tiny_stream):
        opt = run_simulation(
            tiny_stream, OptChainPlacer(4), small_sim()
        )
        rand = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim()
        )
        assert opt.cross_fraction < 0.6 * rand.cross_fraction

    def test_reused_placer_rejected(self, tiny_stream):
        placer = OmniLedgerRandomPlacer(4)
        run_simulation(tiny_stream[:100], placer, small_sim())
        with pytest.raises(SimulationError):
            run_simulation(tiny_stream, placer, small_sim())

    def test_max_sim_time_stops_early(self, tiny_stream):
        result = run_simulation(
            tiny_stream,
            OmniLedgerRandomPlacer(4),
            small_sim(max_sim_time_s=2.0),
        )
        assert not result.drained
        assert result.duration == pytest.approx(2.0)


class TestByzantineGate:
    def test_safe_configuration_runs(self, tiny_stream):
        result = run_simulation(
            tiny_stream[:200],
            OmniLedgerRandomPlacer(4),
            small_sim(byzantine_fraction=0.2, validators_per_shard=400),
        )
        assert result.drained

    def test_unsafe_committee_refused(self, tiny_stream):
        # Tiny committees at near-threshold global fraction: some seed
        # produces an unsafe committee and the engine must refuse it.
        refused = False
        for seed in range(40):
            try:
                run_simulation(
                    tiny_stream[:10],
                    OmniLedgerRandomPlacer(4),
                    small_sim(
                        byzantine_fraction=0.3,
                        validators_per_shard=6,
                        seed=seed,
                    ),
                )
            except SimulationError:
                refused = True
                break
        assert refused


class TestQueueSampling:
    def test_samples_cover_run(self, tiny_stream):
        result = run_simulation(
            tiny_stream, OmniLedgerRandomPlacer(4), small_sim()
        )
        assert result.queue_sample_times
        assert all(
            len(sizes) == 4 for sizes in result.queue_samples
        )
        times = result.queue_sample_times
        assert times == sorted(times)
