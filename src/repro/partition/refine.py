"""Boundary refinement for k-way partitions.

Greedy Fiduccia-Mattheyses-style passes: every boundary vertex considers
moving to the adjacent part it is most connected to; the move is applied
when it reduces the cut (or keeps it equal while improving balance) and
the target part stays under the weight cap. Passes repeat until a pass
makes no move.

This is the refinement used inside the multilevel partitioner at every
uncoarsening level and once more on the final partition.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PartitionError
from repro.partition.graph import StaticGraph


def part_weights(
    graph: StaticGraph, assignment: Sequence[int], n_parts: int
) -> list[int]:
    """Total node weight per part."""
    weights = [0] * n_parts
    for u in range(graph.n_nodes):
        weights[assignment[u]] += graph.node_weight(u)
    return weights


def refine_kway(
    graph: StaticGraph,
    assignment: list[int],
    n_parts: int,
    max_part_weight: int,
    max_passes: int = 8,
) -> int:
    """Refine ``assignment`` in place; returns the number of moves made.

    ``max_part_weight`` is the hard balance cap; moves never push a part
    above it. A vertex moves to the adjacent part with the highest
    connectivity when the cut strictly improves, or when the cut is equal
    and the move strictly improves the weight difference between source
    and target (drains overweight parts through zero-gain moves).
    """
    if max_part_weight <= 0:
        raise PartitionError(
            f"max_part_weight must be > 0, got {max_part_weight}"
        )
    weights = part_weights(graph, assignment, n_parts)
    total_moves = 0
    for _ in range(max_passes):
        moves = 0
        for u in range(graph.n_nodes):
            own = assignment[u]
            neighbors = graph.neighbors(u)
            if not neighbors:
                continue
            # Connectivity of u to each adjacent part.
            connectivity: dict[int, int] = {}
            for v, weight in neighbors:
                part = assignment[v]
                connectivity[part] = connectivity.get(part, 0) + weight
            internal = connectivity.get(own, 0)
            best_part = -1
            best_gain = 0
            best_connectivity = -1
            for part, external in connectivity.items():
                if part == own:
                    continue
                gain = external - internal
                if gain > best_gain or (
                    gain == best_gain and external > best_connectivity
                ):
                    node_weight = graph.node_weight(u)
                    if weights[part] + node_weight > max_part_weight:
                        continue
                    balance_improves = (
                        weights[part] + node_weight
                        < weights[own]
                    )
                    if gain > 0 or (gain == 0 and balance_improves):
                        best_part = part
                        best_gain = gain
                        best_connectivity = external
            if best_part >= 0:
                node_weight = graph.node_weight(u)
                weights[own] -= node_weight
                weights[best_part] += node_weight
                assignment[u] = best_part
                moves += 1
        total_moves += moves
        if moves == 0:
            break
    return total_moves


def rebalance(
    graph: StaticGraph,
    assignment: list[int],
    n_parts: int,
    max_part_weight: int,
    strict: bool = True,
) -> int:
    """Force every part under the cap, moving cheapest boundary nodes.

    Used after projecting a partition to a finer level, where weights are
    unchanged but the cap may have been violated by the initial partition
    on the coarsest graph. Returns moves made. With ``strict`` it raises
    when rebalancing is impossible (a cap tighter than a single node's
    weight); non-strict callers accept a best effort - coarse levels can
    carry merged nodes heavier than the cap, which only finer levels can
    split.
    """
    weights = part_weights(graph, assignment, n_parts)
    moves = 0
    for _ in range(graph.n_nodes):
        over = [p for p in range(n_parts) if weights[p] > max_part_weight]
        if not over:
            return moves
        source = max(over, key=lambda p: weights[p])
        # Cheapest move: the node in `source` losing the least connectivity,
        # to the lightest part that can take it.
        target = min(range(n_parts), key=lambda p: weights[p])
        if target == source:
            break
        best_u = -1
        best_loss = None
        for u in range(graph.n_nodes):
            if assignment[u] != source:
                continue
            if weights[target] + graph.node_weight(u) > max_part_weight:
                continue
            loss = 0
            for v, weight in graph.neighbors(u):
                if assignment[v] == source:
                    loss += weight
                elif assignment[v] == target:
                    loss -= weight
            if best_loss is None or loss < best_loss:
                best_loss = loss
                best_u = u
        if best_u < 0:
            break
        node_weight = graph.node_weight(best_u)
        weights[source] -= node_weight
        weights[target] += node_weight
        assignment[best_u] = target
        moves += 1
    still_over = [p for p in range(n_parts) if weights[p] > max_part_weight]
    if still_over and strict:
        raise PartitionError(
            f"cannot rebalance under cap {max_part_weight}: parts "
            f"{still_over} remain overweight (weights {weights})"
        )
    return moves
