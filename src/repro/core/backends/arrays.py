"""List-like adapters over growable numpy buffers.

The pure-python scorer and placer keep their per-transaction state in
plain lists (``_assignment``, ``_min_mass``, ``_spender_count``) and a
list of sparse dicts (``_p_prime``). The numpy backend keeps the same
state in C-contiguous typed arrays the compiled kernel can address
directly, and these adapters give those arrays just enough of the list
protocol that every *python* code path that touches the state -
snapshots, deltas, partition handoff, the generic per-transaction
placement loop, release/epoch sweeps - keeps working unchanged.

Every scalar read converts to a native python object (``.item()``), so
values that flow onward (into dict keys, JSON headers, ``array``
modules, comparisons against python ints/floats) behave exactly like
the plain-list originals.
"""

from __future__ import annotations

from collections.abc import Mapping, MutableMapping
from typing import Any, Iterator

import numpy as np

_GROW = 2  # geometric growth factor


class _TypedVector:
    """Growable 1-D numpy array behind a minimal ``list`` protocol."""

    __slots__ = ("arr", "_n")

    dtype: Any = None
    _fill: Any = 0

    def __init__(self, values=(), capacity: int = 1024) -> None:
        values = list(values)
        capacity = max(capacity, len(values), 1)
        self.arr = np.full(capacity, self._fill, dtype=self.dtype)
        self._n = len(values)
        if values:
            self.arr[: self._n] = values

    def _grow_to(self, needed: int) -> None:
        cap = len(self.arr)
        if needed <= cap:
            return
        while cap < needed:
            cap *= _GROW
        fresh = np.full(cap, self._fill, dtype=self.dtype)
        fresh[: self._n] = self.arr[: self._n]
        self.arr = fresh

    def append(self, value) -> None:
        self._grow_to(self._n + 1)
        self.arr[self._n] = value
        self._n += 1

    def extend(self, values) -> None:
        values = list(values)
        self._grow_to(self._n + len(values))
        if values:
            self.arr[self._n : self._n + len(values)] = values
        self._n += len(values)

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.arr[: self._n][index].tolist()
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(index)
        return self.arr[index].item()

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice):
            if index != slice(None, None, None):
                raise TypeError(
                    "typed vectors only support full-slice assignment"
                )
            values = list(value)
            self._grow_to(len(values))
            self.arr[: len(values)] = values
            if len(values) < self._n:
                self.arr[len(values) : self._n] = self._fill
            self._n = len(values)
            return
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(index)
        self.arr[index] = value

    def __iter__(self) -> Iterator:
        return iter(self.arr[: self._n].tolist())

    def __eq__(self, other) -> bool:
        if isinstance(other, _TypedVector):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def count(self, value) -> int:
        return int(np.count_nonzero(self.arr[: self._n] == value))

    def index(self, value) -> int:
        hits = np.nonzero(self.arr[: self._n] == value)[0]
        if not len(hits):
            raise ValueError(f"{value!r} is not in vector")
        return int(hits[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({list(self)!r})"


class IntVector(_TypedVector):
    """Growable ``int64`` vector (assignments, spender counts)."""

    dtype = np.int64
    _fill = 0


class FloatVector(_TypedVector):
    """Growable ``float64`` vector (per-vector mass lower bounds)."""

    dtype = np.float64
    _fill = 0.0


class RowMatrix:
    """Growable ``(rows, n_shards)`` float64 matrix exposed as a list of
    sparse dicts.

    Row ``i`` materializes as ``{shard: mass}`` over the nonzero entries
    (ascending shard id) when read, ``None`` when the row is dead.
    Stored masses are always positive (the scorer prunes at
    ``epsilon > 0``), so zero means absent. Dict *insertion order*
    differs from the python backend's (which keeps first-touch order),
    but no observable quantity depends on it: per-shard accumulation
    sums in parent-sequence order either way, tie-breaks compare masses
    and shard ids, the one whole-vector sum (the adaptive cap's
    retained-mass window) uses an order-independent ``math.fsum``, and
    ``dict.__eq__`` - what snapshot round-trip tests use - ignores
    order. This is exactly the backend-agnostic-state claim the
    cross-backend snapshot test pins down.
    """

    __slots__ = ("arr", "live", "_n", "n_shards")

    def __init__(self, n_shards: int, capacity: int = 1024) -> None:
        capacity = max(capacity, 1)
        self.n_shards = n_shards
        self.arr = np.zeros((capacity, n_shards), dtype=np.float64)
        self.live = np.zeros(capacity, dtype=np.uint8)
        self._n = 0

    def _grow_to(self, needed: int) -> None:
        cap = len(self.live)
        if needed <= cap:
            return
        while cap < needed:
            cap *= _GROW
        arr = np.zeros((cap, self.n_shards), dtype=np.float64)
        arr[: self._n] = self.arr[: self._n]
        self.arr = arr
        live = np.zeros(cap, dtype=np.uint8)
        live[: self._n] = self.live[: self._n]
        self.live = live

    def _row_dict(self, index: int):
        if not self.live[index]:
            return None
        row = self.arr[index]
        hits = np.nonzero(row)[0]
        return {int(shard): float(row[shard]) for shard in hits}

    def _store(self, index: int, value) -> None:
        row = self.arr[index]
        row[:] = 0.0
        if value is None:
            self.live[index] = 0
            return
        if value:
            row[list(value.keys())] = list(value.values())
        self.live[index] = 1

    def append(self, value) -> None:
        self._grow_to(self._n + 1)
        self._store(self._n, value)
        self._n += 1

    def extend(self, values) -> None:
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):
        if isinstance(index, slice):
            indices = range(*index.indices(self._n))
            return [self._row_dict(i) for i in indices]
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(index)
        return self._row_dict(index)

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice):
            if index != slice(None, None, None):
                raise TypeError(
                    "row matrices only support full-slice assignment"
                )
            values = list(value)
            self._grow_to(len(values))
            for i, item in enumerate(values):
                self._store(i, item)
            if len(values) < self._n:
                self.arr[len(values) : self._n] = 0.0
                self.live[len(values) : self._n] = 0
            self._n = len(values)
            return
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(index)
        self._store(index, value)

    def __iter__(self) -> Iterator:
        for i in range(self._n):
            yield self._row_dict(i)

    def __eq__(self, other) -> bool:
        if isinstance(other, (RowMatrix, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowMatrix(n={self._n}, k={self.n_shards})"


class MaskMap(MutableMapping):
    """``{txid: unspent-output bitmask}`` over a growable int64 array.

    The engine's ``_remaining`` store, shaped so the compiled kernel can
    validate batches directly against it: slot ``txid`` holds the mask
    (always positive for a live entry), ``0`` means absent, and the
    ``_SENTINEL`` marks a mask too wide for 62 bits, whose exact value
    lives in the ``_big`` dict (the kernel refuses those and falls back
    to the python journal). Iteration is in ascending txid order and
    every read returns a native python int, so snapshots, deltas, and
    partition handoff see a plain ``dict``-alike.
    """

    __slots__ = ("arr", "_big", "_count")

    _SENTINEL = -1
    _MAX_INLINE_BITS = 62  # 1 << 62 fits an int64 with headroom

    def __init__(self, items=None, capacity: int = 1024) -> None:
        self.arr = np.zeros(max(capacity, 1), dtype=np.int64)
        self._big: dict[int, int] = {}
        self._count = 0
        if items:
            self.update(items)

    def _grow_to(self, needed: int) -> None:
        cap = len(self.arr)
        if needed <= cap:
            return
        while cap < needed:
            cap *= _GROW
        fresh = np.zeros(cap, dtype=np.int64)
        fresh[: len(self.arr)] = self.arr
        self.arr = fresh

    def __getitem__(self, txid: int) -> int:
        if not 0 <= txid < len(self.arr):
            raise KeyError(txid)
        value = int(self.arr[txid])
        if value == 0:
            raise KeyError(txid)
        if value == self._SENTINEL:
            return self._big[txid]
        return value

    def __setitem__(self, txid: int, mask: int) -> None:
        if txid < 0:
            raise KeyError(txid)
        if mask <= 0:
            raise ValueError(
                f"mask for transaction {txid} must be positive, got {mask}"
            )
        self._grow_to(txid + 1)
        present = self.arr[txid] != 0
        if mask.bit_length() <= self._MAX_INLINE_BITS:
            self.arr[txid] = mask
            self._big.pop(txid, None)
        else:
            self.arr[txid] = self._SENTINEL
            self._big[txid] = mask
        if not present:
            self._count += 1

    def __delitem__(self, txid: int) -> None:
        if not 0 <= txid < len(self.arr):
            raise KeyError(txid)
        value = int(self.arr[txid])
        if value == 0:
            raise KeyError(txid)
        self.arr[txid] = 0
        if value == self._SENTINEL:
            del self._big[txid]
        self._count -= 1

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[int]:
        return iter(np.nonzero(self.arr)[0].tolist())

    def items(self):
        """Ascending ``(txid, mask)`` pairs as a plain list (fast path
        for snapshots; duck-compatible with ``dict.items()`` callers
        that only iterate)."""
        idx = np.nonzero(self.arr)[0]
        inline = self.arr[idx]
        big = self._big
        return [
            (txid, big[txid] if value == self._SENTINEL else value)
            for txid, value in zip(idx.tolist(), inline.tolist())
        ]

    def clear_range(self, start: int, stop: int, exclude=()) -> None:
        """Drop every entry with ``start <= txid < stop`` except those
        in ``exclude`` - the vectorized horizon sweep."""
        view = self.arr[start : min(stop, len(self.arr))]
        idx = np.nonzero(view)[0]
        if not idx.size:
            return
        if exclude:
            kept = [i for i in idx.tolist() if i + start not in exclude]
            if not kept:
                return
            idx = np.asarray(kept, dtype=np.intp)
        sentinels = idx[view[idx] == self._SENTINEL]
        for i in sentinels.tolist():
            self._big.pop(i + start, None)
        view[idx] = 0
        self._count -= int(idx.size)

    def __eq__(self, other) -> bool:
        if isinstance(other, MaskMap):
            return dict(self.items()) == dict(other.items())
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaskMap(n={self._count})"
