"""Regenerates Table II: cross-TXs in a window after a warm start.

Shape asserted: T2S-based places the fewest cross-TXs, random placement
the most, at every shard count.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark, scale):
    results = run_once(benchmark, lambda: table2.run(scale))
    window = min(
        scale.warm_window, scale.n_transactions - scale.warm_prefix
    )
    print()
    print(table2.as_table(results, window))
    for k, row in results.items():
        assert row["t2s"] < 0.5 * row["omniledger"]
        # T2S <= Greedy holds cleanly at default/paper scale; small
        # windows add sampling noise, hence the margin.
        assert row["t2s"] <= row["greedy"] * 1.2
        assert row["greedy"] < row["omniledger"]
