"""Tests for the transaction issuer and engine edge cases."""

from __future__ import annotations

import pytest

from repro.core.baselines import OmniLedgerRandomPlacer
from repro.datasets.synthetic import GeneratorConfig, synthetic_stream
from repro.errors import ConfigurationError
from repro.simulator import SimulationConfig, run_simulation


GEN = GeneratorConfig(
    n_wallets=200, coinbase_interval=100, bootstrap_coinbase=20
)


def sim(**kwargs) -> SimulationConfig:
    defaults = dict(
        n_shards=4,
        tx_rate=100.0,
        block_capacity=50,
        block_size_bytes=25_000,
        max_sim_time_s=2_000.0,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestArrivals:
    def test_deterministic_spacing(self):
        stream = synthetic_stream(200, seed=1, config=GEN)
        result = run_simulation(
            stream, OmniLedgerRandomPlacer(4), sim(arrivals="deterministic")
        )
        # Last issue happens at (n-1)/rate; commits strictly after.
        assert result.duration > (len(stream) - 1) / 100.0

    def test_poisson_arrivals_complete(self):
        stream = synthetic_stream(200, seed=1, config=GEN)
        result = run_simulation(
            stream, OmniLedgerRandomPlacer(4), sim(arrivals="poisson")
        )
        assert result.drained
        assert result.n_committed == 200

    def test_poisson_differs_from_deterministic(self):
        stream = synthetic_stream(200, seed=1, config=GEN)
        deterministic = run_simulation(
            stream,
            OmniLedgerRandomPlacer(4),
            sim(arrivals="deterministic"),
        )
        poisson = run_simulation(
            stream, OmniLedgerRandomPlacer(4), sim(arrivals="poisson")
        )
        assert deterministic.latencies != poisson.latencies


class TestEdgeCases:
    def test_empty_stream(self):
        result = run_simulation([], OmniLedgerRandomPlacer(4), sim())
        assert result.n_issued == 0
        assert result.n_committed == 0
        assert result.drained
        assert result.throughput == 0.0
        assert result.duration == 0.0

    def test_single_transaction(self):
        stream = synthetic_stream(1, seed=1, config=GEN)
        result = run_simulation(stream, OmniLedgerRandomPlacer(4), sim())
        assert result.n_committed == 1
        assert len(result.latencies) == 1

    def test_shard_count_mismatch_rejected(self):
        stream = synthetic_stream(10, seed=1, config=GEN)
        with pytest.raises(ConfigurationError):
            run_simulation(stream, OmniLedgerRandomPlacer(8), sim())

    def test_one_shard_everything_same_shard(self):
        stream = synthetic_stream(300, seed=1, config=GEN)
        result = run_simulation(
            stream, OmniLedgerRandomPlacer(1), sim(n_shards=1)
        )
        assert result.n_cross == 0
        assert result.cross_fraction == 0.0
        assert result.drained

    def test_result_properties_on_partial_run(self):
        stream = synthetic_stream(500, seed=1, config=GEN)
        result = run_simulation(
            stream,
            OmniLedgerRandomPlacer(4),
            sim(max_sim_time_s=0.5),
        )
        assert not result.drained
        assert result.n_committed < len(stream)
        # Properties must not crash on partial data.
        assert result.average_latency >= 0.0
        assert result.max_latency >= 0.0
