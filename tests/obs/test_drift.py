"""DriftMonitor: shadow agreement, windowed mode, merging, engine hooks."""

from __future__ import annotations

import pytest

from repro.core.placement import make_placer
from repro.datasets.synthetic import synthetic_stream
from repro.errors import ConfigurationError
from repro.obs.drift import DriftMonitor, merge_drift_dicts, shadow_method_for
from repro.service.engine import PlacementEngine

N_SHARDS = 4


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(3_000, seed=13)


def feed(monitor, stream, shards, chunk=100):
    for offset in range(0, len(stream), chunk):
        monitor.observe_batch(
            stream[offset : offset + chunk],
            shards[offset : offset + chunk],
        )


class TestShadowMethod:
    def test_bare_and_spec_strings(self):
        assert shadow_method_for("optchain") == "optchain"
        assert shadow_method_for("optchain-topk") == "optchain"
        assert (
            shadow_method_for("optchain-topk:cap=auto:0.01,backend=numpy")
            == "optchain"
        )

    def test_unsupported_strategy(self):
        with pytest.raises(ConfigurationError, match="no exact shadow"):
            shadow_method_for("hash")

    def test_config_validation(self):
        for kwargs in (
            {"sample_every": 0},
            {"window": 0},
            {"threshold": -0.1},
        ):
            with pytest.raises(ConfigurationError):
                DriftMonitor(N_SHARDS, **kwargs)


class TestAgreement:
    def test_exact_production_has_zero_drift(self, stream):
        """Feeding the monitor the exact policy's own placements must
        yield delta 0 and disagreement 0 - the shadow replays the
        identical decision function over the identical history."""
        placer = make_placer("optchain", N_SHARDS)
        shards = placer.place_stream(stream)
        monitor = DriftMonitor(
            N_SHARDS, method="optchain", sample_every=2, min_samples=100
        )
        feed(monitor, stream, shards)
        assert monitor.sampled_txs_total > 500
        assert monitor.disagreement_rate == 0.0
        assert monitor.delta == 0.0
        assert monitor.breaches_total == 0

    def test_capped_production_measurable(self, stream):
        """A tightly capped strategy disagrees with the exact shadow on
        some placements; the signal must be visible and the lifetime
        counters consistent."""
        placer = make_placer("optchain-topk", N_SHARDS, support_cap=1)
        shards = placer.place_stream(stream)
        monitor = DriftMonitor(
            N_SHARDS, method="optchain-topk", sample_every=1, min_samples=50
        )
        feed(monitor, stream, shards)
        assert monitor.sampled_txs_total == len(stream)
        assert monitor.observed_txs_total == len(stream)
        assert monitor.disagreements_total > 0
        assert 0.0 < monitor.disagreement_rate <= 1.0
        # Production can only be as good as or worse than the exact
        # one-step policy under the one-step counterfactual.
        assert monitor.delta >= 0.0

    def test_threshold_breach_counter(self, stream):
        placer = make_placer("optchain-topk", N_SHARDS, support_cap=1)
        shards = placer.place_stream(stream)
        monitor = DriftMonitor(
            N_SHARDS,
            method="optchain-topk",
            sample_every=1,
            threshold=0.0,
            min_samples=1,
        )
        baseline = DriftMonitor(
            N_SHARDS,
            method="optchain-topk",
            sample_every=1,
            threshold=1.0,
            min_samples=1,
        )
        feed(monitor, stream, shards)
        feed(baseline, stream, shards)
        if monitor.delta > 0:
            assert monitor.breaches_total > 0
        assert baseline.breaches_total == 0


class TestWindow:
    def test_window_rolls(self, stream):
        placer = make_placer("optchain", N_SHARDS)
        shards = placer.place_stream(stream)
        monitor = DriftMonitor(
            N_SHARDS, method="optchain", sample_every=1, window=200
        )
        feed(monitor, stream, shards, chunk=50)
        # Window bounded by window + one batch of slack.
        assert monitor._win_sampled <= 200 + 50
        assert monitor.sampled_txs_total == len(stream)


class TestRebase:
    def test_windowed_mode_mid_stream(self, stream):
        """Attach at an arbitrary cursor (worker respawn): txids are
        translated, pre-base parents dropped, and the monitor still
        scores every post-base transaction."""
        placer = make_placer("optchain", N_SHARDS)
        shards = placer.place_stream(stream)
        cut = 1_500
        monitor = DriftMonitor(N_SHARDS, method="optchain", sample_every=1)
        monitor.rebase(cut)
        assert monitor.rebases_total == 1
        feed(monitor, stream[cut:], shards[cut:])
        assert monitor.sampled_txs_total == len(stream) - cut
        assert monitor.failed is None
        # Translated shadow holds only post-cut history.
        assert monitor._shadow.n_placed == len(stream) - cut

    def test_rebase_negative_cursor(self):
        with pytest.raises(ConfigurationError):
            DriftMonitor(N_SHARDS).rebase(-1)


class TestRelease:
    def test_release_mirrored_and_translated(self, stream):
        placer = make_placer("optchain", N_SHARDS)
        shards = placer.place_stream(stream)
        monitor = DriftMonitor(N_SHARDS, method="optchain", sample_every=4)
        monitor.rebase(1_000)
        feed(monitor, stream[1_000:], shards[1_000:])
        scorer = monitor._shadow.scorer
        before = scorer.live_vector_count
        # Sweep a txid range spanning the base: pre-base ids are
        # silently dropped, post-base ids release shadow vectors.
        monitor.release_vectors(range(0, 1_800))
        assert scorer.live_vector_count < before
        monitor.release_vectors(range(0, 1_000))  # all pre-base: no-op


class TestMerge:
    def test_merge_single_derives_rates(self, stream):
        placer = make_placer("optchain-topk", N_SHARDS, support_cap=1)
        shards = placer.place_stream(stream)
        monitor = DriftMonitor(
            N_SHARDS, method="optchain-topk", sample_every=1
        )
        feed(monitor, stream, shards)
        merged = merge_drift_dicts([monitor.as_dict()])
        assert merged["delta"] == pytest.approx(monitor.delta)
        assert merged["production_cross_rate"] == pytest.approx(
            monitor.production_cross_rate
        )
        assert merged["disagreement_rate"] == pytest.approx(
            monitor.disagreement_rate
        )

    def test_merge_weights_by_samples(self):
        a = {
            "window_sampled": 100,
            "window_prod_cross": 50,
            "window_shadow_cross": 0,
            "window_disagreed": 10,
            "threshold": 0.05,
        }
        b = {
            "window_sampled": 300,
            "window_prod_cross": 30,
            "window_shadow_cross": 30,
            "window_disagreed": 0,
            "threshold": 0.01,
        }
        merged = merge_drift_dicts([a, b])
        assert merged["window_sampled"] == 400
        assert merged["production_cross_rate"] == pytest.approx(80 / 400)
        assert merged["shadow_cross_rate"] == pytest.approx(30 / 400)
        assert merged["delta"] == pytest.approx(50 / 400)
        assert merged["threshold"] == 0.05

    def test_merge_empty(self):
        merged = merge_drift_dicts([])
        assert merged["delta"] == 0.0
        assert merged["failed"] is None

    def test_merge_propagates_failure(self):
        merged = merge_drift_dicts([{}, {"failed": "boom"}])
        assert merged["failed"] == "boom"


class TestEngineHooks:
    def test_engine_feeds_monitor_and_mirrors_sweeps(self, stream):
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS),
            epoch_length=500,
            horizon_epochs=1,
        )
        monitor = DriftMonitor(N_SHARDS, method="optchain", sample_every=2)
        engine.drift_monitor = monitor
        for offset in range(0, len(stream), 100):
            engine.place_batch(stream[offset : offset + 100])
        assert monitor.observed_txs_total == len(stream)
        assert monitor.sampled_txs_total > 0
        assert monitor.delta == 0.0
        # Truncation sweeps were mirrored: shadow memory obeys the
        # engine's horizon policy instead of growing with the stream.
        shadow_live = monitor._shadow.scorer.live_vector_count
        engine_live = engine.stats().live_vectors
        assert shadow_live <= engine_live + 500

    def test_monitor_failure_detaches_not_poisons(self, stream):
        engine = PlacementEngine(
            make_placer("optchain", N_SHARDS), epoch_length=1_000
        )

        class Exploding:
            failed = None

            def observe_batch(self, txs, shards):
                raise RuntimeError("shadow bug")

            def release_vectors(self, txids):
                raise RuntimeError("shadow bug")

        engine.drift_monitor = Exploding()
        shards = engine.place_batch(stream[:100])
        assert len(shards) == 100  # placement unaffected
        assert engine.drift_monitor is None
        shards = engine.place_batch(stream[100:200])
        assert len(shards) == 100
